//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Supports `Criterion::bench_function`, `benchmark_group`, `Bencher::iter`
//! and `iter_batched`, [`BatchSize`], [`black_box`], and the simple forms of
//! [`criterion_group!`] / [`criterion_main!`]. Each benchmark runs a short
//! warm-up, then timed samples, and prints a one-line
//! `name  time: [min mean max]` report. No statistical analysis, plotting, or
//! baseline persistence — just honest wall-clock numbers that make relative
//! comparisons (e.g. incremental vs. full recompute) meaningful.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps the optimizer honest.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How expensive one batch of setup output is; controls batch sizing in
/// [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input: run moderately sized batches.
    SmallInput,
    /// Large per-iteration input: keep few inputs alive at once.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    warmup: Duration,
    sample_count: usize,
}

impl Bencher {
    fn new() -> Self {
        let fast = std::env::var("CRITERION_FAST").is_ok();
        Bencher {
            samples: Vec::new(),
            warmup: if fast {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(300)
            },
            sample_count: if fast { 10 } else { 30 },
        }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates how many calls fit in one sample.
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed() / calls.max(1) as u32;
        let per_sample = (Duration::from_millis(10).as_nanos() / per_call.as_nanos().max(1))
            .clamp(1, 100_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / per_sample as u32);
        }
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len();

        // Warm-up with a single batch.
        let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
        for input in inputs {
            black_box(routine(input));
        }

        self.samples.clear();
        for _ in 0..self.sample_count {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Benchmark registry; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks, reported as `group/bench`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples() {
        std::env::set_var("CRITERION_FAST", "1");
        let mut b = Bencher::new();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples.len(), b.sample_count);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        std::env::set_var("CRITERION_FAST", "1");
        let mut b = Bencher::new();
        let mut made = 0u32;
        b.iter_batched(
            || {
                made += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert!(made > 0);
        assert_eq!(b.samples.len(), b.sample_count);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
    }
}
