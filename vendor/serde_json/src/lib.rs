//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `to_writer`, `from_str`, `from_reader`,
//! and the `Result`/`Error` types. Works over the vendored `serde` crate's
//! [`Value`] data model.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;
use std::io::{Read, Write};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// --- serialization ---------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest round-trippable decimal but
                // drops the fraction for integral values; add it back so the
                // token parses as a float everywhere.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Non-finite numbers are not representable in JSON; emit null
                // like upstream serde_json.
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
            write_value(out, &items[i], ind)
        }),
        Value::Object(entries) => write_seq(out, indent, '{', '}', entries.len(), |out, i, ind| {
            escape_into(out, &entries[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &entries[i].1, ind)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        write_item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Serializes `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

// --- deserialization -------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escapes unsupported"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

/// Parses a value of type `T` from a reader producing JSON.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::new(format!("io error: {e}")))?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&String::from("a\"b\\c\nd")).unwrap(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(from_str::<String>(r#""a\"b\\c\nd""#).unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2u32), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        let back: Vec<(u64, u32)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u64>("[1] junk").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn writer_round_trip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u32, 2]).unwrap();
        let back: Vec<u32> = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, vec![1, 2]);
    }
}
