//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework with the same spelling at use sites:
//! `#[derive(Serialize, Deserialize)]`, `#[serde(transparent)]`, and the
//! `serde_json` functions. Instead of upstream's visitor-based data model,
//! both traits convert through a self-describing [`Value`] tree, which is all
//! a JSON-only workspace needs.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing value tree — the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key/value map in insertion order (field declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a named field in an object's entries — used by derived
/// [`Deserialize`] impls.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => Err(DeError::new(format!("missing field `{name}`"))),
    }
}

// --- primitive impls -------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) => {
                        f as i64
                    }
                    ref other => {
                        return Err(DeError::new(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);
ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            ref other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array()
                    .ok_or_else(|| DeError::new(format!("expected array, found {}", v.kind())))?;
                const LEN: usize = 0 $(+ {let _ = $n; 1})+;
                if a.len() != LEN {
                    return Err(DeError::new(format!(
                        "expected {}-tuple, found array of {}", LEN, a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Keys serialize through Value; stringify scalars as JSON object keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::F64(f) => f.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2u32), (3, 4)];
        let back: Vec<(u64, u32)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
