//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation of the interfaces it consumes:
//! [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait with
//! `gen_range` / `gen_bool` / `gen`. Generators are deterministic per seed,
//! which is all the simulation and the tests rely on; no attempt is made to
//! reproduce upstream `rand`'s exact value streams.

/// Core interface: a source of uniformly distributed random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a uniform sampler over an interval. Mirrors upstream
/// `rand::distributions::uniform::SampleUniform` closely enough that
/// `SampleRange` can be a single blanket impl per range shape, which is what
/// lets float-literal ranges (`-0.3..0.3`) infer their type.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`. Bounds are pre-validated.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`. Bounds are pre-validated.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        // 53-bit mantissa resolution over the closed interval.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        let unit = (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
        lo + unit * (hi - lo)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Values drawable from the "standard" distribution (uniform over the type's
/// natural domain; `[0, 1)` for floats).
pub trait Standard: Sized {
    #[doc(hidden)]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::draw(self) < p
    }

    /// Draw from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespace parity with upstream `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator used as the default
    /// implementation backing the vendored rngs.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    Self::splitmix(&mut st),
                    Self::splitmix(&mut st),
                    Self::splitmix(&mut st),
                    Self::splitmix(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
