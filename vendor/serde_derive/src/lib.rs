//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` crate's [`Value`]-based data model, with no syn/quote
//! dependency: the item is parsed by walking raw proc-macro tokens. Supported
//! shapes — which is exactly what this workspace contains:
//!
//! * structs with named fields;
//! * tuple structs (newtype structs delegate to the inner value, wider ones
//!   serialize as arrays), including `#[serde(transparent)]`;
//! * enums with unit, newtype, tuple, and struct variants (externally tagged,
//!   like upstream serde's default).
//!
//! Generic items are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple arity.
    Tuple(usize),
}

#[derive(Debug)]
struct Item {
    name: String,
    transparent: bool,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Consumes leading outer attributes, reporting whether any was
/// `#[serde(transparent)]`.
fn skip_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut transparent = false;
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let [TokenTree::Ident(id), TokenTree::Group(args)] = &inner[..] {
                        if id.to_string() == "serde"
                            && args.stream().into_iter().any(|t| {
                                matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent")
                            })
                        {
                            transparent = true;
                        }
                    }
                }
            }
            _ => return transparent,
        }
    }
}

/// Consumes a visibility qualifier if present.
fn skip_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Skips a field type (or discriminant expression) up to a top-level comma,
/// tracking angle-bracket depth so `HashMap<K, V>` commas don't terminate.
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle: i32 = 0;
    while let Some(t) = toks.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            _ => {}
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(name)) => {
                fields.push(name.to_string());
                // Consume ':' then the type.
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected `:` after field, got {other:?}"),
                }
                skip_type(&mut toks);
                // Consume the separating comma if present.
                if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    toks.next();
                }
            }
            None => return fields,
            other => panic!("serde_derive: unexpected token in fields: {other:?}"),
        }
    }
}

fn tuple_arity(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut arity = 0;
    loop {
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        if toks.peek().is_none() {
            return arity;
        }
        arity += 1;
        skip_type(&mut toks);
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => return variants,
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match toks.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match toks.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                Fields::Tuple(tuple_arity(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            toks.next();
            skip_type(&mut toks);
        }
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push((name, fields));
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let transparent = skip_attrs(&mut toks);
    skip_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic items are not supported");
    }
    let kind = match (kw.as_str(), toks.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            ItemKind::Struct(Fields::Tuple(tuple_arity(g.stream())))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            ItemKind::Struct(Fields::Unit)
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("serde_derive: unsupported item `{kw}` body {other:?}"),
    };
    Item {
        name,
        transparent,
        kind,
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Struct(Fields::Named(fields)) => {
            if item.transparent {
                assert_eq!(fields.len(), 1, "transparent struct must have one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                    })
                    .collect();
                format!("::serde::Value::Object(vec![{}])", entries.join(", "))
            }
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            // Newtype structs (and transparent ones) delegate to the inner
            // value, mirroring upstream serde.
            if *n == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),"
                    ),
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{v}\"), ::serde::Value::Object(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(String::from(\"{v}\"), {inner})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
        ItemKind::Struct(Fields::Named(fields)) => {
            if item.transparent {
                assert_eq!(fields.len(), 1, "transparent struct must have one field");
                format!(
                    "Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})",
                    f = fields[0]
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                    .collect();
                format!(
                    "let obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\
                         format!(\"expected object for {name}, found {{}}\", v.kind())))?;\n\
                     Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            if *n == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                    .collect();
                format!(
                    "let a = v.as_array().ok_or_else(|| ::serde::DeError::new(\
                         format!(\"expected array for {name}, found {{}}\", v.kind())))?;\n\
                     if a.len() != {n} {{\n\
                         return Err(::serde::DeError::new(format!(\
                             \"expected {n} elements for {name}, found {{}}\", a.len())));\n\
                     }}\n\
                     Ok({name}({}))",
                    inits.join(", ")
                )
            }
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let obj = inner.as_object().ok_or_else(|| \
                                     ::serde::DeError::new(\"expected object variant body\"))?;\n\
                                 Ok({name}::{v} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        ))
                    }
                    Fields::Tuple(n) => {
                        if *n == 1 {
                            Some(format!(
                                "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                            ))
                        } else {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{v}\" => {{\n\
                                     let a = inner.as_array().ok_or_else(|| \
                                         ::serde::DeError::new(\"expected array variant body\"))?;\n\
                                     if a.len() != {n} {{\n\
                                         return Err(::serde::DeError::new(\"variant arity mismatch\"));\n\
                                     }}\n\
                                     Ok({name}::{v}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {units}\n\
                         other => Err(::serde::DeError::new(format!(\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {data}\n\
                             other => Err(::serde::DeError::new(format!(\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }},\n\
                     other => Err(::serde::DeError::new(format!(\
                         \"expected {name} variant, found {{}}\", other.kind()))),\n\
                 }}",
                units = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}
