//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the [`Strategy`] trait over integer/float ranges, tuples of
//! strategies, and the `collection::{vec, btree_set}` builders, plus the
//! [`proptest!`], [`prop_assert!`], and [`prop_assert_eq!`] macros. Each test
//! runs `PROPTEST_CASES` (default 64) deterministic cases seeded from the test
//! name, so failures reproduce without a persistence file. No shrinking: the
//! failing inputs are printed verbatim instead.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// The deterministic RNG driving strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG for one test case, seeded from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h ^ (case as u64) << 32))
    }

    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }
}

/// Number of cases per property, overridable via `PROPTEST_CASES`.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types drawable from a range strategy. One blanket `Strategy` impl per
/// range shape (rather than per-type impls) so float-literal ranges like
/// `0.0..1.0` still infer their element type.
pub trait SampleUniform: Sized + PartialOrd + std::fmt::Debug + Copy {
    /// Uniform draw from `[lo, hi)`. Bounds are pre-validated.
    fn draw_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw from `[lo, hi]`. Bounds are pre-validated.
    fn draw_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn draw_half_open(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn draw_inclusive(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn draw_half_open(lo: f64, hi: f64, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn draw_inclusive(lo: f64, hi: f64, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty strategy range");
        T::draw_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        T::draw_inclusive(lo, hi, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = self.hi - self.lo + 1;
            self.lo + (rng.next_u64() as usize) % span
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; the set size may undershoot `size`
    /// when duplicates collide, as in upstream proptest.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Runs each contained `fn name(arg in strategy, ...) { body }` as a
/// deterministic randomized test.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || { $body }
                    ));
                    if let Err(e) = __result {
                        eprintln!(
                            "proptest case {}/{} failed with inputs: {}",
                            __case + 1, __cases, __inputs
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, printing the condition on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..200 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::for_case("sizes", 1);
        for _ in 0..100 {
            let v = collection::vec((0u64..10, 0u32..5), 1..20).sample(&mut rng);
            assert!((1..20).contains(&v.len()));
            let s = collection::btree_set(0u64..1000, 0..50).sample(&mut rng);
            assert!(s.len() < 50);
        }
    }

    #[test]
    fn determinism_per_name_and_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!((0u64..99).sample(&mut a), (0u64..99).sample(&mut b));
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(a in 1u64..100, pair in (0u32..4, 0u64..16)) {
            prop_assert!(a >= 1);
            prop_assert!(a < 100);
            prop_assert_eq!(pair.0 as u64 / 4, pair.0 as u64 >> 2);
        }
    }
}
