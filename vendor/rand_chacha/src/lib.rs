//! Offline stand-in for `rand_chacha`, implementing a genuine ChaCha8 block
//! function behind the vendored [`rand`] traits.
//!
//! Only [`ChaCha8Rng`] and `seed_from_u64` construction are provided — the
//! surface this workspace uses. The keystream is the RFC 8439 block function
//! truncated to 8 rounds with a seed-expanded key, so streams are
//! deterministic, well distributed, and platform independent. They do not
//! match upstream `rand_chacha` streams (upstream derives the key differently)
//! which is fine: the workspace only relies on per-seed determinism.

use rand::{RngCore, SeedableRng};

/// The ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key/counter/nonce state laid out as the 16-word ChaCha matrix.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 = exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..Self::ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (&mixed, &init)) in self.block.iter_mut().zip(w.iter().zip(&self.state)) {
            *out = mixed.wrapping_add(init);
        }
        // 64-bit block counter in words 12..14.
        let ctr = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = ctr as u32;
        self.state[13] = (ctr >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed into a 256-bit key with splitmix64, as upstream
        // rand's generic seed_from_u64 does.
        let mut st = seed;
        let mut next = || {
            st = st.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = st;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let v = self.block[self.cursor];
        self.cursor += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn per_seed_determinism() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn usable_through_rng_ext() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let v = r.gen_range(0u64..100);
        assert!(v < 100);
        let _ = r.gen_bool(0.5);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = ChaCha8Rng::seed_from_u64(123);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
