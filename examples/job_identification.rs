//! Job identification from a flat submission log (§IV-A).
//!
//! Production JAWS never sees job boundaries — users drive experiments with
//! client-side loops — so it reconstructs them from "user IDs, spatial or
//! temporal operation performed, time steps queried, and wall-clock time
//! between consecutive queries". This example builds the nominal submission
//! log of a generated trace, runs the heuristic, and scores it against the
//! generator's ground truth.
//!
//! ```text
//! cargo run --release --example job_identification
//! ```

use jaws::prelude::*;

fn main() {
    let trace = TraceGenerator::new(GenConfig::small(2024)).generate();
    let cost = CostModel::paper_testbed();
    let log = SubmitRecord::log_from_trace(&trace, cost.atom_read_ms, cost.position_compute_ms);
    println!(
        "submission log: {} queries from {} true jobs by {} users",
        log.len(),
        trace.jobs.len(),
        log.iter()
            .map(|r| r.user)
            .collect::<std::collections::HashSet<_>>()
            .len()
    );

    // Sweep the gap threshold to show the precision/recall trade-off.
    println!(
        "\n{:>12} {:>11} {:>8} {:>8} {:>8}",
        "max gap (s)", "same-ts (s)", "prec", "recall", "F1"
    );
    // The thresholds must match the client cadence: this small trace paces
    // queries at sub-second to few-second gaps (the paper-scale trace paces
    // at seconds to a minute, matching JobIdConfig::default()).
    for (gap_s, same_ts_s) in [(2.0, 0.3), (8.0, 2.0), (30.0, 5.0), (120.0, 30.0)] {
        let cfg = JobIdConfig {
            max_gap_ms: gap_s * 1000.0,
            same_timestep_gap_ms: same_ts_s * 1000.0,
            max_timestep_delta: 1,
        };
        let assignment = identify_jobs(&log, cfg);
        let eval = JobIdEvaluation::score(&log, &assignment);
        println!(
            "{:>12} {:>11} {:>7.1}% {:>7.1}% {:>7.1}%",
            gap_s,
            same_ts_s,
            eval.precision * 100.0,
            eval.recall * 100.0,
            eval.f1 * 100.0
        );
    }

    let cfg = JobIdConfig {
        max_gap_ms: 8_000.0,
        same_timestep_gap_ms: 2_000.0,
        max_timestep_delta: 1,
    };
    let best = identify_jobs(&log, cfg);
    let eval = JobIdEvaluation::score(&log, &best);
    let predicted_jobs = best.iter().collect::<std::collections::HashSet<_>>().len();
    println!(
        "\nmatched thresholds: {} predicted jobs (true {}), F1 {:.1}%, campaign precision {:.1}% — \"heuristic, but highly accurate in practice\"",
        predicted_jobs,
        trace.jobs.len(),
        eval.f1 * 100.0,
        eval.campaign_precision * 100.0
    );
    assert!(
        eval.campaign_f1 > 0.6,
        "identification should remain accurate at campaign granularity"
    );
}
