//! Replay a workload on a multi-node Turbulence cluster (§V-C deployment).
//!
//! The atom grid is split into contiguous Morton slabs, one per node; every
//! node runs its own JAWS instance, buffer pool and simulated disk; queries
//! fan out into per-node parts and complete when all parts finish. Since the
//! engine unification the cluster honors the full [`SimConfig`]: per-node
//! trajectory prefetching (§VII), `max_sim_ms` truncation and the idle
//! re-poll interval — this replay runs each node count with prefetching off
//! and on to show the knob.
//!
//! ```text
//! cargo run --release --example cluster_replay
//! ```

use jaws::prelude::*;
use jaws::sim::{ClusterConfig, ClusterExecutor, FailurePlan};

fn config(nodes: u32, prefetch: bool) -> ClusterConfig {
    ClusterConfig {
        nodes,
        db: DbConfig {
            grid_side: 32,
            atom_side: 8,
            ghost: 2,
            timesteps: 8,
            dt: 0.002,
            seed: 77,
        },
        cost: CostModel::paper_testbed(),
        scheduler: SchedulerKind::Jaws2 { batch_k: 8 },
        cache_policy: CachePolicyKind::Slru,
        cache_atoms_per_node: 16,
        run_len: 25,
        gate_timeout_ms: 30_000.0,
        sim: SimConfig {
            prefetch,
            // Generous cap: this replay is expected to drain; a truncated
            // row would print [TRUNCATED] via the aggregate report.
            max_sim_ms: 1e10,
            idle_recheck_ms: 500.0,
        },
        failures: FailurePlan::none(),
        replication: jaws_sim::ReplicationConfig::disabled(),
    }
}

fn main() {
    let trace = TraceGenerator::new(GenConfig::small(77)).generate();
    println!(
        "replaying {} queries ({} jobs) on 1, 2 and 4 nodes\n",
        trace.query_count(),
        trace.jobs.len()
    );
    // Compress arrivals so the replay is capacity-bound and scale-out shows.
    let trace = trace.speedup(25.0);

    for nodes in [1u32, 2, 4] {
        for prefetch in [false, true] {
            let mut ex = ClusterExecutor::new(config(nodes, prefetch));
            let r = ex.run(&trace);
            println!(
                "{} node(s), prefetch {}: {:>6.3} q/s, mean rt {:>6.1} s, imbalance {:.2}x",
                nodes,
                if prefetch { "on " } else { "off" },
                r.aggregate.throughput_qps,
                r.aggregate.mean_response_ms / 1000.0,
                r.imbalance()
            );
            for n in &r.nodes {
                println!(
                    "    node {}: {:>4} parts, {:>5} reads, {:>4} prefetches, util {:>5.1}%",
                    n.node,
                    n.parts_completed,
                    n.disk.reads,
                    n.prefetch_reads,
                    n.utilization * 100.0
                );
            }
            assert_eq!(r.aggregate.queries_completed, trace.query_count() as u64);
        }
    }
}
