//! The paper's Fig. 2 scenario: three ordered jobs whose queries overlap on
//! regions R3 and R4. JAWS aligns the jobs with its Needleman–Wunsch dynamic
//! program and gates the overlapping queries so each shared region is read
//! once; LifeRaft (no job-awareness) reads them once per job.
//!
//! ```text
//! cargo run --release --example gated_jobs
//! ```

use jaws::morton::MortonKey;
use jaws::prelude::*;

/// Builds a query touching one "region" (atom) at one timestep.
fn q(id: u64, user: u32, ts: u32, region: u64) -> Query {
    Query {
        id,
        user,
        op: QueryOp::ParticleTrack,
        timestep: ts,
        footprint: Footprint::from_pairs([(MortonKey(region), 400u32)]),
    }
}

/// One ordered job from (timestep, region) steps.
fn job(id: u64, steps: &[(u32, u64)]) -> Job {
    Job {
        id,
        user: id as u32,
        kind: JobKind::Ordered,
        campaign: id,
        queries: steps
            .iter()
            .enumerate()
            .map(|(i, &(ts, r))| q(id * 100 + i as u64, id as u32, ts, r))
            .collect(),
        arrival_ms: 0.0,
        think_ms: 0.0,
    }
}

fn run(kind: SchedulerKind, trace: &Trace) -> RunReport {
    let db = build_db(
        DbConfig {
            grid_side: 32,
            atom_side: 8,
            ghost: 2,
            timesteps: 4,
            dt: 0.002,
            seed: 1,
        },
        CostModel::paper_testbed(),
        DataMode::Virtual,
        1, // single-atom cache: sharing must come from co-scheduling
        CachePolicyKind::Lru,
    );
    let sched = build_scheduler(kind, MetricParams::paper_testbed(), 50, 30_000.0);
    let mut ex = Executor::new(db, sched, SimConfig::default());
    ex.run(trace)
}

fn main() {
    // Fig. 2 of the paper (region labels R1..R5):
    //   Job1: R1 -> R3 -> R4
    //   Job2: R2 -> R3 -> R4
    //   Job3: R1 -> R3 -> R5
    let trace = Trace::new(
        4,
        4,
        vec![
            job(1, &[(0, 1), (1, 3), (2, 4)]),
            job(2, &[(0, 2), (1, 3), (2, 4)]),
            job(3, &[(0, 1), (1, 3), (3, 5)]),
        ],
    );

    println!("Fig. 2 workload: three ordered jobs sharing R1, R3 and R4\n");
    println!(
        "{:<11} {:>12} {:>12} {:>14}",
        "scheduler", "atom reads", "makespan", "mean rt"
    );
    let mut reads = std::collections::HashMap::new();
    for kind in [
        SchedulerKind::NoShare,
        SchedulerKind::LifeRaft2,
        SchedulerKind::Jaws2 { batch_k: 4 },
    ] {
        let r = run(kind, &trace);
        println!(
            "{:<11} {:>12} {:>10.1} s {:>12.1} s",
            r.scheduler,
            r.disk.reads,
            r.makespan_ms / 1000.0,
            r.mean_response_ms / 1000.0
        );
        reads.insert(r.scheduler.clone(), r.disk.reads);
    }

    println!();
    println!(
        "JAWS read {} atoms vs NoShare's {}: the gated R1/R3 groups were each served in a single pass,",
        reads["JAWS_2"], reads["NoShare"]
    );
    println!("exactly the co-scheduling the paper's Fig. 2 illustrates.");
    assert!(
        reads["JAWS_2"] < reads["NoShare"],
        "job-aware scheduling must eliminate redundant reads"
    );
}
