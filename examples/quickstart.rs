//! Quickstart: generate a workload, run JAWS over the simulated Turbulence
//! database, and print the run report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use jaws::prelude::*;

fn main() {
    // A small calibrated trace: bursty jobs over 8 timesteps of a 4³ atom
    // grid (the generator mirrors the workload statistics of the paper's
    // §VI-A at whatever scale you pick).
    let trace = TraceGenerator::new(GenConfig::small(42)).generate();
    println!(
        "trace: {} jobs / {} queries / {} positions ({} ordered jobs)",
        trace.jobs.len(),
        trace.query_count(),
        trace.position_count(),
        trace.ordered_job_count(),
    );

    // The simulated database: virtual payloads (costs only), a 16-atom buffer
    // cache under LRU-K replacement, and the paper-calibrated cost model.
    let db = build_db(
        DbConfig {
            grid_side: 32,
            atom_side: 8,
            ghost: 2,
            timesteps: 8,
            dt: 0.002,
            seed: 42,
        },
        CostModel::paper_testbed(),
        DataMode::Virtual,
        16,
        CachePolicyKind::LruK,
    );

    // Full JAWS: two-level batching (k = 15), adaptive age bias, job-aware
    // gating. Swap `Jaws2` for `NoShare`/`LifeRaft2`/`Jaws1` to compare.
    let scheduler = build_scheduler(
        SchedulerKind::Jaws2 { batch_k: 15 },
        MetricParams::paper_testbed(),
        50,       // run length r
        12_000.0, // gate timeout (starvation valve)
    );

    let mut executor = Executor::new(db, scheduler, SimConfig::default());
    let report = executor.run(&trace);

    println!("\n{}", report.summary());
    println!("\ndetails:");
    println!("  makespan          {:.1} s", report.makespan_ms / 1000.0);
    println!("  throughput        {:.3} queries/s", report.throughput_qps);
    println!(
        "  response p50/p95  {:.1} / {:.1} s",
        report.response.p50 / 1000.0,
        report.response.p95 / 1000.0
    );
    println!(
        "  disk reads        {} ({} seeks)",
        report.disk.reads, report.disk.seeks
    );
    println!(
        "  cache hit ratio   {:.1}%",
        report.cache.hit_ratio() * 100.0
    );
    println!("  final age bias α  {:.2}", report.alpha_final);
}
