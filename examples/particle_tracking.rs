//! Particle tracking against real (synthetic-DNS) voxel data.
//!
//! This is the paper's flagship workload: "to track the movement of particles
//! over time, the positions of particles at the next time step depend on the
//! state of the particles computed from the previous time step." Here the
//! database materializes actual velocity fields (a kinematic turbulence
//! surrogate with a −5/3 spectrum), and particles are advected with RK4 over
//! 6th-order Lagrange interpolation — the same kernels the production
//! GetVelocity/GetPosition services expose.
//!
//! ```text
//! cargo run --release --example particle_tracking
//! ```

use jaws::prelude::*;
use jaws::turbdb::kernels::{self, Interp, TimeScheme};
use rand::{Rng, SeedableRng};

fn main() {
    // Real voxel payloads this time: 128³ grid, 32³ atoms, 8 timesteps.
    let cfg = DbConfig::small_synthetic();
    let mut db = build_db(
        cfg,
        CostModel::paper_testbed(),
        DataMode::Synthetic,
        64,
        CachePolicyKind::Slru,
    );

    // Seed a cloud of particles inside one turbulent region.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut particles: Vec<[f64; 3]> = (0..200)
        .map(|_| {
            [
                rng.gen_range(40.0..60.0),
                rng.gen_range(40.0..60.0),
                rng.gen_range(40.0..60.0),
            ]
        })
        .collect();
    let start = particles.clone();

    // Advect through the time-interpolated velocity field: 5 stored
    // timesteps, 4 integration substeps each.
    let dt_int = cfg.dt / 4.0;
    let mut sampler = kernels::sampler(&mut db);
    kernels::advect_particles(
        &mut sampler,
        &mut particles,
        0.0,
        dt_int,
        5 * 4,
        TimeScheme::Rk4,
        Interp::Lag6,
    );
    let cost = sampler.cost;

    // Dispersion statistics — what a Turbulence user computes offline.
    let mut disp = 0.0;
    let mut max_disp: f64 = 0.0;
    for (a, b) in start.iter().zip(&particles) {
        let d2 = (0..3).map(|i| (a[i] - b[i]).powi(2)).sum::<f64>();
        disp += d2;
        max_disp = max_disp.max(d2.sqrt());
    }
    let rms = (disp / particles.len() as f64).sqrt();

    println!("tracked {} particles over {} timesteps", particles.len(), 5);
    println!("  rms displacement  {rms:.3} voxels");
    println!("  max displacement  {max_disp:.3} voxels");
    println!(
        "  first particle    {:?} -> {:?}",
        fmt3(start[0]),
        fmt3(particles[0])
    );
    println!("\nI/O accounting (why JAWS exists):");
    println!("  atom fetches      {}", cost.atom_reads);
    println!(
        "  cache hits        {} ({:.1}%)",
        cost.cache_hits,
        100.0 * cost.cache_hits as f64 / cost.atom_reads.max(1) as f64
    );
    println!("  simulated I/O     {:.1} s", cost.io_ms / 1000.0);
    println!("  atoms materialized {}", db.materializations());

    // Sanity: particles must move, stay finite, and the cache must have
    // absorbed most of the stencil traffic.
    assert!(rms > 0.0 && rms.is_finite());
    assert!(
        cost.cache_hits * 2 > cost.atom_reads,
        "cache absorbed stencils"
    );
}

fn fmt3(p: [f64; 3]) -> String {
    format!("({:.1}, {:.1}, {:.1})", p[0], p[1], p[2])
}
