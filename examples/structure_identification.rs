//! Identify and track turbulent structures — the third workload class of
//! §III-A ("identifying turbulent structures and tracking their formation
//! and evolution").
//!
//! ```text
//! cargo run --release --example structure_identification
//! ```

use jaws::prelude::*;
use jaws::turbdb::kernels;
use jaws::turbdb::structures::{identify_structures, track_structures, StructureCriterion};

fn main() {
    let mut db = build_db(
        DbConfig {
            grid_side: 64,
            atom_side: 16,
            ghost: 3,
            timesteps: 4,
            dt: 0.01,
            seed: 23,
        },
        CostModel::paper_testbed(),
        DataMode::Synthetic,
        128,
        CachePolicyKind::Slru,
    );

    let region_min = [0i64, 0, 0];
    let region_max = [47i64, 47, 47];

    // Calibrate the vorticity threshold at 1.25x the regional mean.
    let mut sampler = kernels::sampler(&mut db);
    let all = identify_structures(
        &mut sampler,
        region_min,
        region_max,
        0,
        StructureCriterion::VorticityMagnitude,
        0.0,
        1,
    );
    let threshold = all[0].mean * 1.25;
    println!(
        "regional mean |vorticity| = {:.3}; thresholding at {:.3}\n",
        all[0].mean, threshold
    );

    // Identify at two consecutive timesteps and track the evolution.
    let t0 = identify_structures(
        &mut sampler,
        region_min,
        region_max,
        0,
        StructureCriterion::VorticityMagnitude,
        threshold,
        25,
    );
    let t1 = identify_structures(
        &mut sampler,
        region_min,
        region_max,
        1,
        StructureCriterion::VorticityMagnitude,
        threshold,
        25,
    );
    println!(
        "timestep 0: {} structures;  timestep 1: {}",
        t0.len(),
        t1.len()
    );
    println!("\nlargest structures at t0:");
    for (i, s) in t0.iter().take(5).enumerate() {
        println!(
            "  #{i}: {:>6} voxels at ({:5.1},{:5.1},{:5.1}), peak {:.2}",
            s.volume, s.centroid[0], s.centroid[1], s.centroid[2], s.peak
        );
    }

    let pairs = track_structures(&t0, &t1, 6.0);
    println!(
        "\ntracked {} of {} structures across one timestep:",
        pairs.len(),
        t0.len()
    );
    for &(i, j) in pairs.iter().take(5) {
        let d: f64 = (0..3)
            .map(|k| (t0[i].centroid[k] - t1[j].centroid[k]).powi(2))
            .sum::<f64>()
            .sqrt();
        println!(
            "  t0#{i} -> t1#{j}: moved {d:.2} voxels, volume {} -> {}",
            t0[i].volume, t1[j].volume
        );
    }
    let cost = sampler.cost;
    println!(
        "\nI/O: {} atom fetches, {:.1}% cache hits, {:.1} s simulated I/O",
        cost.atom_reads,
        100.0 * cost.cache_hits as f64 / cost.atom_reads.max(1) as f64,
        cost.io_ms / 1000.0
    );
    assert!(!t0.is_empty() && !pairs.is_empty());
}
