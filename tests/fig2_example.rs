//! Integration test reproducing the paper's Fig. 2 example: three ordered
//! jobs whose queries overlap on shared regions. Job-aware scheduling must
//! co-schedule the shared queries so each shared region is read once, and
//! must finish faster than the query-at-a-time baseline.

use jaws::morton::MortonKey;
use jaws::prelude::*;

/// A query over a single "region" (one atom), like the R1..R5 node labels of
/// the paper's figure.
fn q(id: u64, user: u32, ts: u32, region: u64) -> Query {
    Query {
        id,
        user,
        op: QueryOp::ParticleTrack,
        timestep: ts,
        footprint: Footprint::from_pairs([(MortonKey(region), 500u32)]),
    }
}

fn job(id: u64, arrival_ms: f64, steps: &[(u32, u64)]) -> Job {
    Job {
        id,
        user: id as u32,
        kind: JobKind::Ordered,
        campaign: 1,
        queries: steps
            .iter()
            .enumerate()
            .map(|(i, &(ts, r))| q(id * 100 + i as u64, id as u32, ts, r))
            .collect(),
        arrival_ms,
        think_ms: 0.0,
    }
}

/// The Fig. 2 jobs: J1 = R1 R3 R4, J2 = R2 R3 R4, J3 = R1 R3 R5 — submitted
/// together, progressing in lockstep (the figure's idealized setting).
fn fig2_trace() -> Trace {
    Trace::new(
        4,
        4,
        vec![
            job(1, 0.0, &[(0, 1), (1, 3), (2, 4)]),
            job(2, 0.0, &[(0, 2), (1, 3), (2, 4)]),
            job(3, 0.0, &[(0, 1), (1, 3), (3, 5)]),
        ],
    )
}

fn run(kind: SchedulerKind) -> RunReport {
    let db = build_db(
        DbConfig {
            grid_side: 32,
            atom_side: 8,
            ghost: 2,
            timesteps: 4,
            dt: 0.002,
            seed: 1,
        },
        CostModel::paper_testbed(),
        DataMode::Virtual,
        1, // single-atom cache: amortization must come from co-scheduling
        CachePolicyKind::Lru,
    );
    let sched = build_scheduler(kind, MetricParams::paper_testbed(), 50, 30_000.0);
    let mut ex = Executor::new(db, sched, SimConfig::default());
    ex.run(&fig2_trace())
}

#[test]
fn jaws_reads_each_shared_region_once() {
    let noshare = run(SchedulerKind::NoShare);
    let jaws = run(SchedulerKind::Jaws2 { batch_k: 4 });
    // 9 queries over regions {R1 x2, R2, R3 x3, R4 x2, R5}: the single-atom
    // cache cannot bridge NoShare's arrival-order interleaving, so it pays
    // redundant reads; JAWS co-schedules the shared queries and needs only
    // (about) the 5 distinct regions.
    assert_eq!(noshare.queries_completed, 9);
    assert_eq!(jaws.queries_completed, 9);
    assert!(
        jaws.disk.reads <= 6,
        "JAWS should read ~5 distinct regions, read {}",
        jaws.disk.reads
    );
    assert!(
        jaws.disk.reads < noshare.disk.reads,
        "JAWS {} reads vs NoShare {}",
        jaws.disk.reads,
        noshare.disk.reads
    );
}

#[test]
fn jaws_finishes_faster_than_noshare() {
    let noshare = run(SchedulerKind::NoShare);
    let jaws = run(SchedulerKind::Jaws2 { batch_k: 4 });
    assert!(
        jaws.makespan_ms < noshare.makespan_ms,
        "JAWS {:.0} ms vs NoShare {:.0} ms",
        jaws.makespan_ms,
        noshare.makespan_ms
    );
}

#[test]
fn gating_captures_sharing_missed_without_job_awareness() {
    // Give the jobs larger arrival offsets than any queue residence, so pure
    // contention scheduling cannot merge the shared accesses; only gated
    // execution aligns them.
    // Think times long enough that chains progress slower than the gaps,
    // keeping all three jobs concurrent; arrival offsets larger than the
    // queue residence so contention alone cannot merge the shared accesses.
    let mk = |id: u64, arrival: f64, steps: &[(u32, u64)]| {
        let mut j = job(id, arrival, steps);
        j.think_ms = 3_000.0;
        j
    };
    let trace = Trace::new(
        4,
        4,
        vec![
            mk(1, 0.0, &[(0, 1), (1, 3), (2, 4)]),
            mk(2, 2_500.0, &[(0, 2), (1, 3), (2, 4)]),
            mk(3, 5_000.0, &[(0, 1), (1, 3), (3, 5)]),
        ],
    );
    let run_with = |kind: SchedulerKind| {
        let db = build_db(
            DbConfig {
                grid_side: 32,
                atom_side: 8,
                ghost: 2,
                timesteps: 4,
                dt: 0.002,
                seed: 1,
            },
            CostModel::paper_testbed(),
            DataMode::Virtual,
            2,
            CachePolicyKind::Lru,
        );
        let sched = build_scheduler(kind, MetricParams::paper_testbed(), 50, 60_000.0);
        let mut ex = Executor::new(db, sched, SimConfig::default());
        ex.run(&trace)
    };
    let jaws1 = run_with(SchedulerKind::Jaws1 { batch_k: 4 });
    let jaws2 = run_with(SchedulerKind::Jaws2 { batch_k: 4 });
    assert!(
        jaws2.disk.reads < jaws1.disk.reads,
        "gating must save reads: JAWS_2 {} vs JAWS_1 {}",
        jaws2.disk.reads,
        jaws1.disk.reads
    );
}
