//! Integration tests for the §VII extensions and related-work baselines:
//! CasJobs multi-queue, QoS proportional deadlines, trajectory prefetching,
//! and multi-node cluster execution.

use jaws::prelude::*;
use jaws::sim::{ClusterConfig, ClusterExecutor, FailurePlan};

fn db_cfg() -> DbConfig {
    DbConfig {
        grid_side: 32,
        atom_side: 8,
        ghost: 2,
        timesteps: 8,
        dt: 0.002,
        seed: 5,
    }
}

fn run(kind: SchedulerKind, trace: &Trace) -> RunReport {
    let db = build_db(
        db_cfg(),
        CostModel::paper_testbed(),
        DataMode::Virtual,
        16,
        CachePolicyKind::LruK,
    );
    let sched = build_scheduler(kind, MetricParams::paper_testbed(), 25, 10_000.0);
    let mut ex = Executor::new(db, sched, SimConfig::default());
    ex.run(trace)
}

#[test]
fn casjobs_drains_and_reports() {
    let trace = TraceGenerator::new(GenConfig::small(71)).generate();
    let r = run(SchedulerKind::CasJobs { threshold_ms: 600 }, &trace);
    assert_eq!(r.queries_completed, trace.query_count() as u64);
    assert_eq!(r.scheduler, "CasJobs");
    assert!(!r.truncated);
}

#[test]
fn casjobs_shares_nothing_like_noshare() {
    let trace = TraceGenerator::new(GenConfig::small(71)).generate();
    let cas = run(SchedulerKind::CasJobs { threshold_ms: 600 }, &trace);
    let jaws = run(SchedulerKind::Jaws2 { batch_k: 10 }, &trace);
    assert!(
        cas.disk.reads > jaws.disk.reads,
        "CasJobs {} reads vs JAWS {}",
        cas.disk.reads,
        jaws.disk.reads
    );
}

#[test]
fn qos_drains_with_bounded_makespan() {
    let trace = TraceGenerator::new(GenConfig::small(73)).generate();
    let qos = run(SchedulerKind::Qos { stretch_x10: 30 }, &trace);
    let noshare = run(SchedulerKind::NoShare, &trace);
    assert_eq!(qos.queries_completed, trace.query_count() as u64);
    assert_eq!(qos.scheduler, "JAWS-QoS");
    assert!(
        qos.makespan_ms <= noshare.makespan_ms,
        "EDF sharing should not be slower than NoShare"
    );
}

#[test]
fn qos_bounds_the_worst_case_better_than_contention() {
    // The §VII promise: tail response of a saturated replay is tighter under
    // proportional deadlines than under pure contention order.
    let trace = TraceGenerator::new(GenConfig::small(75))
        .generate()
        .speedup(10.0);
    let qos = run(SchedulerKind::Qos { stretch_x10: 30 }, &trace);
    let lr2 = run(SchedulerKind::LifeRaft2, &trace);
    assert!(
        qos.response.max <= lr2.response.max,
        "QoS max rt {:.0} vs LifeRaft_2 {:.0}",
        qos.response.max,
        lr2.response.max
    );
}

#[test]
fn cluster_with_jaws_qos_and_casjobs_nodes() {
    // The factory plumbing works inside the cluster executor too.
    let trace = TraceGenerator::new(GenConfig::small(77)).generate();
    for kind in [
        SchedulerKind::CasJobs { threshold_ms: 600 },
        SchedulerKind::Qos { stretch_x10: 20 },
    ] {
        let mut ex = ClusterExecutor::new(ClusterConfig {
            nodes: 2,
            db: db_cfg(),
            cost: CostModel::paper_testbed(),
            scheduler: kind,
            cache_policy: CachePolicyKind::Slru,
            cache_atoms_per_node: 8,
            run_len: 25,
            gate_timeout_ms: 10_000.0,
            sim: SimConfig::default(),
            failures: FailurePlan::none(),
            replication: jaws_sim::ReplicationConfig::disabled(),
        });
        let r = ex.run(&trace);
        assert_eq!(
            r.aggregate.queries_completed,
            trace.query_count() as u64,
            "{} cluster dropped queries",
            kind.name()
        );
    }
}

#[test]
fn prefetching_helps_an_idle_chain_workload() {
    // Ordered chains with long think times leave idle capacity; prefetching
    // must convert it into cache hits without perturbing correctness.
    let cfg = GenConfig {
        jobs: 20,
        single_timestep_frac: 0.0, // all tracking chains
        oneoff_frac: 0.0,
        ..GenConfig::small(79)
    };
    let trace = TraceGenerator::new(cfg).generate();
    let mk = |prefetch: bool| {
        let db = build_db(
            db_cfg(),
            CostModel::paper_testbed(),
            DataMode::Virtual,
            32,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(
            SchedulerKind::Jaws2 { batch_k: 8 },
            MetricParams::paper_testbed(),
            25,
            10_000.0,
        );
        let mut ex = Executor::new(
            db,
            sched,
            SimConfig {
                prefetch,
                ..SimConfig::default()
            },
        );
        let r = ex.run(&trace);
        (r, ex.prefetch_reads())
    };
    let (base, base_reads) = mk(false);
    let (pf, pf_reads) = mk(true);
    assert_eq!(base_reads, 0);
    assert!(pf_reads > 0, "prefetcher idle-path never fired");
    assert_eq!(pf.queries_completed, base.queries_completed);
    assert!(
        pf.mean_response_ms <= base.mean_response_ms * 1.05,
        "prefetching must not hurt latency: {:.1} vs {:.1}",
        pf.mean_response_ms,
        base.mean_response_ms
    );
}

#[test]
fn one_node_cluster_is_equivalent_to_the_single_executor() {
    // The cluster machinery (query splitting, part barriers, per-node
    // declarations) must collapse to the plain executor when nodes = 1.
    let trace = TraceGenerator::new(GenConfig::small(81)).generate();
    let single = run(SchedulerKind::LifeRaft2, &trace);
    let mut ex = ClusterExecutor::new(ClusterConfig {
        nodes: 1,
        db: db_cfg(),
        cost: CostModel::paper_testbed(),
        scheduler: SchedulerKind::LifeRaft2,
        cache_policy: CachePolicyKind::LruK,
        cache_atoms_per_node: 16,
        run_len: 25,
        gate_timeout_ms: 10_000.0,
        sim: SimConfig::default(),
        failures: FailurePlan::none(),
        replication: jaws_sim::ReplicationConfig::disabled(),
    });
    let cluster = ex.run(&trace);
    assert_eq!(
        cluster.aggregate.queries_completed,
        single.queries_completed
    );
    assert_eq!(cluster.aggregate.disk.reads, single.disk.reads);
    assert!(
        (cluster.aggregate.makespan_ms - single.makespan_ms).abs() < 1e-6,
        "cluster {:.3} vs single {:.3}",
        cluster.aggregate.makespan_ms,
        single.makespan_ms
    );
    assert!((cluster.aggregate.mean_response_ms - single.mean_response_ms).abs() < 1e-6);
}
