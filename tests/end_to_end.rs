//! End-to-end integration: full pipeline from trace generation through
//! scheduling, caching and execution, across every scheduler and cache
//! policy combination.

use jaws::prelude::*;

fn small_db(policy: CachePolicyKind, cache_atoms: usize) -> TurbDb {
    build_db(
        DbConfig {
            grid_side: 32,
            atom_side: 8,
            ghost: 2,
            timesteps: 8,
            dt: 0.002,
            seed: 5,
        },
        CostModel::paper_testbed(),
        DataMode::Virtual,
        cache_atoms,
        policy,
    )
}

fn run(
    kind: SchedulerKind,
    policy: CachePolicyKind,
    cache_atoms: usize,
    trace: &Trace,
) -> RunReport {
    let sched = build_scheduler(kind, MetricParams::paper_testbed(), 25, 10_000.0);
    let mut ex = Executor::new(small_db(policy, cache_atoms), sched, SimConfig::default());
    ex.run(trace)
}

#[test]
fn every_scheduler_and_policy_combination_drains_the_trace() {
    let trace = TraceGenerator::new(GenConfig::small(31)).generate();
    let total = trace.query_count() as u64;
    for kind in SchedulerKind::evaluation_set() {
        for policy in [
            CachePolicyKind::Lru,
            CachePolicyKind::LruK,
            CachePolicyKind::Slru,
            CachePolicyKind::Urc,
        ] {
            let r = run(kind, policy, 16, &trace);
            assert_eq!(
                r.queries_completed,
                total,
                "{} + {:?} dropped queries",
                kind.name(),
                policy
            );
            assert!(!r.truncated);
            assert!(r.response.max >= r.response.p50);
        }
    }
}

#[test]
fn batch_schedulers_dominate_noshare_under_contention() {
    let trace = TraceGenerator::new(GenConfig::small(33)).generate();
    let noshare = run(SchedulerKind::NoShare, CachePolicyKind::LruK, 16, &trace);
    for kind in [
        SchedulerKind::LifeRaft1,
        SchedulerKind::LifeRaft2,
        SchedulerKind::Jaws1 { batch_k: 10 },
        SchedulerKind::Jaws2 { batch_k: 10 },
    ] {
        let r = run(kind, CachePolicyKind::LruK, 16, &trace);
        assert!(
            r.disk.reads < noshare.disk.reads,
            "{} reads {} vs NoShare {}",
            kind.name(),
            r.disk.reads,
            noshare.disk.reads
        );
        assert!(
            r.makespan_ms <= noshare.makespan_ms,
            "{} slower than NoShare",
            kind.name()
        );
    }
}

#[test]
fn workload_knowledge_improves_cache_hit_ratio() {
    // Table I's direction: with the JAWS scheduler, URC (full workload
    // knowledge) must beat the knowledge-free LRU-K baseline on hit ratio
    // under cache pressure.
    // At very small caches the comparison is seed-noise; at a working-set
    // sized cache the knowledge-driven policies win consistently (Table I).
    let trace = TraceGenerator::new(GenConfig::small(37)).generate();
    let lruk = run(
        SchedulerKind::Jaws2 { batch_k: 10 },
        CachePolicyKind::LruK,
        32,
        &trace,
    );
    let urc = run(
        SchedulerKind::Jaws2 { batch_k: 10 },
        CachePolicyKind::Urc,
        32,
        &trace,
    );
    let slru = run(
        SchedulerKind::Jaws2 { batch_k: 10 },
        CachePolicyKind::Slru,
        32,
        &trace,
    );
    assert!(
        urc.cache.hit_ratio() > lruk.cache.hit_ratio(),
        "URC {:.3} should beat LRU-K {:.3}",
        urc.cache.hit_ratio(),
        lruk.cache.hit_ratio()
    );
    assert!(
        slru.cache.hit_ratio() > lruk.cache.hit_ratio(),
        "SLRU {:.3} should beat LRU-K {:.3}",
        slru.cache.hit_ratio(),
        lruk.cache.hit_ratio()
    );
    assert!(urc.cache_overhead_ms_per_query >= 0.0);
}

#[test]
fn reports_are_serializable() {
    let trace = TraceGenerator::new(GenConfig::small(39)).generate();
    let r = run(
        SchedulerKind::Jaws2 { batch_k: 10 },
        CachePolicyKind::Slru,
        16,
        &trace,
    );
    let json = serde_json::to_string(&r).expect("report serializes");
    assert!(json.contains("throughput_qps"));
    assert!(json.contains("JAWS_2"));
}

#[test]
fn trace_save_load_execute_round_trip() {
    let trace = TraceGenerator::new(GenConfig::small(41)).generate();
    let mut buf = Vec::new();
    trace.save_json(&mut buf).expect("save");
    let loaded = Trace::load_json(buf.as_slice()).expect("load");
    let a = run(SchedulerKind::LifeRaft2, CachePolicyKind::LruK, 16, &trace);
    let b = run(SchedulerKind::LifeRaft2, CachePolicyKind::LruK, 16, &loaded);
    assert_eq!(a.queries_completed, b.queries_completed);
    assert_eq!(a.disk.reads, b.disk.reads);
    assert!((a.makespan_ms - b.makespan_ms).abs() < 1e-9);
}

#[test]
fn speedup_sweep_is_monotone_in_offered_load_for_noshare_response() {
    // As saturation rises, NoShare's mean response time must not improve —
    // the monotonicity underlying Fig. 11(b).
    let trace = TraceGenerator::new(GenConfig::small(43)).generate();
    let mut last_rt = 0.0;
    for speedup in [0.5, 2.0, 8.0] {
        let scaled = trace.speedup(speedup);
        let r = run(SchedulerKind::NoShare, CachePolicyKind::LruK, 16, &scaled);
        assert!(
            r.mean_response_ms >= last_rt * 0.8,
            "response collapsed at speedup {speedup}: {} vs {}",
            r.mean_response_ms,
            last_rt
        );
        last_rt = r.mean_response_ms;
    }
}
