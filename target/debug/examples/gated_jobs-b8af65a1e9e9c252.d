/root/repo/target/debug/examples/gated_jobs-b8af65a1e9e9c252.d: examples/gated_jobs.rs Cargo.toml

/root/repo/target/debug/examples/libgated_jobs-b8af65a1e9e9c252.rmeta: examples/gated_jobs.rs Cargo.toml

examples/gated_jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
