/root/repo/target/debug/examples/cluster_replay-3f0977cd56c1bd9e.d: examples/cluster_replay.rs

/root/repo/target/debug/examples/cluster_replay-3f0977cd56c1bd9e: examples/cluster_replay.rs

examples/cluster_replay.rs:
