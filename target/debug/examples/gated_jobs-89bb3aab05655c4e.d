/root/repo/target/debug/examples/gated_jobs-89bb3aab05655c4e.d: examples/gated_jobs.rs

/root/repo/target/debug/examples/gated_jobs-89bb3aab05655c4e: examples/gated_jobs.rs

examples/gated_jobs.rs:
