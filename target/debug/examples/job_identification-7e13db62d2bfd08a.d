/root/repo/target/debug/examples/job_identification-7e13db62d2bfd08a.d: examples/job_identification.rs

/root/repo/target/debug/examples/job_identification-7e13db62d2bfd08a: examples/job_identification.rs

examples/job_identification.rs:
