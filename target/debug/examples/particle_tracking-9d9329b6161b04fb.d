/root/repo/target/debug/examples/particle_tracking-9d9329b6161b04fb.d: examples/particle_tracking.rs Cargo.toml

/root/repo/target/debug/examples/libparticle_tracking-9d9329b6161b04fb.rmeta: examples/particle_tracking.rs Cargo.toml

examples/particle_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
