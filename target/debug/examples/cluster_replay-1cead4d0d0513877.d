/root/repo/target/debug/examples/cluster_replay-1cead4d0d0513877.d: examples/cluster_replay.rs Cargo.toml

/root/repo/target/debug/examples/libcluster_replay-1cead4d0d0513877.rmeta: examples/cluster_replay.rs Cargo.toml

examples/cluster_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
