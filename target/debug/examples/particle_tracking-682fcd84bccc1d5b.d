/root/repo/target/debug/examples/particle_tracking-682fcd84bccc1d5b.d: examples/particle_tracking.rs

/root/repo/target/debug/examples/particle_tracking-682fcd84bccc1d5b: examples/particle_tracking.rs

examples/particle_tracking.rs:
