/root/repo/target/debug/examples/quickstart-ef08f8d92b29d6b4.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ef08f8d92b29d6b4.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
