/root/repo/target/debug/examples/quickstart-bab0abfae408955c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bab0abfae408955c: examples/quickstart.rs

examples/quickstart.rs:
