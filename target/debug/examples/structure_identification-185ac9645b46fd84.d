/root/repo/target/debug/examples/structure_identification-185ac9645b46fd84.d: examples/structure_identification.rs Cargo.toml

/root/repo/target/debug/examples/libstructure_identification-185ac9645b46fd84.rmeta: examples/structure_identification.rs Cargo.toml

examples/structure_identification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
