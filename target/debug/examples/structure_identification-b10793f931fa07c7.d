/root/repo/target/debug/examples/structure_identification-b10793f931fa07c7.d: examples/structure_identification.rs

/root/repo/target/debug/examples/structure_identification-b10793f931fa07c7: examples/structure_identification.rs

examples/structure_identification.rs:
