/root/repo/target/debug/examples/job_identification-581b9c147912a98f.d: examples/job_identification.rs Cargo.toml

/root/repo/target/debug/examples/libjob_identification-581b9c147912a98f.rmeta: examples/job_identification.rs Cargo.toml

examples/job_identification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
