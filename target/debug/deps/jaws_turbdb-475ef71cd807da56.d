/root/repo/target/debug/deps/jaws_turbdb-475ef71cd807da56.d: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs

/root/repo/target/debug/deps/jaws_turbdb-475ef71cd807da56: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs

crates/turbdb/src/lib.rs:
crates/turbdb/src/atom.rs:
crates/turbdb/src/btree.rs:
crates/turbdb/src/config.rs:
crates/turbdb/src/db.rs:
crates/turbdb/src/disk.rs:
crates/turbdb/src/kernels.rs:
crates/turbdb/src/structures.rs:
crates/turbdb/src/synth.rs:
