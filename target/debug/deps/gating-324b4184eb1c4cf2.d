/root/repo/target/debug/deps/gating-324b4184eb1c4cf2.d: crates/bench/benches/gating.rs Cargo.toml

/root/repo/target/debug/deps/libgating-324b4184eb1c4cf2.rmeta: crates/bench/benches/gating.rs Cargo.toml

crates/bench/benches/gating.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
