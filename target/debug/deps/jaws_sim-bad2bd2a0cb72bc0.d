/root/repo/target/debug/deps/jaws_sim-bad2bd2a0cb72bc0.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libjaws_sim-bad2bd2a0cb72bc0.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/executor.rs:
crates/sim/src/report.rs:
crates/sim/src/setup.rs:
crates/sim/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
