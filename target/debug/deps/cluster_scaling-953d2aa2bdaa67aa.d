/root/repo/target/debug/deps/cluster_scaling-953d2aa2bdaa67aa.d: crates/bench/src/bin/cluster_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_scaling-953d2aa2bdaa67aa.rmeta: crates/bench/src/bin/cluster_scaling.rs Cargo.toml

crates/bench/src/bin/cluster_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
