/root/repo/target/debug/deps/jaws_sim-963ed225550df9f3.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

/root/repo/target/debug/deps/jaws_sim-963ed225550df9f3: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/executor.rs:
crates/sim/src/report.rs:
crates/sim/src/setup.rs:
crates/sim/src/sweep.rs:
