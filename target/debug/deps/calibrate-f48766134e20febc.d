/root/repo/target/debug/deps/calibrate-f48766134e20febc.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-f48766134e20febc: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
