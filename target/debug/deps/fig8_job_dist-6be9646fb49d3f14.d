/root/repo/target/debug/deps/fig8_job_dist-6be9646fb49d3f14.d: crates/bench/src/bin/fig8_job_dist.rs

/root/repo/target/debug/deps/fig8_job_dist-6be9646fb49d3f14: crates/bench/src/bin/fig8_job_dist.rs

crates/bench/src/bin/fig8_job_dist.rs:
