/root/repo/target/debug/deps/morton-610cf11919628f11.d: crates/bench/benches/morton.rs Cargo.toml

/root/repo/target/debug/deps/libmorton-610cf11919628f11.rmeta: crates/bench/benches/morton.rs Cargo.toml

crates/bench/benches/morton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
