/root/repo/target/debug/deps/table1_caching-b64e2a3e205041a3.d: crates/bench/src/bin/table1_caching.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_caching-b64e2a3e205041a3.rmeta: crates/bench/src/bin/table1_caching.rs Cargo.toml

crates/bench/src/bin/table1_caching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
