/root/repo/target/debug/deps/jaws_cache-7a2435cce32a5f0d.d: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs crates/cache/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libjaws_cache-7a2435cce32a5f0d.rmeta: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs crates/cache/src/proptests.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/lru.rs:
crates/cache/src/lruk.rs:
crates/cache/src/policy.rs:
crates/cache/src/pool.rs:
crates/cache/src/slru.rs:
crates/cache/src/twoq.rs:
crates/cache/src/urc.rs:
crates/cache/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
