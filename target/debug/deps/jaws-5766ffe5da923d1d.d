/root/repo/target/debug/deps/jaws-5766ffe5da923d1d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjaws-5766ffe5da923d1d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
