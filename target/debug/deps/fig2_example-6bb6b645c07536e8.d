/root/repo/target/debug/deps/fig2_example-6bb6b645c07536e8.d: tests/fig2_example.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_example-6bb6b645c07536e8.rmeta: tests/fig2_example.rs Cargo.toml

tests/fig2_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
