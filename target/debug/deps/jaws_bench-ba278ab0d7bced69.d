/root/repo/target/debug/deps/jaws_bench-ba278ab0d7bced69.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/jaws_bench-ba278ab0d7bced69: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
