/root/repo/target/debug/deps/rand_chacha-88c1bfd223887c06.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-88c1bfd223887c06: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
