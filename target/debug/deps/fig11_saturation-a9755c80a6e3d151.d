/root/repo/target/debug/deps/fig11_saturation-a9755c80a6e3d151.d: crates/bench/src/bin/fig11_saturation.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_saturation-a9755c80a6e3d151.rmeta: crates/bench/src/bin/fig11_saturation.rs Cargo.toml

crates/bench/src/bin/fig11_saturation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
