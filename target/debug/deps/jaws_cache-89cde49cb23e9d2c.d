/root/repo/target/debug/deps/jaws_cache-89cde49cb23e9d2c.d: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs

/root/repo/target/debug/deps/libjaws_cache-89cde49cb23e9d2c.rlib: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs

/root/repo/target/debug/deps/libjaws_cache-89cde49cb23e9d2c.rmeta: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs

crates/cache/src/lib.rs:
crates/cache/src/lru.rs:
crates/cache/src/lruk.rs:
crates/cache/src/policy.rs:
crates/cache/src/pool.rs:
crates/cache/src/slru.rs:
crates/cache/src/twoq.rs:
crates/cache/src/urc.rs:
