/root/repo/target/debug/deps/starvation-2cd252886422ec24.d: crates/bench/src/bin/starvation.rs

/root/repo/target/debug/deps/starvation-2cd252886422ec24: crates/bench/src/bin/starvation.rs

crates/bench/src/bin/starvation.rs:
