/root/repo/target/debug/deps/cluster_scaling-1fb19587fb3dda79.d: crates/bench/src/bin/cluster_scaling.rs

/root/repo/target/debug/deps/cluster_scaling-1fb19587fb3dda79: crates/bench/src/bin/cluster_scaling.rs

crates/bench/src/bin/cluster_scaling.rs:
