/root/repo/target/debug/deps/fig12_batch_size-e70023c7110d4777.d: crates/bench/src/bin/fig12_batch_size.rs

/root/repo/target/debug/deps/fig12_batch_size-e70023c7110d4777: crates/bench/src/bin/fig12_batch_size.rs

crates/bench/src/bin/fig12_batch_size.rs:
