/root/repo/target/debug/deps/jaws_workload-3b01408e9bdd5e95.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

/root/repo/target/debug/deps/jaws_workload-3b01408e9bdd5e95: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/jobid.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace.rs:
crates/workload/src/types.rs:
