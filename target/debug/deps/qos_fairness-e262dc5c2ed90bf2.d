/root/repo/target/debug/deps/qos_fairness-e262dc5c2ed90bf2.d: crates/bench/src/bin/qos_fairness.rs

/root/repo/target/debug/deps/qos_fairness-e262dc5c2ed90bf2: crates/bench/src/bin/qos_fairness.rs

crates/bench/src/bin/qos_fairness.rs:
