/root/repo/target/debug/deps/jaws_morton-2b64b29b7ae5d1ab.d: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs crates/morton/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libjaws_morton-2b64b29b7ae5d1ab.rmeta: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs crates/morton/src/proptests.rs Cargo.toml

crates/morton/src/lib.rs:
crates/morton/src/atom.rs:
crates/morton/src/bigmin.rs:
crates/morton/src/encode.rs:
crates/morton/src/key.rs:
crates/morton/src/range.rs:
crates/morton/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
