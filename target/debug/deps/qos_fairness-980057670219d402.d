/root/repo/target/debug/deps/qos_fairness-980057670219d402.d: crates/bench/src/bin/qos_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libqos_fairness-980057670219d402.rmeta: crates/bench/src/bin/qos_fairness.rs Cargo.toml

crates/bench/src/bin/qos_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
