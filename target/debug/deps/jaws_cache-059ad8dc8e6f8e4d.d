/root/repo/target/debug/deps/jaws_cache-059ad8dc8e6f8e4d.d: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs

/root/repo/target/debug/deps/libjaws_cache-059ad8dc8e6f8e4d.rlib: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs

/root/repo/target/debug/deps/libjaws_cache-059ad8dc8e6f8e4d.rmeta: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs

crates/cache/src/lib.rs:
crates/cache/src/lru.rs:
crates/cache/src/lruk.rs:
crates/cache/src/policy.rs:
crates/cache/src/pool.rs:
crates/cache/src/slru.rs:
crates/cache/src/twoq.rs:
crates/cache/src/urc.rs:
