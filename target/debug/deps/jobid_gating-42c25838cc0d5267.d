/root/repo/target/debug/deps/jobid_gating-42c25838cc0d5267.d: crates/bench/src/bin/jobid_gating.rs Cargo.toml

/root/repo/target/debug/deps/libjobid_gating-42c25838cc0d5267.rmeta: crates/bench/src/bin/jobid_gating.rs Cargo.toml

crates/bench/src/bin/jobid_gating.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
