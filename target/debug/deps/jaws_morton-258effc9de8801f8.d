/root/repo/target/debug/deps/jaws_morton-258effc9de8801f8.d: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs Cargo.toml

/root/repo/target/debug/deps/libjaws_morton-258effc9de8801f8.rmeta: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs Cargo.toml

crates/morton/src/lib.rs:
crates/morton/src/atom.rs:
crates/morton/src/bigmin.rs:
crates/morton/src/encode.rs:
crates/morton/src/key.rs:
crates/morton/src/range.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
