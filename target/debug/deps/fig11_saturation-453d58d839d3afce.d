/root/repo/target/debug/deps/fig11_saturation-453d58d839d3afce.d: crates/bench/src/bin/fig11_saturation.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_saturation-453d58d839d3afce.rmeta: crates/bench/src/bin/fig11_saturation.rs Cargo.toml

crates/bench/src/bin/fig11_saturation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
