/root/repo/target/debug/deps/scheduler_step-6499bfd259792700.d: crates/bench/benches/scheduler_step.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler_step-6499bfd259792700.rmeta: crates/bench/benches/scheduler_step.rs Cargo.toml

crates/bench/benches/scheduler_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
