/root/repo/target/debug/deps/jaws_bench-96b59152a37c3a91.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjaws_bench-96b59152a37c3a91.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
