/root/repo/target/debug/deps/trace_tools-83e2a3bccf590f63.d: crates/bench/src/bin/trace_tools.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_tools-83e2a3bccf590f63.rmeta: crates/bench/src/bin/trace_tools.rs Cargo.toml

crates/bench/src/bin/trace_tools.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
