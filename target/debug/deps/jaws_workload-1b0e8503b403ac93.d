/root/repo/target/debug/deps/jaws_workload-1b0e8503b403ac93.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libjaws_workload-1b0e8503b403ac93.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/jobid.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace.rs:
crates/workload/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
