/root/repo/target/debug/deps/fig10_throughput-41c39c41f3f88202.d: crates/bench/src/bin/fig10_throughput.rs

/root/repo/target/debug/deps/fig10_throughput-41c39c41f3f88202: crates/bench/src/bin/fig10_throughput.rs

crates/bench/src/bin/fig10_throughput.rs:
