/root/repo/target/debug/deps/jaws_turbdb-a785fea6cfb70350.d: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs

/root/repo/target/debug/deps/libjaws_turbdb-a785fea6cfb70350.rlib: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs

/root/repo/target/debug/deps/libjaws_turbdb-a785fea6cfb70350.rmeta: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs

crates/turbdb/src/lib.rs:
crates/turbdb/src/atom.rs:
crates/turbdb/src/btree.rs:
crates/turbdb/src/config.rs:
crates/turbdb/src/db.rs:
crates/turbdb/src/disk.rs:
crates/turbdb/src/kernels.rs:
crates/turbdb/src/structures.rs:
crates/turbdb/src/synth.rs:
