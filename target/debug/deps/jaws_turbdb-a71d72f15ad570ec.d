/root/repo/target/debug/deps/jaws_turbdb-a71d72f15ad570ec.d: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libjaws_turbdb-a71d72f15ad570ec.rmeta: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs Cargo.toml

crates/turbdb/src/lib.rs:
crates/turbdb/src/atom.rs:
crates/turbdb/src/btree.rs:
crates/turbdb/src/config.rs:
crates/turbdb/src/db.rs:
crates/turbdb/src/disk.rs:
crates/turbdb/src/kernels.rs:
crates/turbdb/src/structures.rs:
crates/turbdb/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
