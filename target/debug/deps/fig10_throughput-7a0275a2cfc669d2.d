/root/repo/target/debug/deps/fig10_throughput-7a0275a2cfc669d2.d: crates/bench/src/bin/fig10_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_throughput-7a0275a2cfc669d2.rmeta: crates/bench/src/bin/fig10_throughput.rs Cargo.toml

crates/bench/src/bin/fig10_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
