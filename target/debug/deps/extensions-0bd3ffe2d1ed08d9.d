/root/repo/target/debug/deps/extensions-0bd3ffe2d1ed08d9.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-0bd3ffe2d1ed08d9: tests/extensions.rs

tests/extensions.rs:
