/root/repo/target/debug/deps/jaws_workload-0aad0eddd8fb2c31.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

/root/repo/target/debug/deps/libjaws_workload-0aad0eddd8fb2c31.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

/root/repo/target/debug/deps/libjaws_workload-0aad0eddd8fb2c31.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/jobid.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace.rs:
crates/workload/src/types.rs:
