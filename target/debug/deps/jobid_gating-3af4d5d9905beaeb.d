/root/repo/target/debug/deps/jobid_gating-3af4d5d9905beaeb.d: crates/bench/src/bin/jobid_gating.rs

/root/repo/target/debug/deps/jobid_gating-3af4d5d9905beaeb: crates/bench/src/bin/jobid_gating.rs

crates/bench/src/bin/jobid_gating.rs:
