/root/repo/target/debug/deps/jaws_cache-b688771d9772766a.d: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs crates/cache/src/proptests.rs

/root/repo/target/debug/deps/jaws_cache-b688771d9772766a: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs crates/cache/src/proptests.rs

crates/cache/src/lib.rs:
crates/cache/src/lru.rs:
crates/cache/src/lruk.rs:
crates/cache/src/policy.rs:
crates/cache/src/pool.rs:
crates/cache/src/slru.rs:
crates/cache/src/twoq.rs:
crates/cache/src/urc.rs:
crates/cache/src/proptests.rs:
