/root/repo/target/debug/deps/starvation-8906fead0690e9c5.d: crates/bench/src/bin/starvation.rs

/root/repo/target/debug/deps/starvation-8906fead0690e9c5: crates/bench/src/bin/starvation.rs

crates/bench/src/bin/starvation.rs:
