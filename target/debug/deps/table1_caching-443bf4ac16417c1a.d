/root/repo/target/debug/deps/table1_caching-443bf4ac16417c1a.d: crates/bench/src/bin/table1_caching.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_caching-443bf4ac16417c1a.rmeta: crates/bench/src/bin/table1_caching.rs Cargo.toml

crates/bench/src/bin/table1_caching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
