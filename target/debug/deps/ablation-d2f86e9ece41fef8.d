/root/repo/target/debug/deps/ablation-d2f86e9ece41fef8.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-d2f86e9ece41fef8: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
