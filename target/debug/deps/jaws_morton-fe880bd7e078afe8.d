/root/repo/target/debug/deps/jaws_morton-fe880bd7e078afe8.d: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs

/root/repo/target/debug/deps/libjaws_morton-fe880bd7e078afe8.rlib: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs

/root/repo/target/debug/deps/libjaws_morton-fe880bd7e078afe8.rmeta: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs

crates/morton/src/lib.rs:
crates/morton/src/atom.rs:
crates/morton/src/bigmin.rs:
crates/morton/src/encode.rs:
crates/morton/src/key.rs:
crates/morton/src/range.rs:
