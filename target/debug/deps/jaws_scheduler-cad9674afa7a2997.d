/root/repo/target/debug/deps/jaws_scheduler-cad9674afa7a2997.d: crates/scheduler/src/lib.rs crates/scheduler/src/adaptive.rs crates/scheduler/src/align.rs crates/scheduler/src/batch.rs crates/scheduler/src/casjobs.rs crates/scheduler/src/gating.rs crates/scheduler/src/jaws.rs crates/scheduler/src/liferaft.rs crates/scheduler/src/noshare.rs crates/scheduler/src/policy.rs crates/scheduler/src/prefetch.rs crates/scheduler/src/qos.rs crates/scheduler/src/queues.rs

/root/repo/target/debug/deps/libjaws_scheduler-cad9674afa7a2997.rlib: crates/scheduler/src/lib.rs crates/scheduler/src/adaptive.rs crates/scheduler/src/align.rs crates/scheduler/src/batch.rs crates/scheduler/src/casjobs.rs crates/scheduler/src/gating.rs crates/scheduler/src/jaws.rs crates/scheduler/src/liferaft.rs crates/scheduler/src/noshare.rs crates/scheduler/src/policy.rs crates/scheduler/src/prefetch.rs crates/scheduler/src/qos.rs crates/scheduler/src/queues.rs

/root/repo/target/debug/deps/libjaws_scheduler-cad9674afa7a2997.rmeta: crates/scheduler/src/lib.rs crates/scheduler/src/adaptive.rs crates/scheduler/src/align.rs crates/scheduler/src/batch.rs crates/scheduler/src/casjobs.rs crates/scheduler/src/gating.rs crates/scheduler/src/jaws.rs crates/scheduler/src/liferaft.rs crates/scheduler/src/noshare.rs crates/scheduler/src/policy.rs crates/scheduler/src/prefetch.rs crates/scheduler/src/qos.rs crates/scheduler/src/queues.rs

crates/scheduler/src/lib.rs:
crates/scheduler/src/adaptive.rs:
crates/scheduler/src/align.rs:
crates/scheduler/src/batch.rs:
crates/scheduler/src/casjobs.rs:
crates/scheduler/src/gating.rs:
crates/scheduler/src/jaws.rs:
crates/scheduler/src/liferaft.rs:
crates/scheduler/src/noshare.rs:
crates/scheduler/src/policy.rs:
crates/scheduler/src/prefetch.rs:
crates/scheduler/src/qos.rs:
crates/scheduler/src/queues.rs:
