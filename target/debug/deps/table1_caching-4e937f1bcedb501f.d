/root/repo/target/debug/deps/table1_caching-4e937f1bcedb501f.d: crates/bench/src/bin/table1_caching.rs

/root/repo/target/debug/deps/table1_caching-4e937f1bcedb501f: crates/bench/src/bin/table1_caching.rs

crates/bench/src/bin/table1_caching.rs:
