/root/repo/target/debug/deps/starvation-7c641faa3fe1ba69.d: crates/bench/src/bin/starvation.rs Cargo.toml

/root/repo/target/debug/deps/libstarvation-7c641faa3fe1ba69.rmeta: crates/bench/src/bin/starvation.rs Cargo.toml

crates/bench/src/bin/starvation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
