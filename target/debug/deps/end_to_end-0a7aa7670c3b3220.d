/root/repo/target/debug/deps/end_to_end-0a7aa7670c3b3220.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0a7aa7670c3b3220: tests/end_to_end.rs

tests/end_to_end.rs:
