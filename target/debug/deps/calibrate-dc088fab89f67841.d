/root/repo/target/debug/deps/calibrate-dc088fab89f67841.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-dc088fab89f67841: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
