/root/repo/target/debug/deps/rand_chacha-e33d4c9a99fd4c53.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-e33d4c9a99fd4c53.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-e33d4c9a99fd4c53.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
