/root/repo/target/debug/deps/fig9_timestep_dist-159d17131421733f.d: crates/bench/src/bin/fig9_timestep_dist.rs

/root/repo/target/debug/deps/fig9_timestep_dist-159d17131421733f: crates/bench/src/bin/fig9_timestep_dist.rs

crates/bench/src/bin/fig9_timestep_dist.rs:
