/root/repo/target/debug/deps/extensions-6ad3533b2162737c.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-6ad3533b2162737c.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
