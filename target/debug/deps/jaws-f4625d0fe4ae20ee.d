/root/repo/target/debug/deps/jaws-f4625d0fe4ae20ee.d: src/lib.rs

/root/repo/target/debug/deps/libjaws-f4625d0fe4ae20ee.rlib: src/lib.rs

/root/repo/target/debug/deps/libjaws-f4625d0fe4ae20ee.rmeta: src/lib.rs

src/lib.rs:
