/root/repo/target/debug/deps/fig8_job_dist-6ce1327b260a4da1.d: crates/bench/src/bin/fig8_job_dist.rs

/root/repo/target/debug/deps/fig8_job_dist-6ce1327b260a4da1: crates/bench/src/bin/fig8_job_dist.rs

crates/bench/src/bin/fig8_job_dist.rs:
