/root/repo/target/debug/deps/trace_tools-c5845481f36e6639.d: crates/bench/src/bin/trace_tools.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_tools-c5845481f36e6639.rmeta: crates/bench/src/bin/trace_tools.rs Cargo.toml

crates/bench/src/bin/trace_tools.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
