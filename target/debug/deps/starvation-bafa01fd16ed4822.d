/root/repo/target/debug/deps/starvation-bafa01fd16ed4822.d: crates/bench/src/bin/starvation.rs Cargo.toml

/root/repo/target/debug/deps/libstarvation-bafa01fd16ed4822.rmeta: crates/bench/src/bin/starvation.rs Cargo.toml

crates/bench/src/bin/starvation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
