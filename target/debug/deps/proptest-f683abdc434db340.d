/root/repo/target/debug/deps/proptest-f683abdc434db340.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f683abdc434db340.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f683abdc434db340.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
