/root/repo/target/debug/deps/fig9_timestep_dist-f319a6455057d72f.d: crates/bench/src/bin/fig9_timestep_dist.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_timestep_dist-f319a6455057d72f.rmeta: crates/bench/src/bin/fig9_timestep_dist.rs Cargo.toml

crates/bench/src/bin/fig9_timestep_dist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
