/root/repo/target/debug/deps/jaws_workload-b35d44572549e277.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

/root/repo/target/debug/deps/libjaws_workload-b35d44572549e277.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

/root/repo/target/debug/deps/libjaws_workload-b35d44572549e277.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/jobid.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace.rs:
crates/workload/src/types.rs:
