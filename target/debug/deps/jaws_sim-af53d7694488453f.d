/root/repo/target/debug/deps/jaws_sim-af53d7694488453f.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

/root/repo/target/debug/deps/libjaws_sim-af53d7694488453f.rlib: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

/root/repo/target/debug/deps/libjaws_sim-af53d7694488453f.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/executor.rs:
crates/sim/src/report.rs:
crates/sim/src/setup.rs:
crates/sim/src/sweep.rs:
