/root/repo/target/debug/deps/jaws_scheduler-c7e28c8dc2ea896d.d: crates/scheduler/src/lib.rs crates/scheduler/src/adaptive.rs crates/scheduler/src/align.rs crates/scheduler/src/batch.rs crates/scheduler/src/casjobs.rs crates/scheduler/src/gating.rs crates/scheduler/src/jaws.rs crates/scheduler/src/liferaft.rs crates/scheduler/src/noshare.rs crates/scheduler/src/policy.rs crates/scheduler/src/prefetch.rs crates/scheduler/src/qos.rs crates/scheduler/src/queues.rs Cargo.toml

/root/repo/target/debug/deps/libjaws_scheduler-c7e28c8dc2ea896d.rmeta: crates/scheduler/src/lib.rs crates/scheduler/src/adaptive.rs crates/scheduler/src/align.rs crates/scheduler/src/batch.rs crates/scheduler/src/casjobs.rs crates/scheduler/src/gating.rs crates/scheduler/src/jaws.rs crates/scheduler/src/liferaft.rs crates/scheduler/src/noshare.rs crates/scheduler/src/policy.rs crates/scheduler/src/prefetch.rs crates/scheduler/src/qos.rs crates/scheduler/src/queues.rs Cargo.toml

crates/scheduler/src/lib.rs:
crates/scheduler/src/adaptive.rs:
crates/scheduler/src/align.rs:
crates/scheduler/src/batch.rs:
crates/scheduler/src/casjobs.rs:
crates/scheduler/src/gating.rs:
crates/scheduler/src/jaws.rs:
crates/scheduler/src/liferaft.rs:
crates/scheduler/src/noshare.rs:
crates/scheduler/src/policy.rs:
crates/scheduler/src/prefetch.rs:
crates/scheduler/src/qos.rs:
crates/scheduler/src/queues.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
