/root/repo/target/debug/deps/proptest-23f053cfa94b8ecc.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-23f053cfa94b8ecc: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
