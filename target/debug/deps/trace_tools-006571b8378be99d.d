/root/repo/target/debug/deps/trace_tools-006571b8378be99d.d: crates/bench/src/bin/trace_tools.rs

/root/repo/target/debug/deps/trace_tools-006571b8378be99d: crates/bench/src/bin/trace_tools.rs

crates/bench/src/bin/trace_tools.rs:
