/root/repo/target/debug/deps/trace_tools-9f16e8234f684111.d: crates/bench/src/bin/trace_tools.rs

/root/repo/target/debug/deps/trace_tools-9f16e8234f684111: crates/bench/src/bin/trace_tools.rs

crates/bench/src/bin/trace_tools.rs:
