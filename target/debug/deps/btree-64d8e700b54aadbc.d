/root/repo/target/debug/deps/btree-64d8e700b54aadbc.d: crates/bench/benches/btree.rs Cargo.toml

/root/repo/target/debug/deps/libbtree-64d8e700b54aadbc.rmeta: crates/bench/benches/btree.rs Cargo.toml

crates/bench/benches/btree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
