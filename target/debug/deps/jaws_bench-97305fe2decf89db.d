/root/repo/target/debug/deps/jaws_bench-97305fe2decf89db.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjaws_bench-97305fe2decf89db.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjaws_bench-97305fe2decf89db.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
