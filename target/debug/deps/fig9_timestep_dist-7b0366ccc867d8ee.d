/root/repo/target/debug/deps/fig9_timestep_dist-7b0366ccc867d8ee.d: crates/bench/src/bin/fig9_timestep_dist.rs

/root/repo/target/debug/deps/fig9_timestep_dist-7b0366ccc867d8ee: crates/bench/src/bin/fig9_timestep_dist.rs

crates/bench/src/bin/fig9_timestep_dist.rs:
