/root/repo/target/debug/deps/fig12_batch_size-a77667dd7acbadd5.d: crates/bench/src/bin/fig12_batch_size.rs

/root/repo/target/debug/deps/fig12_batch_size-a77667dd7acbadd5: crates/bench/src/bin/fig12_batch_size.rs

crates/bench/src/bin/fig12_batch_size.rs:
