/root/repo/target/debug/deps/fig2_example-9ff67228b7394ea1.d: tests/fig2_example.rs

/root/repo/target/debug/deps/fig2_example-9ff67228b7394ea1: tests/fig2_example.rs

tests/fig2_example.rs:
