/root/repo/target/debug/deps/jaws-80db37519868acc8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjaws-80db37519868acc8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
