/root/repo/target/debug/deps/table1_caching-57634fbb7c0f06ea.d: crates/bench/src/bin/table1_caching.rs

/root/repo/target/debug/deps/table1_caching-57634fbb7c0f06ea: crates/bench/src/bin/table1_caching.rs

crates/bench/src/bin/table1_caching.rs:
