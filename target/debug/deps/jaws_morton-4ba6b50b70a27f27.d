/root/repo/target/debug/deps/jaws_morton-4ba6b50b70a27f27.d: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs crates/morton/src/proptests.rs

/root/repo/target/debug/deps/jaws_morton-4ba6b50b70a27f27: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs crates/morton/src/proptests.rs

crates/morton/src/lib.rs:
crates/morton/src/atom.rs:
crates/morton/src/bigmin.rs:
crates/morton/src/encode.rs:
crates/morton/src/key.rs:
crates/morton/src/range.rs:
crates/morton/src/proptests.rs:
