/root/repo/target/debug/deps/jaws-f2eef352ad26ff74.d: src/lib.rs

/root/repo/target/debug/deps/libjaws-f2eef352ad26ff74.rlib: src/lib.rs

/root/repo/target/debug/deps/libjaws-f2eef352ad26ff74.rmeta: src/lib.rs

src/lib.rs:
