/root/repo/target/debug/deps/jobid_gating-46cfa22e3bedcbc5.d: crates/bench/src/bin/jobid_gating.rs

/root/repo/target/debug/deps/jobid_gating-46cfa22e3bedcbc5: crates/bench/src/bin/jobid_gating.rs

crates/bench/src/bin/jobid_gating.rs:
