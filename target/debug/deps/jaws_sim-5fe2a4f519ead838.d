/root/repo/target/debug/deps/jaws_sim-5fe2a4f519ead838.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

/root/repo/target/debug/deps/libjaws_sim-5fe2a4f519ead838.rlib: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

/root/repo/target/debug/deps/libjaws_sim-5fe2a4f519ead838.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/executor.rs:
crates/sim/src/report.rs:
crates/sim/src/setup.rs:
crates/sim/src/sweep.rs:
