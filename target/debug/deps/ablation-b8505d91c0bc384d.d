/root/repo/target/debug/deps/ablation-b8505d91c0bc384d.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-b8505d91c0bc384d: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
