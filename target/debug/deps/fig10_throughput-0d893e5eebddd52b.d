/root/repo/target/debug/deps/fig10_throughput-0d893e5eebddd52b.d: crates/bench/src/bin/fig10_throughput.rs

/root/repo/target/debug/deps/fig10_throughput-0d893e5eebddd52b: crates/bench/src/bin/fig10_throughput.rs

crates/bench/src/bin/fig10_throughput.rs:
