/root/repo/target/debug/deps/jaws-ee44f477674ab9bc.d: src/lib.rs

/root/repo/target/debug/deps/jaws-ee44f477674ab9bc: src/lib.rs

src/lib.rs:
