/root/repo/target/debug/deps/qos_fairness-b2b234cdced3af94.d: crates/bench/src/bin/qos_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libqos_fairness-b2b234cdced3af94.rmeta: crates/bench/src/bin/qos_fairness.rs Cargo.toml

crates/bench/src/bin/qos_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
