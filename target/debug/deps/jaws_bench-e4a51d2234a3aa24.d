/root/repo/target/debug/deps/jaws_bench-e4a51d2234a3aa24.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjaws_bench-e4a51d2234a3aa24.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjaws_bench-e4a51d2234a3aa24.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
