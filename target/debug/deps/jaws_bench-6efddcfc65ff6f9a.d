/root/repo/target/debug/deps/jaws_bench-6efddcfc65ff6f9a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjaws_bench-6efddcfc65ff6f9a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
