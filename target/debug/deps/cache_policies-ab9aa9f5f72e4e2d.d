/root/repo/target/debug/deps/cache_policies-ab9aa9f5f72e4e2d.d: crates/bench/benches/cache_policies.rs Cargo.toml

/root/repo/target/debug/deps/libcache_policies-ab9aa9f5f72e4e2d.rmeta: crates/bench/benches/cache_policies.rs Cargo.toml

crates/bench/benches/cache_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
