/root/repo/target/debug/deps/fig11_saturation-e5e50d89e8a4a818.d: crates/bench/src/bin/fig11_saturation.rs

/root/repo/target/debug/deps/fig11_saturation-e5e50d89e8a4a818: crates/bench/src/bin/fig11_saturation.rs

crates/bench/src/bin/fig11_saturation.rs:
