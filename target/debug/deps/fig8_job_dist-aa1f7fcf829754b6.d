/root/repo/target/debug/deps/fig8_job_dist-aa1f7fcf829754b6.d: crates/bench/src/bin/fig8_job_dist.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_job_dist-aa1f7fcf829754b6.rmeta: crates/bench/src/bin/fig8_job_dist.rs Cargo.toml

crates/bench/src/bin/fig8_job_dist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
