/root/repo/target/debug/deps/cluster_scaling-4e27916de38088b1.d: crates/bench/src/bin/cluster_scaling.rs

/root/repo/target/debug/deps/cluster_scaling-4e27916de38088b1: crates/bench/src/bin/cluster_scaling.rs

crates/bench/src/bin/cluster_scaling.rs:
