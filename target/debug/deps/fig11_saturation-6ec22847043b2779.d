/root/repo/target/debug/deps/fig11_saturation-6ec22847043b2779.d: crates/bench/src/bin/fig11_saturation.rs

/root/repo/target/debug/deps/fig11_saturation-6ec22847043b2779: crates/bench/src/bin/fig11_saturation.rs

crates/bench/src/bin/fig11_saturation.rs:
