/root/repo/target/debug/deps/morton_order-f4a50914b596b281.d: crates/bench/benches/morton_order.rs Cargo.toml

/root/repo/target/debug/deps/libmorton_order-f4a50914b596b281.rmeta: crates/bench/benches/morton_order.rs Cargo.toml

crates/bench/benches/morton_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
