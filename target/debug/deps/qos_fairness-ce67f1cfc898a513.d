/root/repo/target/debug/deps/qos_fairness-ce67f1cfc898a513.d: crates/bench/src/bin/qos_fairness.rs

/root/repo/target/debug/deps/qos_fairness-ce67f1cfc898a513: crates/bench/src/bin/qos_fairness.rs

crates/bench/src/bin/qos_fairness.rs:
