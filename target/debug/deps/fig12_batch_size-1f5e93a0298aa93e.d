/root/repo/target/debug/deps/fig12_batch_size-1f5e93a0298aa93e.d: crates/bench/src/bin/fig12_batch_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_batch_size-1f5e93a0298aa93e.rmeta: crates/bench/src/bin/fig12_batch_size.rs Cargo.toml

crates/bench/src/bin/fig12_batch_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
