/root/repo/target/debug/deps/fig10_throughput-07ce642684cecc5b.d: crates/bench/src/bin/fig10_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_throughput-07ce642684cecc5b.rmeta: crates/bench/src/bin/fig10_throughput.rs Cargo.toml

crates/bench/src/bin/fig10_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
