/root/repo/target/release/examples/quickstart-d50e5ca12aa201c1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d50e5ca12aa201c1: examples/quickstart.rs

examples/quickstart.rs:
