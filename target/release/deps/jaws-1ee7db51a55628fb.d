/root/repo/target/release/deps/jaws-1ee7db51a55628fb.d: src/lib.rs

/root/repo/target/release/deps/libjaws-1ee7db51a55628fb.rlib: src/lib.rs

/root/repo/target/release/deps/libjaws-1ee7db51a55628fb.rmeta: src/lib.rs

src/lib.rs:
