/root/repo/target/release/deps/fig11_saturation-5ccdb127deba5e92.d: crates/bench/src/bin/fig11_saturation.rs

/root/repo/target/release/deps/fig11_saturation-5ccdb127deba5e92: crates/bench/src/bin/fig11_saturation.rs

crates/bench/src/bin/fig11_saturation.rs:
