/root/repo/target/release/deps/proptest-3564cd25bee035ea.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3564cd25bee035ea.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3564cd25bee035ea.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
