/root/repo/target/release/deps/table1_caching-278f5f056de6d361.d: crates/bench/src/bin/table1_caching.rs

/root/repo/target/release/deps/table1_caching-278f5f056de6d361: crates/bench/src/bin/table1_caching.rs

crates/bench/src/bin/table1_caching.rs:
