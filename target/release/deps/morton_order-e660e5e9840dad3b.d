/root/repo/target/release/deps/morton_order-e660e5e9840dad3b.d: crates/bench/benches/morton_order.rs

/root/repo/target/release/deps/morton_order-e660e5e9840dad3b: crates/bench/benches/morton_order.rs

crates/bench/benches/morton_order.rs:
