/root/repo/target/release/deps/qos_fairness-a67adbee6c2e76e1.d: crates/bench/src/bin/qos_fairness.rs

/root/repo/target/release/deps/qos_fairness-a67adbee6c2e76e1: crates/bench/src/bin/qos_fairness.rs

crates/bench/src/bin/qos_fairness.rs:
