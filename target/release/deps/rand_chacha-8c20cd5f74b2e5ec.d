/root/repo/target/release/deps/rand_chacha-8c20cd5f74b2e5ec.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-8c20cd5f74b2e5ec.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-8c20cd5f74b2e5ec.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
