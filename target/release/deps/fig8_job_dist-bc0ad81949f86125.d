/root/repo/target/release/deps/fig8_job_dist-bc0ad81949f86125.d: crates/bench/src/bin/fig8_job_dist.rs

/root/repo/target/release/deps/fig8_job_dist-bc0ad81949f86125: crates/bench/src/bin/fig8_job_dist.rs

crates/bench/src/bin/fig8_job_dist.rs:
