/root/repo/target/release/deps/jaws-1156129e8432a6d8.d: src/lib.rs

/root/repo/target/release/deps/jaws-1156129e8432a6d8: src/lib.rs

src/lib.rs:
