/root/repo/target/release/deps/jaws_cache-f7705f55750d6361.d: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs

/root/repo/target/release/deps/libjaws_cache-f7705f55750d6361.rlib: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs

/root/repo/target/release/deps/libjaws_cache-f7705f55750d6361.rmeta: crates/cache/src/lib.rs crates/cache/src/lru.rs crates/cache/src/lruk.rs crates/cache/src/policy.rs crates/cache/src/pool.rs crates/cache/src/slru.rs crates/cache/src/twoq.rs crates/cache/src/urc.rs

crates/cache/src/lib.rs:
crates/cache/src/lru.rs:
crates/cache/src/lruk.rs:
crates/cache/src/policy.rs:
crates/cache/src/pool.rs:
crates/cache/src/slru.rs:
crates/cache/src/twoq.rs:
crates/cache/src/urc.rs:
