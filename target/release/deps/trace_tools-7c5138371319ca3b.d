/root/repo/target/release/deps/trace_tools-7c5138371319ca3b.d: crates/bench/src/bin/trace_tools.rs

/root/repo/target/release/deps/trace_tools-7c5138371319ca3b: crates/bench/src/bin/trace_tools.rs

crates/bench/src/bin/trace_tools.rs:
