/root/repo/target/release/deps/starvation-e36412b6913cf274.d: crates/bench/src/bin/starvation.rs

/root/repo/target/release/deps/starvation-e36412b6913cf274: crates/bench/src/bin/starvation.rs

crates/bench/src/bin/starvation.rs:
