/root/repo/target/release/deps/jaws_sim-4d03e38b963778e7.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

/root/repo/target/release/deps/libjaws_sim-4d03e38b963778e7.rlib: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

/root/repo/target/release/deps/libjaws_sim-4d03e38b963778e7.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/executor.rs crates/sim/src/report.rs crates/sim/src/setup.rs crates/sim/src/sweep.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/executor.rs:
crates/sim/src/report.rs:
crates/sim/src/setup.rs:
crates/sim/src/sweep.rs:
