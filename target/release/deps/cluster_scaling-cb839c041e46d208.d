/root/repo/target/release/deps/cluster_scaling-cb839c041e46d208.d: crates/bench/src/bin/cluster_scaling.rs

/root/repo/target/release/deps/cluster_scaling-cb839c041e46d208: crates/bench/src/bin/cluster_scaling.rs

crates/bench/src/bin/cluster_scaling.rs:
