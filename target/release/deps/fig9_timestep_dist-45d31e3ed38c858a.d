/root/repo/target/release/deps/fig9_timestep_dist-45d31e3ed38c858a.d: crates/bench/src/bin/fig9_timestep_dist.rs

/root/repo/target/release/deps/fig9_timestep_dist-45d31e3ed38c858a: crates/bench/src/bin/fig9_timestep_dist.rs

crates/bench/src/bin/fig9_timestep_dist.rs:
