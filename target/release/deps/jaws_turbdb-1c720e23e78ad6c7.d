/root/repo/target/release/deps/jaws_turbdb-1c720e23e78ad6c7.d: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs

/root/repo/target/release/deps/libjaws_turbdb-1c720e23e78ad6c7.rlib: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs

/root/repo/target/release/deps/libjaws_turbdb-1c720e23e78ad6c7.rmeta: crates/turbdb/src/lib.rs crates/turbdb/src/atom.rs crates/turbdb/src/btree.rs crates/turbdb/src/config.rs crates/turbdb/src/db.rs crates/turbdb/src/disk.rs crates/turbdb/src/kernels.rs crates/turbdb/src/structures.rs crates/turbdb/src/synth.rs

crates/turbdb/src/lib.rs:
crates/turbdb/src/atom.rs:
crates/turbdb/src/btree.rs:
crates/turbdb/src/config.rs:
crates/turbdb/src/db.rs:
crates/turbdb/src/disk.rs:
crates/turbdb/src/kernels.rs:
crates/turbdb/src/structures.rs:
crates/turbdb/src/synth.rs:
