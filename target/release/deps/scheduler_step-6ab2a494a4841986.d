/root/repo/target/release/deps/scheduler_step-6ab2a494a4841986.d: crates/bench/benches/scheduler_step.rs

/root/repo/target/release/deps/scheduler_step-6ab2a494a4841986: crates/bench/benches/scheduler_step.rs

crates/bench/benches/scheduler_step.rs:
