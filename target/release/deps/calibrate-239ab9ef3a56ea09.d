/root/repo/target/release/deps/calibrate-239ab9ef3a56ea09.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-239ab9ef3a56ea09: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
