/root/repo/target/release/deps/ablation-c54067e335931bdc.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-c54067e335931bdc: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
