/root/repo/target/release/deps/jaws_morton-77a1bc6f0d010685.d: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs

/root/repo/target/release/deps/libjaws_morton-77a1bc6f0d010685.rlib: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs

/root/repo/target/release/deps/libjaws_morton-77a1bc6f0d010685.rmeta: crates/morton/src/lib.rs crates/morton/src/atom.rs crates/morton/src/bigmin.rs crates/morton/src/encode.rs crates/morton/src/key.rs crates/morton/src/range.rs

crates/morton/src/lib.rs:
crates/morton/src/atom.rs:
crates/morton/src/bigmin.rs:
crates/morton/src/encode.rs:
crates/morton/src/key.rs:
crates/morton/src/range.rs:
