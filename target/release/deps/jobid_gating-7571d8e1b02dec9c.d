/root/repo/target/release/deps/jobid_gating-7571d8e1b02dec9c.d: crates/bench/src/bin/jobid_gating.rs

/root/repo/target/release/deps/jobid_gating-7571d8e1b02dec9c: crates/bench/src/bin/jobid_gating.rs

crates/bench/src/bin/jobid_gating.rs:
