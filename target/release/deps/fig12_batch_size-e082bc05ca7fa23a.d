/root/repo/target/release/deps/fig12_batch_size-e082bc05ca7fa23a.d: crates/bench/src/bin/fig12_batch_size.rs

/root/repo/target/release/deps/fig12_batch_size-e082bc05ca7fa23a: crates/bench/src/bin/fig12_batch_size.rs

crates/bench/src/bin/fig12_batch_size.rs:
