/root/repo/target/release/deps/gating-3526b2c24db91a05.d: crates/bench/benches/gating.rs

/root/repo/target/release/deps/gating-3526b2c24db91a05: crates/bench/benches/gating.rs

crates/bench/benches/gating.rs:
