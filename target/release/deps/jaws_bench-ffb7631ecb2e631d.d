/root/repo/target/release/deps/jaws_bench-ffb7631ecb2e631d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libjaws_bench-ffb7631ecb2e631d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libjaws_bench-ffb7631ecb2e631d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
