/root/repo/target/release/deps/jaws_workload-928f4174d51727d9.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

/root/repo/target/release/deps/libjaws_workload-928f4174d51727d9.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

/root/repo/target/release/deps/libjaws_workload-928f4174d51727d9.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/jobid.rs crates/workload/src/stats.rs crates/workload/src/trace.rs crates/workload/src/types.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/jobid.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace.rs:
crates/workload/src/types.rs:
