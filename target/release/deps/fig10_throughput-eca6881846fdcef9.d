/root/repo/target/release/deps/fig10_throughput-eca6881846fdcef9.d: crates/bench/src/bin/fig10_throughput.rs

/root/repo/target/release/deps/fig10_throughput-eca6881846fdcef9: crates/bench/src/bin/fig10_throughput.rs

crates/bench/src/bin/fig10_throughput.rs:
