//! # JAWS: Job-Aware Workload Scheduling for the Exploration of Turbulence Simulations
//!
//! A from-scratch Rust reproduction of the SC 2010 paper (Wang, Perlman,
//! Burns, Malik, Budavári, Meneveau, Szalay). JAWS is a job-aware,
//! data-driven batch scheduler for data-intensive scientific database
//! clusters: it splits queries into per-atom sub-queries, batches sub-queries
//! that touch the same data, aligns ordered jobs so shared reads are
//! co-scheduled, adapts its age bias to workload saturation, and coordinates
//! cache replacement with scheduling.
//!
//! This crate is a facade over the workspace:
//!
//! * [`morton`] — Z-order spatial indexing;
//! * [`turbdb`] — the simulated Turbulence Database Cluster substrate
//!   (synthetic DNS fields, atoms, clustered B+ tree, simulated disk,
//!   query kernels);
//! * [`cache`] — buffer cache with LRU / LRU-K / SLRU / URC replacement;
//! * [`workload`] — calibrated trace generation and job identification;
//! * [`scheduler`] — NoShare, LifeRaft and JAWS;
//! * [`sim`] — the discrete-event execution engine and sweep drivers;
//! * [`obs`] — deterministic, simulated-time structured tracing/metrics.
//!
//! ## Quickstart
//!
//! ```
//! use jaws::prelude::*;
//!
//! // Generate a small calibrated workload trace.
//! let trace = TraceGenerator::new(GenConfig::small(42)).generate();
//!
//! // Open a (virtual-payload) turbulence database with a 16-atom cache.
//! let db = build_db(
//!     DbConfig { grid_side: 32, atom_side: 8, ghost: 2, timesteps: 8,
//!                dt: 0.002, seed: 42 },
//!     CostModel::paper_testbed(),
//!     DataMode::Virtual,
//!     16,
//!     CachePolicyKind::Urc,
//! );
//!
//! // Run the full JAWS scheduler over the trace.
//! let scheduler = build_scheduler(
//!     SchedulerKind::Jaws2 { batch_k: 15 },
//!     MetricParams::paper_testbed(),
//!     50,
//!     60_000.0,
//! );
//! let mut executor = Executor::new(db, scheduler, SimConfig::default());
//! let report = executor.run(&trace);
//! assert!(report.queries_completed > 0);
//! println!("{}", report.summary());
//! ```

#![forbid(unsafe_code)]

pub use jaws_arena as arena;
pub use jaws_cache as cache;
pub use jaws_morton as morton;
pub use jaws_obs as obs;
pub use jaws_scheduler as scheduler;
pub use jaws_sim as sim;
pub use jaws_turbdb as turbdb;
pub use jaws_workload as workload;

/// Everything needed to run an experiment, in one import.
pub mod prelude {
    pub use jaws_cache::{BufferPool, CacheStats, Lru, LruK, Slru, Urc};
    pub use jaws_morton::{AtomId, MortonKey};
    pub use jaws_obs::{Event, JsonlRecorder, NullRecorder, ObsSink, Record, Recorder};
    pub use jaws_scheduler::{
        AlphaController, Batch, GatingConfig, GatingGraph, Jaws, JawsConfig, LifeRaft,
        MetricParams, NoShare, Residency, Scheduler,
    };
    pub use jaws_sim::{
        build_db, build_policy, build_scheduler, run_parallel, CachePolicyKind, Executor,
        RunReport, SchedulerKind, SimConfig,
    };
    pub use jaws_turbdb::{
        kernels, AtomData, CostModel, DataMode, DbConfig, SyntheticField, TurbDb,
    };
    pub use jaws_workload::{
        identify_jobs, Footprint, GenConfig, Job, JobIdConfig, JobIdEvaluation, JobKind, Query,
        QueryOp, SubmitRecord, Trace, TraceGenerator,
    };
}
