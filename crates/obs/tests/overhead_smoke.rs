//! Smoke check that the disabled path really is a branch, not work.
//!
//! This file is the one sanctioned wall-clock shim in the obs crate: it uses
//! `std::time::Instant` to put a *generous* ceiling on the cost of emitting
//! through a null sink, and is explicitly allowlisted by jaws-lint's D002
//! rule (see `wallclock_exempt` in crates/lint). Production code must keep
//! stamping records from the engine's simulated `now_ms` only.

use jaws_obs::{Event, ObsSink};
use std::time::Instant;

#[test]
fn null_sink_emission_is_cheap() {
    let sink = ObsSink::null();
    let start = Instant::now();
    let mut emitted = 0u64;
    for t in 0..1_000_000u64 {
        // Mirror a real call site: check enabled() before building the event.
        if sink.enabled() {
            sink.emit(
                t as f64,
                Event::AtomRead {
                    timestep: 0,
                    morton: t,
                    hit: false,
                    io_ms: 0.0,
                },
            );
            emitted += 1;
        }
    }
    assert_eq!(emitted, 0, "null sink must report disabled");
    // A million enabled() checks are nanoseconds each; 2 s is orders of
    // magnitude of headroom so this never flakes on slow CI runners while
    // still catching an accidentally-hot disabled path (e.g. serializing
    // before checking).
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "disabled emission path too slow: {elapsed:?}"
    );
}
