//! Deterministic, simulated-time structured tracing and metrics (`jaws-obs`).
//!
//! Every component of the reproduction — engine, node pipelines, schedulers,
//! the buffer-cache-backed database — can emit typed [`Event`]s through an
//! [`ObsSink`]. Three invariants make the traces usable as a debugging and
//! regression substrate rather than best-effort logging:
//!
//! 1. **Simulated time only.** Records are stamped exclusively with the
//!    engine's `now_ms`; this crate contains no wall-clock or entropy source
//!    (jaws-lint rule D002 applies to it like any other crate). Two runs with
//!    the same seed therefore produce byte-identical JSONL traces — asserted
//!    by `crates/sim/tests/determinism.rs`.
//! 2. **Zero paid-when-disabled overhead.** The default sink is null: its
//!    [`ObsSink::enabled`] check is an `Option` test, and every emission site
//!    in the stack guards event *construction* behind it, so a run with no
//!    recorder wired does no allocation and produces bit-identical reports.
//! 3. **Deterministic event order under parallelism.** Recorders are
//!    `Arc<Mutex<_>>`-shared (`Recorder: Send`) so sinks may cross the
//!    `jaws-par` worker threads, but the engine never lets workers race on a
//!    shared recorder: parallel sections write into per-node [`VecRecorder`]
//!    buffers that are drained into the shared recorder (via
//!    [`ObsSink::forward`]) in a fixed node order on the coordinating thread.
//!    Event order is therefore the serial engine dispatch order at any
//!    thread count — byte-identical JSONL, not merely equivalent.
//!
//! The schema (serialized as one JSON object per line, events externally
//! tagged by variant name) is documented on [`Event`]; `trace_explain` in `crates/bench`
//! turns a JSONL trace into per-query latency breakdowns and per-batch
//! "why chosen" explanations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// What the gating graph decided for a query when it became available (or was
/// forcibly released later by the gate timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GateAction {
    /// Query is job-aware-gated: held back so ordered siblings can align.
    Held,
    /// Query (its own or a sibling's arrival) released it into the workload.
    Released,
    /// The gate timeout expired and the query was released unaligned.
    ForceReleased,
}

/// One scheduling choice inside a [`Event::BatchSelected`] record: an atom and
/// the utility terms that ranked it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtomChoice {
    /// Morton key of the chosen atom within the batch timestep.
    pub morton: u64,
    /// Eq. 1 workload throughput term (benefit/cost, residency-aware).
    pub eq1: f64,
    /// Eq. 2 age-biased utility the batch ranking actually sorted on.
    pub aged: f64,
}

/// A structured trace event covering the full query lifecycle.
///
/// Serialized externally tagged (`{"AtomRead": {...}}`) so a JSONL trace is
/// self-describing line by line. All identifiers are the engine's own: query
/// ids are trace query ids, part ids are the packed `(node+1) << 48 | query`
/// sub-query ids used by the cluster routing layer, and atoms are
/// `(timestep, morton)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A job (ordered/batched/single client session) arrived at the engine.
    JobArrival {
        /// Trace job id.
        job: u64,
        /// Job kind name (`ordered`, `batched`, ...).
        kind: String,
        /// Number of queries the job will submit.
        queries: u32,
    },
    /// A query was submitted to the engine (its response clock starts here).
    QuerySubmit {
        /// Trace query id.
        query: u64,
        /// Owning trace job id.
        job: u64,
        /// Timestep the query touches.
        timestep: u32,
        /// Number of atoms in its footprint.
        atoms: u32,
        /// Number of sample positions it evaluates.
        positions: u64,
    },
    /// A query part (sub-query) was routed to a node's slab.
    PartRouted {
        /// Original trace query id.
        query: u64,
        /// Packed part id (`engine::part_id`).
        part: u64,
        /// Destination node index.
        node: u32,
        /// Atoms of the footprint owned by that node.
        atoms: u32,
    },
    /// The gating graph ruled on a query.
    GateDecision {
        /// Query (part) id the decision applies to.
        query: u64,
        /// What was decided.
        action: GateAction,
    },
    /// The scheduler picked a batch; records the Eq. 1 / Eq. 2 terms behind
    /// the choice.
    BatchSelected {
        /// Timestep the batch reads.
        timestep: u32,
        /// Age-bias α in force at selection time.
        alpha: f64,
        /// Per-timestep mean aged utility used as the admission threshold.
        threshold: f64,
        /// The chosen atoms with their utility terms, in execution order.
        atoms: Vec<AtomChoice>,
    },
    /// A deadline-driven (QoS) scheduler assigned a query its deadline.
    DeadlineAssigned {
        /// Query (part) id.
        query: u64,
        /// Estimated service time used to stretch the deadline.
        estimate_ms: f64,
        /// Absolute simulated-time deadline.
        deadline_ms: f64,
    },
    /// A node pipeline executed a batch.
    BatchExecuted {
        /// Part ids whose last atom group completed in this batch.
        parts: Vec<u64>,
        /// Number of atom groups in the batch.
        atom_groups: u32,
        /// Total charged service time (dispatch + I/O + compute).
        service_ms: f64,
        /// I/O component of the service time (cold reads + stencil shells).
        io_ms: f64,
    },
    /// The database served one atom read.
    AtomRead {
        /// Atom timestep.
        timestep: u32,
        /// Atom Morton key.
        morton: u64,
        /// Whether it was a buffer-cache hit.
        hit: bool,
        /// Charged I/O time (0 on a hit).
        io_ms: f64,
    },
    /// The prefetcher issued a speculative read.
    PrefetchIssued {
        /// Predicted atom timestep.
        timestep: u32,
        /// Predicted atom Morton key.
        morton: u64,
    },
    /// The buffer cache evicted an atom; records its URC rank at eviction.
    CacheEvict {
        /// Evicted atom timestep.
        timestep: u32,
        /// Evicted atom Morton key.
        morton: u64,
        /// Mean utility of the atom's timestep at eviction (URC major key).
        timestep_mean: f64,
        /// The atom's own Eq. 1 utility at eviction (URC minor key).
        atom_utility: f64,
    },
    /// A cluster node died under a scripted `jaws_sim::FailurePlan` crash;
    /// its slab was re-routed and its pending parts re-dispatched.
    NodeFailed {
        /// The node that died.
        node: u32,
        /// The node that inherited its Morton slab.
        survivor: u32,
        /// Number of in-flight/queued parts re-dispatched off the dead node.
        redispatched: u64,
    },
    /// One sub-query part was re-enqueued through a survivor's scheduler
    /// after its owner crashed. `trace_explain` uses these to attribute
    /// recovery latency: the part's service restarts from scratch on `to`.
    PartRedispatched {
        /// The packed part id (unchanged across the re-dispatch, so its
        /// original query id still folds out via `engine::orig_id`).
        part: u64,
        /// The node that died holding the part.
        from: u32,
        /// The survivor now scheduling it.
        to: u32,
    },
    /// A node's charged service times are multiplied from this point on (a
    /// scripted straggler).
    NodeSlowdown {
        /// The straggling node.
        node: u32,
        /// The service-time multiplier now in force.
        factor: f64,
    },
    /// Dynamic placement promoted a hot Morton key: a replica of its atoms
    /// now serves queries alongside the static slab owner.
    ReplicaPromoted {
        /// The hot Morton key.
        morton: u64,
        /// The least-loaded live node chosen to host the replica.
        node: u32,
        /// Accesses inside the sliding window that crossed the threshold.
        window_accesses: u32,
    },
    /// A replica left the routing table — demoted because the access
    /// histogram drifted, or dropped because its host node crashed.
    ReplicaDropped {
        /// The Morton key that was replicated.
        morton: u64,
        /// The node that hosted the replica.
        node: u32,
        /// True when a scripted crash (not histogram drift) dropped it.
        crashed: bool,
    },
    /// Dynamic placement diverted a footprint atom of a submitted query from
    /// its slab owner to a less-loaded replica.
    ReplicaRouted {
        /// Original trace query id.
        query: u64,
        /// The diverted Morton key.
        morton: u64,
        /// The static slab owner that would have served it.
        owner: u32,
        /// The replica node actually chosen.
        replica: u32,
    },
    /// The adaptive controller closed a run and (possibly) moved α.
    AlphaAdjusted {
        /// α after the adjustment.
        alpha: f64,
        /// Mean response time of the closed run.
        mean_response_ms: f64,
        /// Throughput sample of the closed run.
        throughput_qps: f64,
    },
    /// A query's last part completed; its response time is final.
    QueryComplete {
        /// Original trace query id.
        query: u64,
        /// Submission-to-completion response time.
        response_ms: f64,
    },
    /// A named monotonic counter snapshot.
    Counter {
        /// Counter name (dotted, e.g. `engine.jobs_completed`).
        name: String,
        /// Counter value.
        value: u64,
    },
    /// One sample of a named distribution.
    Histogram {
        /// Histogram name.
        name: String,
        /// The sample.
        sample: f64,
    },
    /// Snapshot of the scheduler delta layer's monotone maintenance counters
    /// and arrangement sizes (emitted after a batch when the scheduler is
    /// configured to report them; off by default because it changes the trace
    /// byte-stream).
    DeltaStats {
        /// `Arrived` deltas applied so far.
        arrived: u64,
        /// `Taken` deltas applied so far.
        taken: u64,
        /// `Completed` deltas applied so far.
        completed: u64,
        /// `ResidencyChanged` deltas applied so far.
        residency_changed: u64,
        /// Per-atom Eq. 1 recomputations performed by integration.
        eq1_recomputes: u64,
        /// Per-timestep aggregate refolds performed by integration.
        ts_refolds: u64,
        /// Coarse O(#timesteps) scans that actually ran (memo misses).
        coarse_scans: u64,
        /// Atoms with pending work (arrangement size).
        pending_atoms: u64,
        /// Timesteps with pending work (arrangement size).
        pending_timesteps: u64,
    },
}

/// A timestamped, optionally node-tagged [`Event`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Simulated engine time of the event, in milliseconds.
    pub t_ms: f64,
    /// Node index for per-node components in a cluster run; `None`
    /// (serialized `null`) for engine-level events and single-node runs.
    pub node: Option<u32>,
    /// The event payload.
    pub event: Event,
}

/// Consumes [`Record`]s. Implementations must not read wall clocks or any
/// other nondeterministic source — a recorder is part of the simulation's
/// deterministic closure. `Send` is required so sinks can be carried across
/// the `jaws-par` worker threads (invariant 3 of the module docs governs how
/// they are used there).
pub trait Recorder: Send {
    /// Whether this recorder wants events at all. Emission sites skip event
    /// construction entirely when this is false, so a disabled recorder costs
    /// one branch per site.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one record. Called only when [`Recorder::enabled`] is true.
    fn record(&mut self, rec: &Record);
}

/// A recorder that drops everything and reports itself disabled, so emission
/// sites skip event construction. Wiring it must leave reports bit-identical
/// to not wiring anything (asserted in `crates/sim/tests/determinism.rs`).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _rec: &Record) {}
}

/// Keeps the last `capacity` records in memory — a flight recorder for tests
/// and interactive debugging.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    buf: VecDeque<Record>,
}

impl RingRecorder {
    /// Creates a ring holding at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.buf.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, rec: &Record) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec.clone());
    }
}

/// Serializes every record as one JSON line into an in-memory buffer. The
/// caller decides what to do with [`JsonlRecorder::contents`] (write a file,
/// diff against a second run, feed `trace_explain`); the recorder itself
/// performs no I/O so it stays deterministic and sandbox-free.
#[derive(Debug, Default)]
pub struct JsonlRecorder {
    out: String,
}

impl JsonlRecorder {
    /// Creates an empty JSONL buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The JSONL accumulated so far (one record per line, `\n`-terminated).
    pub fn contents(&self) -> &str {
        &self.out
    }

    /// Takes the buffer, leaving the recorder empty.
    pub fn take(&mut self) -> String {
        std::mem::take(&mut self.out)
    }
}

impl Recorder for JsonlRecorder {
    fn record(&mut self, rec: &Record) {
        // Record contains only plain structs/enums of serializable
        // primitives; serde_json cannot fail on them.
        let line = serde_json::to_string(rec).expect("Record serialization is infallible");
        self.out.push_str(&line);
        self.out.push('\n');
    }
}

/// Buffers records verbatim in arrival order. The engine gives each node a
/// private `VecRecorder` while a parallel section runs, then drains the
/// buffers into the real recorder in node order via [`ObsSink::forward`] —
/// reproducing the serial emission order exactly (module docs, invariant 3).
#[derive(Debug, Default)]
pub struct VecRecorder {
    records: Vec<Record>,
}

impl VecRecorder {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the buffered records (oldest first), leaving the buffer empty.
    pub fn take(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.records)
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Recorder for VecRecorder {
    fn record(&mut self, rec: &Record) {
        self.records.push(rec.clone());
    }
}

/// A cheap, cloneable handle to a shared [`Recorder`], tagged with an
/// optional node index. This is what gets threaded through the stack:
/// components store an `ObsSink` (null by default) and call
/// [`ObsSink::emit`] at decision points, guarding any non-trivial event
/// construction behind [`ObsSink::enabled`].
#[derive(Clone, Default)]
pub struct ObsSink {
    inner: Option<Arc<Mutex<dyn Recorder>>>,
    node: Option<u32>,
}

impl fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsSink")
            .field("wired", &self.inner.is_some())
            .field("node", &self.node)
            .finish()
    }
}

impl ObsSink {
    /// A sink with no recorder: `enabled()` is false, `emit` is a no-op.
    pub fn null() -> Self {
        Self::default()
    }

    /// Wraps a shared recorder.
    pub fn new(recorder: Arc<Mutex<dyn Recorder>>) -> Self {
        Self {
            inner: Some(recorder),
            node: None,
        }
    }

    /// A copy of this sink whose records carry `node` — used by the cluster
    /// executor to tag each pipeline's events.
    pub fn with_node(&self, node: u32) -> Self {
        Self {
            inner: self.inner.clone(),
            node: Some(node),
        }
    }

    /// Whether events will actually be kept. Emission sites use this to skip
    /// constructing events (cloning part lists, ranking snapshots) entirely.
    pub fn enabled(&self) -> bool {
        match &self.inner {
            // lint: invariant — a panicked recorder poisons the lock; no
            // recovery keeps the trace complete, so propagate the panic
            Some(r) => r.lock().expect("recorder lock poisoned").enabled(),
            None => false,
        }
    }

    /// Records `event` at simulated time `t_ms` if a recorder is wired and
    /// enabled.
    pub fn emit(&self, t_ms: f64, event: Event) {
        if let Some(r) = &self.inner {
            // lint: invariant — a panicked recorder poisons the lock; no
            // recovery keeps the trace complete, so propagate the panic
            let mut r = r.lock().expect("recorder lock poisoned");
            if r.enabled() {
                r.record(&Record {
                    t_ms,
                    node: self.node,
                    event,
                });
            }
        }
    }

    /// Re-records an already-stamped [`Record`] verbatim — timestamp and node
    /// tag untouched. This is the drain half of the buffered-parallelism
    /// protocol: per-node [`VecRecorder`] buffers are forwarded into the
    /// shared recorder in node order after a parallel section.
    pub fn forward(&self, rec: &Record) {
        if let Some(r) = &self.inner {
            // lint: invariant — a panicked recorder poisons the lock; no
            // recovery keeps the trace complete, so propagate the panic
            let mut r = r.lock().expect("recorder lock poisoned");
            if r.enabled() {
                r.record(rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ms: f64) -> Event {
        Event::AtomRead {
            timestep: 3,
            morton: 42,
            hit: t_ms > 0.0,
            io_ms: 1.5,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = ObsSink::null();
        assert!(!sink.enabled());
        sink.emit(1.0, sample(1.0)); // must not panic
    }

    #[test]
    fn null_recorder_reports_disabled_through_sink() {
        let sink = ObsSink::new(Arc::new(Mutex::new(NullRecorder)));
        assert!(!sink.enabled());
        sink.emit(1.0, sample(1.0));
    }

    #[test]
    fn ring_recorder_keeps_last_capacity_records() {
        let ring = Arc::new(Mutex::new(RingRecorder::new(2)));
        let sink = ObsSink::new(ring.clone());
        assert!(sink.enabled());
        for t in 0..5 {
            sink.emit(t as f64, sample(t as f64));
        }
        // lint: invariant — single-threaded test: a poisoned lock means an
        // earlier assertion already failed
        let ring = ring.lock().expect("ring recorder lock");
        assert_eq!(ring.len(), 2);
        let kept: Vec<f64> = ring.records().map(|r| r.t_ms).collect();
        assert_eq!(kept, vec![3.0, 4.0]);
    }

    #[test]
    fn jsonl_recorder_emits_tagged_lines_with_node() {
        let rec = Arc::new(Mutex::new(JsonlRecorder::new()));
        let sink = ObsSink::new(rec.clone()).with_node(7);
        sink.emit(12.5, sample(12.5));
        // lint: invariant — single-threaded test: a poisoned lock means an
        // earlier assertion already failed
        let out = rec
            .lock()
            .expect("jsonl recorder lock")
            .contents()
            .to_string();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("\"AtomRead\""), "{out}");
        assert!(out.contains("\"node\":7"), "{out}");
        assert!(out.contains("\"t_ms\":12.5"), "{out}");
    }

    #[test]
    fn jsonl_records_round_trip() {
        let rec = Record {
            t_ms: 1.0,
            node: None,
            event: Event::BatchSelected {
                timestep: 2,
                alpha: 0.5,
                threshold: 0.25,
                atoms: vec![AtomChoice {
                    morton: 9,
                    eq1: 0.1,
                    aged: 0.2,
                }],
            },
        };
        let line = serde_json::to_string(&rec).unwrap();
        assert!(line.contains("\"node\":null"), "{line}");
        let back: Record = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn delta_stats_event_round_trips() {
        let rec = Record {
            t_ms: 7.5,
            node: Some(2),
            event: Event::DeltaStats {
                arrived: 100,
                taken: 40,
                completed: 12,
                residency_changed: 9,
                eq1_recomputes: 55,
                ts_refolds: 8,
                coarse_scans: 3,
                pending_atoms: 60,
                pending_timesteps: 4,
            },
        };
        let line = serde_json::to_string(&rec).unwrap();
        assert!(line.contains("\"DeltaStats\""), "{line}");
        let back: Record = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn with_node_does_not_tag_the_original() {
        let rec = Arc::new(Mutex::new(RingRecorder::new(8)));
        let base = ObsSink::new(rec.clone());
        let tagged = base.with_node(3);
        base.emit(0.0, sample(0.0));
        tagged.emit(1.0, sample(1.0));
        // lint: invariant — single-threaded test: a poisoned lock means an
        // earlier assertion already failed
        let rec = rec.lock().expect("ring recorder lock");
        let nodes: Vec<Option<u32>> = rec.records().map(|r| r.node).collect();
        assert_eq!(nodes, vec![None, Some(3)]);
    }

    #[test]
    fn forward_replays_buffered_records_verbatim() {
        // The buffered-parallelism protocol: emit into a per-node VecRecorder
        // through a node-tagged sink, then forward into the real recorder
        // through an *untagged* sink — stamps and node tags must survive.
        let buf = Arc::new(Mutex::new(VecRecorder::new()));
        let node_sink = ObsSink::new(buf.clone()).with_node(2);
        node_sink.emit(5.0, sample(5.0));
        node_sink.emit(6.0, sample(6.0));
        // lint: invariant — single-threaded test: a poisoned lock means an
        // earlier assertion already failed
        let records = buf.lock().expect("buffer lock").take();
        assert_eq!(records.len(), 2);
        // lint: invariant — single-threaded test: a poisoned lock means an
        // earlier assertion already failed
        assert!(buf.lock().expect("buffer lock").is_empty());

        let shared = Arc::new(Mutex::new(JsonlRecorder::new()));
        let drain = ObsSink::new(shared.clone());
        for r in &records {
            drain.forward(r);
        }
        let direct = {
            let shared2 = Arc::new(Mutex::new(JsonlRecorder::new()));
            let sink2 = ObsSink::new(shared2.clone()).with_node(2);
            sink2.emit(5.0, sample(5.0));
            sink2.emit(6.0, sample(6.0));
            // lint: invariant — single-threaded test: a poisoned lock means
            // an earlier assertion already failed
            let out = shared2.lock().expect("jsonl recorder lock").take();
            out
        };
        // lint: invariant — single-threaded test: a poisoned lock means an
        // earlier assertion already failed
        assert_eq!(
            shared.lock().expect("jsonl recorder lock").contents(),
            direct
        );
    }

    #[test]
    fn recorders_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ObsSink>();
        assert_send::<VecRecorder>();
        assert_send::<JsonlRecorder>();
        assert_send::<RingRecorder>();
        assert_send::<NullRecorder>();
    }
}
