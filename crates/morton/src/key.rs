//! Typed Morton keys with cube-hierarchy operations.

use crate::encode::{decode, encode, MAX_COORD};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Morton (Z-order) index identifying one atom within a timestep.
///
/// The Turbulence database logically partitions space "into cubes of side 2^k
/// for k = 0, …, log(n)" (§III-A). A `MortonKey` addresses a unit cell (an
/// atom) and exposes that hierarchy: [`MortonKey::parent_at`] returns the
/// enclosing cube at a coarser level, and [`MortonKey::cube_range`] the
/// contiguous Morton interval the cube occupies — contiguity is what makes the
/// clustered B+ tree range scans efficient.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct MortonKey(pub u64);

impl MortonKey {
    /// Builds a key from per-axis cell coordinates.
    #[inline]
    pub fn from_coords(x: u32, y: u32, z: u32) -> Self {
        MortonKey(encode(x, y, z))
    }

    /// Recovers the per-axis cell coordinates.
    #[inline]
    pub fn coords(self) -> (u32, u32, u32) {
        decode(self.0)
    }

    /// The raw 63-bit code.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Key of the enclosing cube of side `2^level`, expressed as the smallest
    /// Morton key inside that cube (`level = 0` is the cell itself).
    ///
    /// Because the curve visits each aligned cube contiguously, the cube of
    /// side `2^level` containing `self` occupies the half-open Morton interval
    /// `[parent_at(level), parent_at(level) + 8^level)`.
    #[inline]
    pub fn parent_at(self, level: u32) -> MortonKey {
        debug_assert!(level <= 21);
        let mask = !((1u64 << (3 * level)) - 1);
        MortonKey(self.0 & mask)
    }

    /// Half-open Morton interval `[lo, hi)` covered by the enclosing cube of
    /// side `2^level`.
    #[inline]
    pub fn cube_range(self, level: u32) -> (MortonKey, MortonKey) {
        let lo = self.parent_at(level);
        (lo, MortonKey(lo.0 + (1u64 << (3 * level))))
    }

    /// Chebyshev (L∞) distance in cells between two keys — the natural
    /// adjacency metric for ghost-cell overlap between atoms.
    pub fn chebyshev_distance(self, other: MortonKey) -> u32 {
        let (ax, ay, az) = self.coords();
        let (bx, by, bz) = other.coords();
        let d = |a: u32, b: u32| a.abs_diff(b);
        d(ax, bx).max(d(ay, by)).max(d(az, bz))
    }

    /// The up-to-26 face/edge/corner neighbours of this cell whose coordinates
    /// stay within `[0, side)` on every axis, in Morton order.
    ///
    /// Used by interpolation kernels: a Lagrange stencil near an atom boundary
    /// also reads the neighbouring atoms (§V, locality of reference).
    pub fn neighbors_within(self, side: u32) -> Vec<MortonKey> {
        debug_assert!(side > 0 && side <= MAX_COORD + 1);
        let (x, y, z) = self.coords();
        let mut out = Vec::with_capacity(26);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    let nz = z as i64 + dz;
                    if (0..side as i64).contains(&nx)
                        && (0..side as i64).contains(&ny)
                        && (0..side as i64).contains(&nz)
                    {
                        out.push(MortonKey::from_coords(nx as u32, ny as u32, nz as u32));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

impl fmt::Display for MortonKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (x, y, z) = self.coords();
        write!(f, "m{}({},{},{})", self.0, x, y, z)
    }
}

impl From<u64> for MortonKey {
    fn from(v: u64) -> Self {
        MortonKey(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_of_cell_in_first_octant_is_origin() {
        let k = MortonKey::from_coords(1, 1, 1);
        assert_eq!(k.parent_at(1), MortonKey(0));
    }

    #[test]
    fn parent_at_zero_is_identity() {
        let k = MortonKey::from_coords(5, 9, 2);
        assert_eq!(k.parent_at(0), k);
    }

    #[test]
    fn cube_range_spans_exactly_8_pow_level_cells() {
        let k = MortonKey::from_coords(13, 7, 5);
        for level in 0..4 {
            let (lo, hi) = k.cube_range(level);
            assert_eq!(hi.0 - lo.0, 8u64.pow(level));
            assert!(lo <= k && k < hi, "key inside its own cube");
        }
    }

    #[test]
    fn cube_range_contains_every_cell_of_the_cube() {
        // Cube of side 4 at (4..8)³ == Morton interval of length 64.
        let k = MortonKey::from_coords(5, 6, 7);
        let (lo, hi) = k.cube_range(2);
        for x in 4..8 {
            for y in 4..8 {
                for z in 4..8 {
                    let c = MortonKey::from_coords(x, y, z);
                    assert!(lo <= c && c < hi, "{c} outside [{lo},{hi})");
                }
            }
        }
    }

    #[test]
    fn chebyshev_distance_is_max_axis_delta() {
        let a = MortonKey::from_coords(0, 0, 0);
        let b = MortonKey::from_coords(3, 1, 2);
        assert_eq!(a.chebyshev_distance(b), 3);
        assert_eq!(b.chebyshev_distance(a), 3);
        assert_eq!(a.chebyshev_distance(a), 0);
    }

    #[test]
    fn corner_cell_has_7_neighbors() {
        let k = MortonKey::from_coords(0, 0, 0);
        assert_eq!(k.neighbors_within(16).len(), 7);
    }

    #[test]
    fn interior_cell_has_26_neighbors() {
        let k = MortonKey::from_coords(8, 8, 8);
        let n = k.neighbors_within(16);
        assert_eq!(n.len(), 26);
        assert!(n.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        assert!(n.iter().all(|m| k.chebyshev_distance(*m) == 1));
    }

    #[test]
    fn face_cell_has_17_neighbors() {
        // On one face (z = 0) but interior in x and y.
        let k = MortonKey::from_coords(8, 8, 0);
        assert_eq!(k.neighbors_within(16).len(), 17);
    }

    #[test]
    fn neighbors_respect_grid_side() {
        let k = MortonKey::from_coords(15, 15, 15);
        assert_eq!(k.neighbors_within(16).len(), 7, "corner of a 16³ grid");
    }

    #[test]
    fn display_shows_coords() {
        let k = MortonKey::from_coords(1, 2, 3);
        let s = k.to_string();
        assert!(s.contains("(1,2,3)"), "{s}");
    }
}
