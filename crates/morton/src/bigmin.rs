//! BIGMIN/LITMAX pruning for Z-order range queries (Tropf & Herzog, 1981).
//!
//! A box query over Morton-ordered storage scans the key interval
//! `[zmin, zmax]`, but most keys in that interval can fall *outside* the box.
//! When a scan hits such a key, BIGMIN computes the smallest Morton key
//! greater than the current one that re-enters the box, letting the B+ tree
//! skip dead ranges instead of filtering key by key. This complements
//! [`cover_box`](crate::cover_box): covers pre-compute ranges (best for small
//! boxes), BIGMIN prunes on the fly (best for large boxes whose cover would
//! explode into many ranges).

use crate::encode::{decode, encode};
use crate::key::MortonKey;

/// The three interleaved bit masks of a 3-D Morton code.
const DIM: u32 = 3;

/// Loads the `dim`-th coordinate's bit at position `bit` of `code`.
#[inline]
fn bit_of(code: u64, dim: u32, bit: u32) -> bool {
    code >> (bit * DIM + dim) & 1 == 1
}

/// Returns `code` with the `dim`-th coordinate forced to the *minimum* value
/// that still has bit `bit` set: bit set, all lower bits of that dim cleared.
#[inline]
fn load_min(code: u64, dim: u32, bit: u32) -> u64 {
    let mut c = code;
    c |= 1 << (bit * DIM + dim);
    for b in 0..bit {
        c &= !(1 << (b * DIM + dim));
    }
    c
}

/// Returns `code` with the `dim`-th coordinate forced to the *maximum* value
/// that still has bit `bit` clear: bit cleared, all lower bits of that dim set.
#[inline]
fn load_max(code: u64, dim: u32, bit: u32) -> u64 {
    let mut c = code;
    c &= !(1 << (bit * DIM + dim));
    for b in 0..bit {
        c |= 1 << (b * DIM + dim);
    }
    c
}

/// Highest bit index worth scanning for the given bounds.
fn top_bit(zmax: u64) -> u32 {
    (63 - zmax.leading_zeros().min(63)) / DIM + 1
}

/// BIGMIN: the smallest Morton key `> current` whose coordinates lie inside
/// the box `[zmin, zmax]` (coordinate-wise, both inclusive). Returns `None`
/// when no such key exists.
///
/// `zmin`/`zmax` must be the Morton codes of the box's min/max corners.
pub fn bigmin(current: MortonKey, zmin: MortonKey, zmax: MortonKey) -> Option<MortonKey> {
    let (cur, mut lo, mut hi) = (current.0, zmin.0, zmax.0);
    debug_assert!(box_is_valid(zmin, zmax), "zmin must be the min corner");
    let mut best: Option<u64> = None;
    // Walk bits from the most significant interleaved position downward,
    // maintaining the invariant that lo/hi describe the still-feasible
    // sub-box after the decisions taken so far.
    for bit in (0..top_bit(hi.max(cur)).max(1)).rev() {
        for dim in (0..DIM).rev() {
            let c = bit_of(cur, dim, bit);
            let l = bit_of(lo, dim, bit);
            let h = bit_of(hi, dim, bit);
            match (c, l, h) {
                (false, false, false) => {}
                (false, false, true) => {
                    // The box spans this bit: the upper half-box starts at a
                    // candidate BIGMIN; continue searching the lower half.
                    best = Some(load_min(lo, dim, bit));
                    hi = load_max(hi, dim, bit);
                }
                (false, true, true) => {
                    // Box entirely in the upper half, current below it: the
                    // box minimum is the answer.
                    return Some(MortonKey(lo));
                }
                (true, false, false) => {
                    // Current in the upper half, box entirely lower: no key
                    // in this sub-box can exceed current — fall back to the
                    // best candidate recorded so far.
                    return best.map(MortonKey);
                }
                (true, false, true) => {
                    // Current in the upper half: restrict to it.
                    lo = load_min(lo, dim, bit);
                }
                (true, true, true) => {}
                // (c, true, false) would mean zmin > zmax in this dim/bit.
                (_, true, false) => unreachable!("inverted box bounds"),
            }
        }
    }
    // current lies inside the box: the next key inside is current + 1 if it
    // is still in the box, otherwise BIGMIN of current + 1.
    let next = cur + 1;
    if next > hi {
        return best.map(MortonKey);
    }
    if in_box(MortonKey(next), zmin, zmax) {
        Some(MortonKey(next))
    } else {
        bigmin(MortonKey(next), zmin, zmax)
    }
}

/// True if `key`'s coordinates lie inside the box spanned by `zmin`/`zmax`.
pub fn in_box(key: MortonKey, zmin: MortonKey, zmax: MortonKey) -> bool {
    let (x, y, z) = decode(key.0);
    let (x0, y0, z0) = decode(zmin.0);
    let (x1, y1, z1) = decode(zmax.0);
    (x0..=x1).contains(&x) && (y0..=y1).contains(&y) && (z0..=z1).contains(&z)
}

fn box_is_valid(zmin: MortonKey, zmax: MortonKey) -> bool {
    let (x0, y0, z0) = decode(zmin.0);
    let (x1, y1, z1) = decode(zmax.0);
    x0 <= x1 && y0 <= y1 && z0 <= z1
}

/// Convenience: the Morton codes of a coordinate box's corners.
pub fn box_corners(min: (u32, u32, u32), max: (u32, u32, u32)) -> (MortonKey, MortonKey) {
    (
        MortonKey(encode(min.0, min.1, min.2)),
        MortonKey(encode(max.0, max.1, max.2)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: linear scan for the next in-box key.
    fn bigmin_naive(current: MortonKey, zmin: MortonKey, zmax: MortonKey) -> Option<MortonKey> {
        ((current.0 + 1)..=zmax.0)
            .map(MortonKey)
            .find(|&k| in_box(k, zmin, zmax))
    }

    #[test]
    fn matches_naive_on_a_small_grid() {
        let (zmin, zmax) = box_corners((1, 2, 0), (5, 6, 3));
        for code in 0..512u64 {
            let got = bigmin(MortonKey(code), zmin, zmax);
            let expect = bigmin_naive(MortonKey(code), zmin, zmax);
            assert_eq!(got, expect, "current = {code}");
        }
    }

    #[test]
    fn matches_naive_on_an_asymmetric_box() {
        let (zmin, zmax) = box_corners((0, 3, 5), (7, 3, 6));
        for code in 0..1024u64 {
            assert_eq!(
                bigmin(MortonKey(code), zmin, zmax),
                bigmin_naive(MortonKey(code), zmin, zmax),
                "current = {code}"
            );
        }
    }

    #[test]
    fn below_the_box_returns_the_box_minimum() {
        let (zmin, zmax) = box_corners((2, 2, 2), (5, 5, 5));
        assert_eq!(bigmin(MortonKey(0), zmin, zmax), Some(zmin));
    }

    #[test]
    fn at_or_above_zmax_returns_none() {
        let (zmin, zmax) = box_corners((2, 2, 2), (5, 5, 5));
        assert_eq!(bigmin(zmax, zmin, zmax), None);
        assert_eq!(bigmin(MortonKey(zmax.0 + 100), zmin, zmax), None);
    }

    #[test]
    fn skips_dead_gaps() {
        // Box [0,1]x[0,1]x[0,1] = codes 0..8; from code 3 the next is 4.
        let (zmin, zmax) = box_corners((0, 0, 0), (1, 1, 1));
        assert_eq!(bigmin(MortonKey(3), zmin, zmax), Some(MortonKey(4)));
        // Box x in [0,1], y = 0, z = 0: codes {0, 1}; from 1, nothing.
        let (zmin, zmax) = box_corners((0, 0, 0), (1, 0, 0));
        assert_eq!(bigmin(MortonKey(1), zmin, zmax), None);
        // From 0 the next in-box key is 1 even though 2..7 are in the cube.
        assert_eq!(bigmin(MortonKey(0), zmin, zmax), Some(MortonKey(1)));
    }

    #[test]
    fn scan_with_bigmin_enumerates_exactly_the_box() {
        let (zmin, zmax) = box_corners((3, 1, 2), (6, 4, 5));
        let mut found = Vec::new();
        let mut cur = if in_box(zmin, zmin, zmax) {
            Some(zmin)
        } else {
            bigmin(zmin, zmin, zmax)
        };
        while let Some(k) = cur {
            found.push(k);
            cur = bigmin(k, zmin, zmax);
        }
        let expect: Vec<MortonKey> = (zmin.0..=zmax.0)
            .map(MortonKey)
            .filter(|&k| in_box(k, zmin, zmax))
            .collect();
        assert_eq!(found, expect);
        assert_eq!(found.len(), 4 * 4 * 4);
    }
}
