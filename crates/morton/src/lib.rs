//! 3-D Morton (Z-order) spatial indexing for the JAWS turbulence database.
//!
//! The Turbulence Database Cluster partitions each 1024³ timestep into 64³-voxel
//! *atoms* and lays the atoms out on disk in Morton order. The Morton index acts
//! as a space-filling curve: atoms that are close together in Morton order are
//! also near each other in voxel space, so both range and containment queries
//! are I/O-efficient, and sorting query positions in Morton order amortizes disk
//! seeks (JAWS paper, §III-A).
//!
//! This crate provides:
//!
//! * [`encode`]/[`decode`] — branch-free 3-D Morton encoding via bit dilation.
//! * [`MortonKey`] — a typed Morton index with hierarchy operations (the paper's
//!   "cubes of side 2^k" logical partitioning).
//! * [`cover_box`] — decomposition of an axis-aligned voxel box into a minimal
//!   set of contiguous Morton ranges, used for clustered B+ tree range scans.
//!
//! All operations support coordinates up to 2²¹−1 per axis (63 usable bits),
//! far beyond the 16 atoms/side (1024³ grid / 64³ atoms) of the production
//! database.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod bigmin;
mod encode;
mod key;
mod range;

pub use atom::AtomId;
pub use bigmin::{bigmin, box_corners, in_box};
pub use encode::{decode, encode, MAX_COORD};
pub use key::MortonKey;
pub use range::{cover_box, BoxCover, MortonRange};

#[cfg(test)]
mod proptests;
