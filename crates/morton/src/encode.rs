//! Branch-free 3-D Morton encoding/decoding via bit dilation.
//!
//! `encode` interleaves the bits of three 21-bit coordinates into a single
//! 63-bit code: bit `i` of `x` lands at bit `3i`, of `y` at `3i + 1`, of `z`
//! at `3i + 2`. The magic-constant dilation runs in a handful of shifts and
//! masks with no table lookups, which keeps the hot path (sorting millions of
//! query positions in Morton order) cheap.

/// Maximum value a single coordinate may take: 2²¹ − 1.
///
/// Three 21-bit coordinates interleave into 63 bits, fitting a `u64`.
pub const MAX_COORD: u32 = (1 << 21) - 1;

/// Spreads the low 21 bits of `v` so that consecutive input bits land three
/// positions apart (bit `i` moves to bit `3i`).
#[inline]
const fn dilate(v: u32) -> u64 {
    // Each step doubles the gap between surviving bit groups; masks keep only
    // the bits in their post-shift homes. Constants are the standard 3-D
    // dilation magic numbers for 21-bit inputs.
    let mut x = (v as u64) & 0x1f_ffff;
    x = (x | (x << 32)) & 0x1f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x1f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`dilate`]: collects every third bit back into the low 21 bits.
#[inline]
const fn undilate(v: u64) -> u32 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x1f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x1f_0000_0000_ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Interleaves three coordinates into a 63-bit Morton code.
///
/// # Panics
///
/// Panics in debug builds if any coordinate exceeds [`MAX_COORD`]. Release
/// builds silently truncate to the low 21 bits, matching the internal
/// dilation masks.
#[inline]
pub const fn encode(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x <= MAX_COORD && y <= MAX_COORD && z <= MAX_COORD);
    dilate(x) | (dilate(y) << 1) | (dilate(z) << 2)
}

/// Recovers `(x, y, z)` from a Morton code produced by [`encode`].
#[inline]
pub const fn decode(code: u64) -> (u32, u32, u32) {
    (undilate(code), undilate(code >> 1), undilate(code >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_maps_to_zero() {
        assert_eq!(encode(0, 0, 0), 0);
        assert_eq!(decode(0), (0, 0, 0));
    }

    #[test]
    fn unit_axes_hit_expected_bits() {
        assert_eq!(encode(1, 0, 0), 0b001);
        assert_eq!(encode(0, 1, 0), 0b010);
        assert_eq!(encode(0, 0, 1), 0b100);
        assert_eq!(encode(1, 1, 1), 0b111);
    }

    #[test]
    fn second_bit_of_each_axis() {
        assert_eq!(encode(2, 0, 0), 0b001_000);
        assert_eq!(encode(0, 2, 0), 0b010_000);
        assert_eq!(encode(0, 0, 2), 0b100_000);
    }

    #[test]
    fn max_coordinate_round_trips() {
        let code = encode(MAX_COORD, MAX_COORD, MAX_COORD);
        assert_eq!(code, (1u64 << 63) - 1);
        assert_eq!(decode(code), (MAX_COORD, MAX_COORD, MAX_COORD));
    }

    #[test]
    fn z_order_walk_over_a_2x2x2_cube() {
        // The canonical Z-curve visiting order of the unit cube.
        let expected = [
            (0, 0, 0),
            (1, 0, 0),
            (0, 1, 0),
            (1, 1, 0),
            (0, 0, 1),
            (1, 0, 1),
            (0, 1, 1),
            (1, 1, 1),
        ];
        for (i, &(x, y, z)) in expected.iter().enumerate() {
            assert_eq!(encode(x, y, z), i as u64, "cell {:?}", (x, y, z));
        }
    }

    #[test]
    fn round_trip_structured_sample() {
        for x in (0..64).step_by(7) {
            for y in (0..64).step_by(5) {
                for z in (0..64).step_by(3) {
                    assert_eq!(decode(encode(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn locality_within_octants() {
        // All cells of the low octant [0,2)³ precede all cells of the
        // high octant [2,4)³ that differ in the top bit of every axis.
        let low_max = encode(1, 1, 1);
        let high_min = encode(2, 2, 2);
        assert!(low_max < high_min);
    }
}
