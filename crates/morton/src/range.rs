//! Decomposition of axis-aligned boxes into contiguous Morton ranges.
//!
//! A spatial range query ("all atoms intersecting this box") becomes a small
//! set of contiguous key intervals on the clustered B+ tree. The decomposition
//! walks the implicit octree: an aligned cube entirely inside the box
//! contributes its whole (contiguous) Morton interval; a cube intersecting the
//! boundary is split into its eight children.

use crate::key::MortonKey;
use serde::{Deserialize, Serialize};

/// A half-open interval `[lo, hi)` of Morton keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MortonRange {
    /// Inclusive lower bound.
    pub lo: MortonKey,
    /// Exclusive upper bound.
    pub hi: MortonKey,
}

impl MortonRange {
    /// Number of cells in the interval.
    pub fn len(&self) -> u64 {
        self.hi.0 - self.lo.0
    }

    /// True if the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.hi.0 <= self.lo.0
    }

    /// True if `key` falls inside the interval.
    pub fn contains(&self, key: MortonKey) -> bool {
        self.lo <= key && key < self.hi
    }
}

/// The result of covering a box: sorted, non-overlapping, coalesced ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxCover {
    /// Sorted, pairwise-disjoint, maximally coalesced intervals.
    pub ranges: Vec<MortonRange>,
}

impl BoxCover {
    /// Total number of cells covered.
    pub fn cell_count(&self) -> u64 {
        self.ranges.iter().map(MortonRange::len).sum()
    }

    /// True if `key` lies in any range (binary search).
    pub fn contains(&self, key: MortonKey) -> bool {
        match self.ranges.binary_search_by(|r| r.lo.cmp(&key)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ranges[i - 1].contains(key),
        }
    }

    /// Iterates every cell key in ascending Morton order.
    pub fn iter_keys(&self) -> impl Iterator<Item = MortonKey> + '_ {
        self.ranges
            .iter()
            .flat_map(|r| (r.lo.0..r.hi.0).map(MortonKey))
    }
}

/// Covers the inclusive cell box `[min, max]` (per-axis bounds) with Morton
/// ranges. Bounds are cell coordinates, e.g. atom coordinates within one
/// timestep.
///
/// # Panics
///
/// Panics if any `min` coordinate exceeds the matching `max` coordinate.
pub fn cover_box(min: (u32, u32, u32), max: (u32, u32, u32)) -> BoxCover {
    assert!(
        min.0 <= max.0 && min.1 <= max.1 && min.2 <= max.2,
        "degenerate box: min {min:?} > max {max:?}"
    );
    // Smallest power-of-two cube enclosing the box.
    let top = max.0.max(max.1).max(max.2);
    let level = 32 - top.leading_zeros().min(31); // ceil(log2(top+1))
    let mut ranges = Vec::new();
    descend(MortonKey(0), level, min, max, &mut ranges);
    coalesce(&mut ranges);
    BoxCover { ranges }
}

/// Recursive octree walk. `cube_lo` is the smallest Morton key inside the
/// current cube, `level` its side exponent (side = 2^level).
fn descend(
    cube_lo: MortonKey,
    level: u32,
    min: (u32, u32, u32),
    max: (u32, u32, u32),
    out: &mut Vec<MortonRange>,
) {
    let side = 1u32 << level;
    let (cx, cy, cz) = cube_lo.coords();
    // Disjoint?
    if cx > max.0 || cy > max.1 || cz > max.2 {
        return;
    }
    let (ex, ey, ez) = (cx + side - 1, cy + side - 1, cz + side - 1);
    if ex < min.0 || ey < min.1 || ez < min.2 {
        return;
    }
    // Fully contained?
    if cx >= min.0 && cy >= min.1 && cz >= min.2 && ex <= max.0 && ey <= max.1 && ez <= max.2 {
        out.push(MortonRange {
            lo: cube_lo,
            hi: MortonKey(cube_lo.0 + (1u64 << (3 * level))),
        });
        return;
    }
    // Partial overlap: split into the eight children, which are contiguous in
    // Morton order starting at cube_lo.
    debug_assert!(level > 0, "unit cube must be contained or disjoint");
    let child_cells = 1u64 << (3 * (level - 1));
    for i in 0..8 {
        descend(
            MortonKey(cube_lo.0 + i * child_cells),
            level - 1,
            min,
            max,
            out,
        );
    }
}

/// Merges adjacent intervals in place. `descend` emits in ascending order, so
/// one linear pass suffices.
fn coalesce(ranges: &mut Vec<MortonRange>) {
    let mut w = 0usize;
    for i in 0..ranges.len() {
        if w > 0 && ranges[w - 1].hi == ranges[i].lo {
            ranges[w - 1].hi = ranges[i].hi;
        } else {
            ranges[w] = ranges[i];
            w += 1;
        }
    }
    ranges.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(min: (u32, u32, u32), max: (u32, u32, u32)) -> Vec<MortonKey> {
        let mut keys = Vec::new();
        for x in min.0..=max.0 {
            for y in min.1..=max.1 {
                for z in min.2..=max.2 {
                    keys.push(MortonKey::from_coords(x, y, z));
                }
            }
        }
        keys.sort_unstable();
        keys
    }

    fn assert_cover_matches(min: (u32, u32, u32), max: (u32, u32, u32)) {
        let cover = cover_box(min, max);
        let expect = brute_force(min, max);
        let got: Vec<MortonKey> = cover.iter_keys().collect();
        assert_eq!(got, expect, "cover mismatch for box {min:?}..={max:?}");
        // Structural invariants: sorted, disjoint, maximally coalesced.
        for w in cover.ranges.windows(2) {
            assert!(w[0].hi.0 < w[1].lo.0, "ranges {:?} and {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn single_cell_box() {
        let c = cover_box((3, 5, 7), (3, 5, 7));
        assert_eq!(c.cell_count(), 1);
        assert!(c.contains(MortonKey::from_coords(3, 5, 7)));
        assert!(!c.contains(MortonKey::from_coords(3, 5, 6)));
    }

    #[test]
    fn aligned_cube_is_one_range() {
        // The whole 4³ cube at the origin is a single Morton interval.
        let c = cover_box((0, 0, 0), (3, 3, 3));
        assert_eq!(c.ranges.len(), 1);
        assert_eq!(c.cell_count(), 64);
    }

    #[test]
    fn full_atom_grid_is_one_range() {
        // 16³ atoms per timestep in the production layout.
        let c = cover_box((0, 0, 0), (15, 15, 15));
        assert_eq!(c.ranges.len(), 1);
        assert_eq!(c.cell_count(), 4096);
    }

    #[test]
    fn unaligned_boxes_match_brute_force() {
        assert_cover_matches((1, 0, 0), (2, 3, 3));
        assert_cover_matches((0, 1, 2), (5, 6, 3));
        assert_cover_matches((3, 3, 3), (4, 4, 4)); // straddles the center
        assert_cover_matches((1, 1, 1), (6, 6, 6));
        assert_cover_matches((0, 0, 0), (7, 0, 0)); // a line of cells
    }

    #[test]
    fn slab_through_grid() {
        assert_cover_matches((0, 7, 0), (15, 8, 15));
    }

    #[test]
    fn ranges_are_sorted_disjoint_coalesced() {
        let c = cover_box((1, 1, 1), (6, 6, 6));
        for w in c.ranges.windows(2) {
            assert!(w[0].hi.0 < w[1].lo.0, "sorted, disjoint and coalesced");
        }
        assert_eq!(c.cell_count(), 6 * 6 * 6);
    }

    #[test]
    fn contains_agrees_with_iteration() {
        let c = cover_box((2, 0, 1), (5, 4, 6));
        let inside: std::collections::HashSet<u64> = c.iter_keys().map(|k| k.0).collect();
        for code in 0..4096u64 {
            assert_eq!(
                c.contains(MortonKey(code)),
                inside.contains(&code),
                "key {code}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "degenerate box")]
    fn degenerate_box_panics() {
        cover_box((4, 0, 0), (3, 9, 9));
    }
}
