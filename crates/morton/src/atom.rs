//! Atom addressing: (timestep, Morton key) pairs.
//!
//! An *atom* is the fundamental unit of I/O in the Turbulence database: a
//! 64³-voxel storage block of roughly 8 MB (§III-A). Atoms are addressed by
//! the timestep they belong to plus their Morton key within that timestep —
//! exactly the composite key of the production cluster's clustered B+ tree.
//!
//! `AtomId` lives in this crate (rather than in `jaws-turbdb`) because every
//! layer — storage, cache, scheduler, simulator — speaks in atom addresses,
//! and this is the lowest crate they all share.

use crate::key::MortonKey;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Address of one atom: timestep plus Morton key within the timestep.
///
/// `Ord` is lexicographic on `(timestep, morton)`, matching the clustered
/// B+ tree key order so that a full-timestep scan is one contiguous range.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AtomId {
    /// Simulation timestep the atom belongs to.
    pub timestep: u32,
    /// Morton key of the atom within its timestep.
    pub morton: MortonKey,
}

impl AtomId {
    /// Builds an atom id.
    #[inline]
    pub fn new(timestep: u32, morton: MortonKey) -> Self {
        AtomId { timestep, morton }
    }

    /// Builds an atom id from atom-grid coordinates.
    #[inline]
    pub fn from_coords(timestep: u32, x: u32, y: u32, z: u32) -> Self {
        AtomId {
            timestep,
            morton: MortonKey::from_coords(x, y, z),
        }
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}:{}", self.timestep, self.morton)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_timestep_major() {
        let a = AtomId::from_coords(0, 15, 15, 15);
        let b = AtomId::from_coords(1, 0, 0, 0);
        assert!(a < b, "all atoms of timestep 0 precede timestep 1");
    }

    #[test]
    fn order_within_timestep_is_morton() {
        let a = AtomId::from_coords(3, 1, 0, 0);
        let b = AtomId::from_coords(3, 0, 1, 0);
        assert!(a < b, "Morton order breaks ties");
    }

    #[test]
    fn display_is_compact() {
        let a = AtomId::from_coords(7, 1, 2, 3);
        assert!(a.to_string().starts_with("t7:"));
    }
}
