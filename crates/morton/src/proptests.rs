//! Property-based tests for Morton encoding and box covers.

use crate::{cover_box, decode, encode, MortonKey, MAX_COORD};
use proptest::prelude::*;

proptest! {
    /// encode/decode are inverses over the whole coordinate domain.
    #[test]
    fn encode_decode_round_trip(x in 0..=MAX_COORD, y in 0..=MAX_COORD, z in 0..=MAX_COORD) {
        prop_assert_eq!(decode(encode(x, y, z)), (x, y, z));
    }

    /// Morton codes are unique per coordinate triple.
    #[test]
    fn encode_is_injective(
        a in (0u32..256, 0u32..256, 0u32..256),
        b in (0u32..256, 0u32..256, 0u32..256),
    ) {
        let ca = encode(a.0, a.1, a.2);
        let cb = encode(b.0, b.1, b.2);
        prop_assert_eq!(ca == cb, a == b);
    }

    /// Incrementing a single axis strictly increases the code (monotone per axis).
    #[test]
    fn per_axis_monotonicity(x in 0..MAX_COORD, y in 0..MAX_COORD, z in 0..MAX_COORD) {
        let c = encode(x, y, z);
        prop_assert!(encode(x + 1, y, z) > c);
        prop_assert!(encode(x, y + 1, z) > c);
        prop_assert!(encode(x, y, z + 1) > c);
    }

    /// The cube hierarchy nests: the level-(l+1) cube contains the level-l cube.
    #[test]
    fn cube_hierarchy_nests(code in 0u64..(1 << 30), level in 0u32..9) {
        let k = MortonKey(code);
        let (lo1, hi1) = k.cube_range(level);
        let (lo2, hi2) = k.cube_range(level + 1);
        prop_assert!(lo2 <= lo1 && hi1 <= hi2);
        prop_assert!(lo1 <= k && k < hi1);
    }

    /// Box covers agree with brute-force membership on grids up to 16³.
    #[test]
    fn cover_matches_membership(
        x0 in 0u32..16, y0 in 0u32..16, z0 in 0u32..16,
        dx in 0u32..8, dy in 0u32..8, dz in 0u32..8,
        probe in (0u32..24, 0u32..24, 0u32..24),
    ) {
        let min = (x0, y0, z0);
        let max = (x0 + dx, y0 + dy, z0 + dz);
        let cover = cover_box(min, max);
        let (px, py, pz) = probe;
        let inside = (min.0..=max.0).contains(&px)
            && (min.1..=max.1).contains(&py)
            && (min.2..=max.2).contains(&pz);
        prop_assert_eq!(cover.contains(MortonKey::from_coords(px, py, pz)), inside);
    }

    /// Covers count exactly the box volume and keep ranges sorted and disjoint.
    #[test]
    fn cover_volume_and_structure(
        x0 in 0u32..32, y0 in 0u32..32, z0 in 0u32..32,
        dx in 0u32..16, dy in 0u32..16, dz in 0u32..16,
    ) {
        let cover = cover_box((x0, y0, z0), (x0 + dx, y0 + dy, z0 + dz));
        let volume = (dx as u64 + 1) * (dy as u64 + 1) * (dz as u64 + 1);
        prop_assert_eq!(cover.cell_count(), volume);
        for w in cover.ranges.windows(2) {
            prop_assert!(w[0].hi.0 < w[1].lo.0);
        }
    }

    /// Chebyshev distance is a metric: symmetric, zero iff equal, triangle inequality.
    #[test]
    fn chebyshev_is_a_metric(
        a in (0u32..128, 0u32..128, 0u32..128),
        b in (0u32..128, 0u32..128, 0u32..128),
        c in (0u32..128, 0u32..128, 0u32..128),
    ) {
        let ka = MortonKey::from_coords(a.0, a.1, a.2);
        let kb = MortonKey::from_coords(b.0, b.1, b.2);
        let kc = MortonKey::from_coords(c.0, c.1, c.2);
        prop_assert_eq!(ka.chebyshev_distance(kb), kb.chebyshev_distance(ka));
        prop_assert_eq!(ka.chebyshev_distance(kb) == 0, a == b);
        prop_assert!(
            ka.chebyshev_distance(kc) <= ka.chebyshev_distance(kb) + kb.chebyshev_distance(kc)
        );
    }
}

mod bigmin_props {
    use crate::{bigmin, box_corners, in_box, MortonKey};
    use proptest::prelude::*;

    fn naive(current: MortonKey, zmin: MortonKey, zmax: MortonKey) -> Option<MortonKey> {
        ((current.0 + 1)..=zmax.0)
            .map(MortonKey)
            .find(|&k| in_box(k, zmin, zmax))
    }

    proptest! {
        /// BIGMIN agrees with the linear-scan reference on random boxes.
        #[test]
        fn bigmin_matches_naive(
            x0 in 0u32..12, y0 in 0u32..12, z0 in 0u32..12,
            dx in 0u32..6, dy in 0u32..6, dz in 0u32..6,
            cur in 0u64..6000,
        ) {
            let (zmin, zmax) = box_corners((x0, y0, z0), (x0 + dx, y0 + dy, z0 + dz));
            prop_assert_eq!(
                bigmin(MortonKey(cur), zmin, zmax),
                naive(MortonKey(cur), zmin, zmax)
            );
        }

        /// BIGMIN's result is always strictly greater and inside the box.
        #[test]
        fn bigmin_postconditions(
            x0 in 0u32..16, y0 in 0u32..16, z0 in 0u32..16,
            dx in 0u32..8, dy in 0u32..8, dz in 0u32..8,
            cur in 0u64..20_000,
        ) {
            let (zmin, zmax) = box_corners((x0, y0, z0), (x0 + dx, y0 + dy, z0 + dz));
            if let Some(next) = bigmin(MortonKey(cur), zmin, zmax) {
                prop_assert!(next.0 > cur);
                prop_assert!(in_box(next, zmin, zmax));
            }
        }
    }
}
