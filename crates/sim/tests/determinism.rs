//! Double-run determinism (lint rules D001/D002 end to end): replaying the
//! same seeded trace twice must produce *byte-identical* serialized reports —
//! including the per-query response log, which captures dispatch order — for
//! every scheduling policy. Any hash-order iteration, wall-clock read, or
//! unseeded RNG on a decision path shows up here as a diff.

#![forbid(unsafe_code)]

use jaws_scheduler::MetricParams;
use jaws_sim::{build_db, build_scheduler, CachePolicyKind, Executor, SchedulerKind, SimConfig};
use jaws_turbdb::{CostModel, DataMode, DbConfig};
use jaws_workload::{GenConfig, TraceGenerator};

fn db_config() -> DbConfig {
    DbConfig {
        grid_side: 32,
        atom_side: 8,
        ghost: 2,
        timesteps: 8,
        dt: 0.002,
        seed: 5,
    }
}

/// Runs one full simulation and serializes everything order-sensitive:
/// the run report plus the (QueryId, response-time) completion log.
///
/// Two fields are masked before comparison: `cache.policy_overhead_ns` and
/// the derived `cache_overhead_ms_per_query`. They are *measured wall-clock*
/// telemetry (Table I's Overhead/Qry column) produced by the one sanctioned
/// `Instant::now` site, `crates/cache/src/pool.rs` — the same exemption lint
/// rule D002 carves out. Every simulated quantity must still match exactly.
fn serialized_run(kind: SchedulerKind, seed: u64) -> String {
    let trace = TraceGenerator::new(GenConfig::small(seed)).generate();
    let db = build_db(
        db_config(),
        CostModel::paper_testbed(),
        DataMode::Virtual,
        16,
        CachePolicyKind::Urc,
    );
    let sched = build_scheduler(kind, MetricParams::paper_testbed(), 25, 10_000.0);
    let mut ex = Executor::new(db, sched, SimConfig::default());
    let report = ex.run(&trace);
    let mut report_json = serde_json::to_string(&report).expect("report serializes");
    for key in ["policy_overhead_ns", "cache_overhead_ms_per_query"] {
        report_json = zero_numeric_field(&report_json, key);
    }
    let log_json = serde_json::to_string(ex.response_log()).expect("log serializes");
    format!("{report_json}\n{log_json}")
}

/// Replaces the numeric value of `"key":<number>` with `0` in serialized
/// JSON (sufficient for the two flat telemetry fields masked above).
fn zero_numeric_field(json: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let Some(i) = json.find(&pat) else {
        panic!("field {key} absent from report JSON");
    };
    let start = i + pat.len();
    let end = start
        + json[start..]
            .find([',', '}'])
            .expect("number is followed by a delimiter");
    format!("{}0{}", &json[..start], &json[end..])
}

fn assert_deterministic(kind: SchedulerKind) {
    for seed in [3u64, 11] {
        let a = serialized_run(kind, seed);
        let b = serialized_run(kind, seed);
        assert_eq!(
            a,
            b,
            "{} produced different reports across identical seeded runs (seed {seed})",
            kind.name()
        );
    }
}

#[test]
fn jaws_runs_are_byte_identical() {
    assert_deterministic(SchedulerKind::Jaws2 { batch_k: 15 });
}

#[test]
fn liferaft_runs_are_byte_identical() {
    assert_deterministic(SchedulerKind::LifeRaft2);
}

#[test]
fn fcfs_runs_are_byte_identical() {
    assert_deterministic(SchedulerKind::NoShare);
}
