//! Double-run determinism (lint rules D001/D002 end to end): replaying the
//! same seeded trace twice must produce *byte-identical* serialized reports —
//! including the per-query response log, which captures dispatch order — for
//! every scheduling policy, on both the single-node executor and the
//! Morton-slab cluster. Any hash-order iteration, wall-clock read, or
//! unseeded RNG on a decision path shows up here as a diff.

#![forbid(unsafe_code)]

use jaws_obs::{JsonlRecorder, NullRecorder, ObsSink};
use jaws_scheduler::MetricParams;
use jaws_sim::{
    build_db, build_scheduler, CachePolicyKind, ClusterConfig, ClusterExecutor, Executor,
    FailurePlan, SchedulerKind, SimConfig,
};
use jaws_turbdb::{CostModel, DataMode, DbConfig};
use jaws_workload::{GenConfig, TraceGenerator};
use std::sync::{Arc, Mutex};

fn db_config() -> DbConfig {
    DbConfig {
        grid_side: 32,
        atom_side: 8,
        ghost: 2,
        timesteps: 8,
        dt: 0.002,
        seed: 5,
    }
}

/// Runs one full simulation and serializes everything order-sensitive:
/// the run report plus the (QueryId, response-time) completion log.
///
/// Two fields are masked before comparison: `cache.policy_overhead_ns` and
/// the derived `cache_overhead_ms_per_query`. They are *measured wall-clock*
/// telemetry (Table I's Overhead/Qry column) produced by the one sanctioned
/// `Instant::now` site, `crates/cache/src/pool.rs` — the same exemption lint
/// rule D002 carves out. Every simulated quantity must still match exactly.
fn serialized_run(kind: SchedulerKind, seed: u64) -> String {
    serialized_run_wired(kind, seed, None)
}

/// [`serialized_run`] with an optional observability sink wired before the
/// run, so tests can compare instrumented and uninstrumented replays.
fn serialized_run_wired(kind: SchedulerKind, seed: u64, sink: Option<ObsSink>) -> String {
    let trace = TraceGenerator::new(GenConfig::small(seed)).generate();
    let db = build_db(
        db_config(),
        CostModel::paper_testbed(),
        DataMode::Virtual,
        16,
        CachePolicyKind::Urc,
    );
    let sched = build_scheduler(kind, MetricParams::paper_testbed(), 25, 10_000.0);
    let mut ex = Executor::new(db, sched, SimConfig::default());
    if let Some(s) = sink {
        ex.set_recorder(s);
    }
    let report = ex.run(&trace);
    let report_json =
        mask_wallclock_fields(&serde_json::to_string(&report).expect("report serializes"));
    let log_json = serde_json::to_string(ex.response_log()).expect("log serializes");
    format!("{report_json}\n{log_json}")
}

/// One instrumented single-node replay; returns the JSONL trace it emitted.
fn jsonl_trace_of_run(kind: SchedulerKind, seed: u64) -> String {
    let rec = Arc::new(Mutex::new(JsonlRecorder::new()));
    let _ = serialized_run_wired(kind, seed, Some(ObsSink::new(rec.clone())));
    // lint: invariant — the run above completed; a poisoned mutex would
    // already have panicked the emitting thread
    let trace = rec.lock().expect("recorder mutex unpoisoned").take();
    trace
}

/// One instrumented cluster replay; returns the JSONL trace it emitted.
fn jsonl_trace_of_cluster_run(kind: SchedulerKind, nodes: u32, seed: u64) -> String {
    let trace = TraceGenerator::new(GenConfig::small(seed)).generate();
    let rec = Arc::new(Mutex::new(JsonlRecorder::new()));
    let mut ex = ClusterExecutor::new(cluster_config(kind, nodes));
    ex.set_recorder(ObsSink::new(rec.clone()));
    let _ = ex.run(&trace);
    // lint: invariant — the run above completed; a poisoned mutex would
    // already have panicked the emitting thread
    let out = rec.lock().expect("recorder mutex unpoisoned").take();
    out
}

fn cluster_config(kind: SchedulerKind, nodes: u32) -> ClusterConfig {
    ClusterConfig {
        nodes,
        db: db_config(),
        cost: CostModel::paper_testbed(),
        scheduler: kind,
        cache_policy: CachePolicyKind::Urc,
        cache_atoms_per_node: 16,
        run_len: 25,
        gate_timeout_ms: 10_000.0,
        sim: SimConfig::default(),
        failures: FailurePlan::none(),
        replication: jaws_sim::ReplicationConfig::disabled(),
    }
}

/// Cluster analogue of [`serialized_run`]: the full `ClusterReport` (aggregate
/// plus every per-node breakdown) and the completion log, with every
/// wall-clock telemetry occurrence masked (one per node plus the aggregate).
fn serialized_cluster_run(kind: SchedulerKind, nodes: u32, seed: u64) -> String {
    serialized_cluster_run_failing(kind, nodes, seed, FailurePlan::none())
}

/// The trace failure scenarios replay: arrivals compressed 20× so the
/// cluster is capacity-bound and every node holds queued work mid-run —
/// otherwise a mid-replay crash finds an empty node and tests nothing.
fn failure_trace(seed: u64) -> jaws_workload::Trace {
    TraceGenerator::new(GenConfig::small(seed))
        .generate()
        .speedup(20.0)
}

/// [`serialized_cluster_run`] under a scripted [`FailurePlan`], on the
/// compressed [`failure_trace`].
fn serialized_cluster_run_failing(
    kind: SchedulerKind,
    nodes: u32,
    seed: u64,
    failures: FailurePlan,
) -> String {
    let trace = failure_trace(seed);
    let mut cfg = cluster_config(kind, nodes);
    cfg.failures = failures;
    let mut ex = ClusterExecutor::new(cfg);
    let report = ex.run(&trace);
    let report_json =
        mask_wallclock_fields(&serde_json::to_string(&report).expect("report serializes"));
    let log_json = serde_json::to_string(ex.response_log()).expect("log serializes");
    format!("{report_json}\n{log_json}")
}

/// One instrumented cluster replay under a scripted [`FailurePlan`]; returns
/// the JSONL trace it emitted.
fn jsonl_trace_of_cluster_run_failing(
    kind: SchedulerKind,
    nodes: u32,
    seed: u64,
    failures: FailurePlan,
) -> String {
    let trace = failure_trace(seed);
    let rec = Arc::new(Mutex::new(JsonlRecorder::new()));
    let mut cfg = cluster_config(kind, nodes);
    cfg.failures = failures;
    let mut ex = ClusterExecutor::new(cfg);
    ex.set_recorder(ObsSink::new(rec.clone()));
    let _ = ex.run(&trace);
    // lint: invariant — the run above completed; a poisoned mutex would
    // already have panicked the emitting thread
    let out = rec.lock().expect("recorder mutex unpoisoned").take();
    out
}

/// The standard degraded scenario, derived from a healthy baseline so the
/// events land mid-replay: node 1 crashes into survivor 0 at 50% of the
/// healthy makespan, and the last node degrades 2× at 25%.
fn half_makespan_failure_plan(kind: SchedulerKind, nodes: u32, seed: u64) -> FailurePlan {
    let trace = failure_trace(seed);
    let healthy = ClusterExecutor::new(cluster_config(kind, nodes)).run(&trace);
    let makespan = healthy.aggregate.makespan_ms;
    FailurePlan::new(17)
        .crash_with_survivor(0.5 * makespan, 1, 0)
        .slowdown_at(0.25 * makespan, nodes - 1, 2.0)
}

/// Replaces the numeric value of *every* `"key":<number>` occurrence of the
/// two wall-clock telemetry fields with `0` in serialized JSON.
fn mask_wallclock_fields(json: &str) -> String {
    let mut out = json.to_string();
    for key in ["policy_overhead_ns", "cache_overhead_ms_per_query"] {
        let pat = format!("\"{key}\":");
        assert!(out.contains(&pat), "field {key} absent from report JSON");
        let mut masked = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(i) = rest.find(&pat) {
            let start = i + pat.len();
            let end = start
                + rest[start..]
                    .find([',', '}'])
                    .expect("number is followed by a delimiter");
            masked.push_str(&rest[..start]);
            masked.push('0');
            rest = &rest[end..];
        }
        masked.push_str(rest);
        out = masked;
    }
    out
}

fn assert_deterministic(kind: SchedulerKind) {
    for seed in [3u64, 11] {
        let a = serialized_run(kind, seed);
        let b = serialized_run(kind, seed);
        assert_eq!(
            a,
            b,
            "{} produced different reports across identical seeded runs (seed {seed})",
            kind.name()
        );
    }
}

fn assert_cluster_deterministic(kind: SchedulerKind) {
    for nodes in [2u32, 4] {
        for seed in [3u64, 11] {
            let a = serialized_cluster_run(kind, nodes, seed);
            let b = serialized_cluster_run(kind, nodes, seed);
            assert_eq!(
                a,
                b,
                "{} on {nodes} nodes produced different cluster reports across identical \
                 seeded runs (seed {seed})",
                kind.name()
            );
        }
    }
}

#[test]
fn jaws_runs_are_byte_identical() {
    assert_deterministic(SchedulerKind::Jaws2 { batch_k: 15 });
}

#[test]
fn liferaft_runs_are_byte_identical() {
    assert_deterministic(SchedulerKind::LifeRaft2);
}

#[test]
fn fcfs_runs_are_byte_identical() {
    assert_deterministic(SchedulerKind::NoShare);
}

#[test]
fn jaws_cluster_runs_are_byte_identical() {
    assert_cluster_deterministic(SchedulerKind::Jaws2 { batch_k: 15 });
}

#[test]
fn liferaft_cluster_runs_are_byte_identical() {
    assert_cluster_deterministic(SchedulerKind::LifeRaft2);
}

/// The JSONL observability trace — every scheduling decision, gate ruling,
/// atom read and completion, timestamped from the simulated clock — must be
/// *byte-identical* across double runs for every policy. This is the
/// strictest determinism check in the suite: it covers event *order* at full
/// resolution, not just aggregate totals.
#[test]
fn jsonl_traces_are_byte_identical_across_runs() {
    for kind in [
        SchedulerKind::NoShare,
        SchedulerKind::LifeRaft2,
        SchedulerKind::Jaws2 { batch_k: 15 },
    ] {
        for seed in [3u64, 11] {
            let a = jsonl_trace_of_run(kind, seed);
            let b = jsonl_trace_of_run(kind, seed);
            assert!(
                !a.is_empty(),
                "{} emitted no trace records (seed {seed})",
                kind.name()
            );
            assert_eq!(
                a,
                b,
                "{} emitted different JSONL traces across identical seeded runs (seed {seed})",
                kind.name()
            );
        }
    }
}

/// Cluster analogue: per-node event interleaving (node-tagged records) must
/// also replay byte-for-byte.
#[test]
fn cluster_jsonl_traces_are_byte_identical_and_node_tagged() {
    let kind = SchedulerKind::Jaws2 { batch_k: 15 };
    let a = jsonl_trace_of_cluster_run(kind, 2, 3);
    let b = jsonl_trace_of_cluster_run(kind, 2, 3);
    assert!(!a.is_empty());
    assert_eq!(a, b, "cluster JSONL traces differ across identical runs");
    assert!(
        a.contains("\"node\":1"),
        "trace never tagged an event with the second node"
    );
    assert!(
        a.contains("\"node\":null"),
        "engine-level events should carry no node tag"
    );
}

/// Wiring a [`NullRecorder`] must leave the simulation bit-identical to an
/// unwired run: every emission site short-circuits on `ObsSink::enabled`, so
/// a disabled sink costs one branch and perturbs nothing (the "zero
/// paid-when-disabled overhead" invariant of `jaws-obs`).
#[test]
fn null_recorder_leaves_reports_bit_identical() {
    for (kind, seed) in [
        (SchedulerKind::Jaws2 { batch_k: 15 }, 3u64),
        (SchedulerKind::LifeRaft2, 11),
    ] {
        let unwired = serialized_run(kind, seed);
        let nulled = serialized_run_wired(
            kind,
            seed,
            Some(ObsSink::new(Arc::new(Mutex::new(NullRecorder)))),
        );
        assert_eq!(
            unwired,
            nulled,
            "{} report changed when a NullRecorder was wired (seed {seed})",
            kind.name()
        );
    }
}

/// With one node the cluster is the plain executor plus the part-id packing
/// layer: same engine, same event sequencing. Totals — and the completion
/// log under original query ids — must match the single executor exactly.
/// The single run derives its `MetricParams` the same way the cluster does
/// (from the cost model and the whole-grid atom count), so both schedulers
/// see identical Eq. 1 inputs.
#[test]
fn one_node_cluster_matches_single_executor_exactly() {
    for (kind, seed) in [
        (SchedulerKind::Jaws2 { batch_k: 15 }, 3u64),
        (SchedulerKind::LifeRaft2, 11),
    ] {
        let trace = TraceGenerator::new(GenConfig::small(seed)).generate();
        let cfg = cluster_config(kind, 1);
        let params = MetricParams {
            atom_read_ms: cfg.cost.atom_read_ms,
            position_compute_ms: cfg.cost.position_compute_ms,
            atoms_per_timestep: cfg.db.atoms_per_timestep(),
        };
        let db = build_db(
            cfg.db,
            cfg.cost,
            DataMode::Virtual,
            cfg.cache_atoms_per_node,
            cfg.cache_policy,
        );
        let sched = build_scheduler(kind, params, cfg.run_len, cfg.gate_timeout_ms);
        let mut single = Executor::new(db, sched, cfg.sim);
        let s = single.run(&trace);

        let mut cluster = ClusterExecutor::new(cfg);
        let c = cluster.run(&trace);

        assert_eq!(c.aggregate.queries_completed, s.queries_completed);
        assert_eq!(c.aggregate.jobs_completed, s.jobs_completed);
        assert_eq!(c.aggregate.disk.reads, s.disk.reads);
        assert_eq!(c.aggregate.disk.seeks, s.disk.seeks);
        assert_eq!(c.aggregate.cache.hits, s.cache.hits);
        assert_eq!(c.aggregate.cache.misses, s.cache.misses);
        assert_eq!(c.aggregate.makespan_ms.to_bits(), s.makespan_ms.to_bits());
        assert_eq!(
            c.aggregate.mean_response_ms.to_bits(),
            s.mean_response_ms.to_bits()
        );
        assert_eq!(
            c.aggregate.scheduler_stats.batches,
            s.scheduler_stats.batches
        );
        assert_eq!(cluster.response_log(), single.response_log());
    }
}

/// Failure injection is part of the determinism contract: the same seed and
/// the same [`FailurePlan`] must replay byte-for-byte — serialized
/// `ClusterReport` (degraded section included), completion log, and the full
/// JSONL trace with its `NodeFailed`/`PartRedispatched`/`NodeSlowdown`
/// records.
#[test]
fn failure_runs_are_byte_identical() {
    for kind in [
        SchedulerKind::Jaws2 { batch_k: 15 },
        SchedulerKind::LifeRaft2,
    ] {
        let plan = half_makespan_failure_plan(kind, 3, 3);
        let a = serialized_cluster_run_failing(kind, 3, 3, plan.clone());
        let b = serialized_cluster_run_failing(kind, 3, 3, plan.clone());
        assert_eq!(
            a,
            b,
            "{} degraded runs differ across identical seeded replays",
            kind.name()
        );
        assert!(
            a.contains("\"degraded\":{"),
            "degraded section missing from the failure report"
        );
        let ta = jsonl_trace_of_cluster_run_failing(kind, 3, 3, plan.clone());
        let tb = jsonl_trace_of_cluster_run_failing(kind, 3, 3, plan);
        assert!(
            ta.contains("NodeFailed") && ta.contains("PartRedispatched"),
            "{} trace lacks recovery events",
            kind.name()
        );
        assert!(
            ta.contains("NodeSlowdown"),
            "trace lacks the straggler event"
        );
        assert_eq!(ta, tb, "{} degraded JSONL traces differ", kind.name());
    }
}

/// Acceptance scenario: a seeded crash at 50% of the healthy makespan must
/// still complete *every* query of the trace — re-dispatch drains the dead
/// node's slab through the survivor — and replaying it at 1, 2 and 8 workers
/// must yield byte-identical reports and JSONL traces.
#[test]
fn crash_at_half_makespan_drains_every_query_at_any_thread_count() {
    let kind = SchedulerKind::Jaws2 { batch_k: 15 };
    let plan = half_makespan_failure_plan(kind, 3, 3);

    let trace = failure_trace(3);
    let mut cfg = cluster_config(kind, 3);
    cfg.failures = plan.clone();
    let mut ex = ClusterExecutor::new(cfg);
    let r = ex.run(&trace);
    assert_eq!(
        r.aggregate.queries_completed,
        trace.query_count() as u64,
        "the degraded cluster left queries behind"
    );
    assert!(!r.aggregate.truncated);
    assert!(r.nodes[1].failed);
    let degraded = r.degraded.expect("degraded section");
    assert_eq!(degraded.failed_nodes, vec![1]);
    assert!(degraded.redispatched_parts > 0, "crash moved no work");

    let mut reports = Vec::new();
    let mut traces = Vec::new();
    for threads in [1usize, 2, 8] {
        let _guard = jaws_par::override_threads(threads);
        reports.push(serialized_cluster_run_failing(kind, 3, 3, plan.clone()));
        traces.push(jsonl_trace_of_cluster_run_failing(kind, 3, 3, plan.clone()));
    }
    assert_eq!(
        reports[0], reports[1],
        "failure report differs at 2 workers"
    );
    assert_eq!(
        reports[0], reports[2],
        "failure report differs at 8 workers"
    );
    assert_eq!(traces[0], traces[1], "failure trace differs at 2 workers");
    assert_eq!(traces[0], traces[2], "failure trace differs at 8 workers");
}

/// A Zipf-flavored skew: most queries hammer node 0's first Morton key,
/// the rest scatter across the grid. This is the workload dynamic placement
/// exists for — hot enough that [`jaws_sim::ReplicationConfig::on`]'s
/// promotion threshold fires deterministically.
fn skewed_trace() -> jaws_workload::Trace {
    use jaws_morton::MortonKey;
    use jaws_workload::{Footprint, Job, JobKind, Query, QueryOp, Trace};
    let q = |id: u64, m: u64| Query {
        id,
        user: 0,
        op: QueryOp::Velocity,
        timestep: (id % 8) as u32,
        footprint: Footprint::from_pairs([(MortonKey(m), 60u32)]),
    };
    let jobs = (0..6u64)
        .map(|j| Job {
            id: j + 1,
            user: j as u32,
            kind: JobKind::Batched,
            campaign: 1,
            // Three of every four queries hit the hot key; the remainder
            // walks the other slabs so every node owns some work.
            queries: (0..12u64)
                .map(|i| {
                    let id = j * 12 + i + 1;
                    q(id, if i % 4 < 3 { 0 } else { (id * 7) % 64 })
                })
                .collect(),
            arrival_ms: j as f64 * 40.0,
            think_ms: 0.0,
        })
        .collect();
    Trace::new(8, 4, jobs)
}

/// One replicated-cluster replay on the [`skewed_trace`]: serialized masked
/// report + completion log, and the full JSONL observability trace.
fn replicated_cluster_run(enabled: bool) -> (String, String) {
    let trace = skewed_trace();
    let mut cfg = cluster_config(SchedulerKind::Jaws2 { batch_k: 15 }, 4);
    if enabled {
        cfg.replication = jaws_sim::ReplicationConfig::on();
    }
    let rec = Arc::new(Mutex::new(JsonlRecorder::new()));
    let mut ex = ClusterExecutor::new(cfg);
    ex.set_recorder(ObsSink::new(rec.clone()));
    let report = ex.run(&trace);
    let report_json =
        mask_wallclock_fields(&serde_json::to_string(&report).expect("report serializes"));
    let log_json = serde_json::to_string(ex.response_log()).expect("log serializes");
    // lint: invariant — the run above completed; a poisoned mutex would
    // already have panicked the emitting thread
    let jsonl = rec.lock().expect("recorder mutex unpoisoned").take();
    (format!("{report_json}\n{log_json}"), jsonl)
}

/// Dynamic placement joins the determinism contract: promotion, demotion and
/// least-loaded routing are pure functions of simulated time and the seeded
/// trace, so a replicated replay must be byte-identical at 1, 2 and 8
/// workers — serialized `ClusterReport` (replica table included), completion
/// log, and the JSONL trace with its `ReplicaPromoted`/`ReplicaRouted`
/// records — with replication on and off alike.
#[test]
fn replicated_runs_are_byte_identical_at_any_thread_count() {
    for enabled in [true, false] {
        let mut reports = Vec::new();
        let mut traces = Vec::new();
        for threads in [1usize, 2, 8] {
            let _guard = jaws_par::override_threads(threads);
            let (r, t) = replicated_cluster_run(enabled);
            reports.push(r);
            traces.push(t);
        }
        assert_eq!(
            reports[0], reports[1],
            "replication={enabled}: report differs at 2 workers"
        );
        assert_eq!(
            reports[0], reports[2],
            "replication={enabled}: report differs at 8 workers"
        );
        assert_eq!(
            traces[0], traces[1],
            "replication={enabled}: trace differs at 2 workers"
        );
        assert_eq!(
            traces[0], traces[2],
            "replication={enabled}: trace differs at 8 workers"
        );
        if enabled {
            assert!(
                reports[0].contains("\"replication\":{"),
                "replica summary missing from the serialized report"
            );
            assert!(
                traces[0].contains("ReplicaPromoted") && traces[0].contains("ReplicaRouted"),
                "trace lacks dynamic-placement events"
            );
        } else {
            assert!(
                reports[0].contains("\"replication\":null"),
                "disabled replication must serialize as null"
            );
        }
    }
}

/// Deterministic intra-run parallelism: the `jaws-par` worker count must be
/// invisible in results. Serialized reports, completion logs and the full
/// JSONL traces must be byte-identical at 1, 2 and 8 workers — single-node
/// and cluster — for every policy family. This is the contract that makes
/// `JAWS_THREADS` a pure wall-clock knob.
#[test]
fn reports_and_traces_are_byte_identical_at_any_thread_count() {
    for kind in [
        SchedulerKind::NoShare,
        SchedulerKind::LifeRaft2,
        SchedulerKind::Jaws2 { batch_k: 15 },
    ] {
        let mut runs = Vec::new();
        let mut traces = Vec::new();
        let mut cluster_runs = Vec::new();
        let mut cluster_traces = Vec::new();
        for threads in [1usize, 2, 8] {
            // The override is thread-local, so it governs every jaws-par
            // call made by the runs below (worker counts are decided on the
            // calling thread, never inside worker threads).
            let _guard = jaws_par::override_threads(threads);
            runs.push(serialized_run(kind, 3));
            traces.push(jsonl_trace_of_run(kind, 3));
            cluster_runs.push(serialized_cluster_run(kind, 3, 3));
            cluster_traces.push(jsonl_trace_of_cluster_run(kind, 3, 3));
        }
        for (what, v) in [
            ("report", &runs),
            ("trace", &traces),
            ("cluster report", &cluster_runs),
            ("cluster trace", &cluster_traces),
        ] {
            assert!(!v[0].is_empty(), "{}: empty {what}", kind.name());
            assert_eq!(v[0], v[1], "{}: {what} differs at 2 workers", kind.name());
            assert_eq!(v[0], v[2], "{}: {what} differs at 8 workers", kind.name());
        }
    }
}
