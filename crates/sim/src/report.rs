//! Run reports: the measurements every experiment binary prints.

use jaws_cache::CacheStats;
use jaws_scheduler::SchedulerStats;
use jaws_turbdb::DiskStats;
use serde::Serialize;

/// Response-time percentiles in ms.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

impl Percentiles {
    /// Computes percentiles from unsorted samples (empty → zeros), using the
    /// standard nearest-rank convention: the q-th percentile of n sorted
    /// samples is the one at 1-based rank `⌈q·n⌉`. The previous
    /// `round((n−1)·q)` index rounded half away from zero, which returned the
    /// *larger* of two samples as the median and saturated p95 to the max for
    /// small n.
    pub fn from_samples(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(f64::total_cmp);
        let at = |q: f64| {
            // The epsilon guards exact-product cases against float error:
            // 0.95 * 100.0 is 95.000000000000014, whose bare ceil would be
            // rank 96 instead of the intended 95.
            let rank = ((q * samples.len() as f64) - 1e-9).ceil().max(1.0) as usize;
            samples[rank.min(samples.len()) - 1]
        };
        Percentiles {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            // Sorted ascending, so quantile 1.0 is the maximum — no direct
            // `last().expect` on a slice the empty-check above already guards.
            max: at(1.0),
        }
    }
}

/// Raw per-run totals the engine hands to report assembly.
pub(crate) struct RunTotals {
    /// Per-query response times in completion order.
    pub responses: Vec<f64>,
    /// Jobs whose every query completed.
    pub jobs_completed: u64,
    /// Arrival time of the first trace job, ms.
    pub first_arrival: f64,
    /// Completion time of the last query, ms.
    pub last_completion: f64,
    /// True if the run hit its simulated-time cap or left queries behind.
    pub truncated: bool,
}

/// Assembles a [`RunReport`] from engine totals plus the (possibly
/// aggregated) database, cache and scheduler statistics — the one place the
/// derived metrics (makespan, throughput, percentiles, per-query overheads)
/// are computed, shared by the single-node and cluster executors.
pub(crate) fn assemble(
    scheduler: String,
    cache_policy: String,
    mut totals: RunTotals,
    cache: CacheStats,
    disk: DiskStats,
    scheduler_stats: SchedulerStats,
    alpha_final: f64,
) -> RunReport {
    let completed = totals.responses.len() as u64;
    let makespan_ms = (totals.last_completion - totals.first_arrival).max(1e-9);
    let mean_response_ms = if totals.responses.is_empty() {
        0.0
    } else {
        totals.responses.iter().sum::<f64>() / totals.responses.len() as f64
    };
    RunReport {
        scheduler,
        cache_policy,
        queries_completed: completed,
        jobs_completed: totals.jobs_completed,
        makespan_ms,
        throughput_qps: completed as f64 / (makespan_ms / 1000.0),
        mean_response_ms,
        response: Percentiles::from_samples(&mut totals.responses),
        cache,
        disk,
        scheduler_stats,
        cache_overhead_ms_per_query: if completed == 0 {
            0.0
        } else {
            cache.policy_overhead_ns as f64 / completed as f64 / 1e6
        },
        seconds_per_query: if completed == 0 {
            0.0
        } else {
            makespan_ms / 1000.0 / completed as f64
        },
        alpha_final,
        truncated: totals.truncated,
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Scheduler name (`NoShare`, `LifeRaft_1`, `LifeRaft_2`, `JAWS_1`,
    /// `JAWS_2`).
    pub scheduler: String,
    /// Cache policy name (`LRU`, `LRU-K`, `SLRU`, `URC`).
    pub cache_policy: String,
    /// Queries completed.
    pub queries_completed: u64,
    /// Jobs fully completed.
    pub jobs_completed: u64,
    /// Simulated time from first arrival to last completion, ms.
    pub makespan_ms: f64,
    /// Query throughput over the makespan, queries/s — the paper's headline
    /// metric (Figs. 10–12).
    pub throughput_qps: f64,
    /// Mean query response time (submission → completion), ms.
    pub mean_response_ms: f64,
    /// Response-time percentiles, ms.
    pub response: Percentiles,
    /// Buffer-cache statistics (hit ratio of Table I).
    pub cache: CacheStats,
    /// Simulated-disk statistics.
    pub disk: DiskStats,
    /// Scheduler statistics.
    pub scheduler_stats: SchedulerStats,
    /// Measured cache-policy maintenance overhead per query, ms (Table I's
    /// Overhead/Qry column; wall-clock, not simulated).
    pub cache_overhead_ms_per_query: f64,
    /// Mean simulated seconds per query (Table I's Seconds/Qry).
    pub seconds_per_query: f64,
    /// Final age bias α.
    pub alpha_final: f64,
    /// True if the run hit its simulated-time cap before draining the trace.
    pub truncated: bool,
}

impl RunReport {
    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{:<11} {:<6} {:>7.3} q/s  rt mean {:>9.1} ms  p95 {:>9.1} ms  hit {:>5.1}%  {:>6} queries{}",
            self.scheduler,
            self.cache_policy,
            self.throughput_qps,
            self.mean_response_ms,
            self.response.p95,
            self.cache.hit_ratio() * 100.0,
            self.queries_completed,
            if self.truncated { "  [TRUNCATED]" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_samples() {
        let mut s: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let p = Percentiles::from_samples(&mut s);
        // Nearest-rank ⌈q·n⌉: the value at 1-based rank q·n for n = 100.
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
    }

    #[test]
    fn percentile_of_two_samples_is_the_smaller() {
        // Regression: round((n−1)·q) rounded 0.5 away from zero and returned
        // the larger sample as p50 of two; ⌈0.5·2⌉ = rank 1 is the smaller.
        let p = Percentiles::from_samples(&mut [10.0, 20.0]);
        assert_eq!(p.p50, 10.0);
        // And p95 of a small sample set must not saturate to the max:
        // ⌈0.95·2⌉ = rank 2 here, but with n = 10, rank 10 only at q ≥ 0.9.
        let mut ten: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let p = Percentiles::from_samples(&mut ten);
        assert_eq!(p.p50, 5.0);
        assert_eq!(p.p95, 10.0);
    }

    #[test]
    fn percentiles_of_empty_and_single() {
        assert_eq!(Percentiles::from_samples(&mut []).max, 0.0);
        let p = Percentiles::from_samples(&mut [42.0]);
        assert_eq!(p.p50, 42.0);
        assert_eq!(p.max, 42.0);
    }

    #[test]
    fn percentiles_sort_unsorted_input() {
        let p = Percentiles::from_samples(&mut [3.0, 1.0, 2.0]);
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.max, 3.0);
    }
}
