//! Dynamic data placement: hot-atom replication (ROADMAP item 3).
//!
//! The paper's trace is *defined* by skew — ~70 % of queries hit about a
//! dozen timesteps — yet static Morton slabs pin every key to one owner, so
//! the node owning a hot slab saturates while its peers idle. This module
//! turns placement into a scheduled resource, in the spirit of
//! STAR-Scheduler's dispatch-to-replicas and LifeRaft's contention ordering
//! (PAPERS.md):
//!
//! * a per-key **access histogram** (a fixed-capacity ring of recent access
//!   times standing in for a sliding window — see [`AccessRing`]) is fed
//!   from the engine's dispatch path without allocating per access;
//! * keys whose windowed traffic crosses `promote_accesses` are **promoted**:
//!   a replica is placed on the least-loaded live node that is not the owner
//!   (every node opens the full geometry, so a replica is just a remote cache
//!   line — no data movement is modeled beyond the node's own cold read);
//! * each footprint atom of a submitted query is **routed** to the
//!   least-loaded live candidate among the owner and its replicas, falling
//!   back to the Morton-slab owner;
//! * replicas are **demoted** when the window drains below
//!   `demote_accesses` (hysteresis: `demote_accesses < promote_accesses`),
//!   and **dropped** when a scripted crash kills their host — the slab
//!   itself re-chains through `LiveRouting` exactly as without replication.
//!
//! ## Determinism
//!
//! Every decision is a pure function of simulated time and the seeded trace:
//! the histogram is keyed and trimmed by engine `now_ms`, candidate order is
//! (load, owner-preference, node index) with integer loads, and all state
//! lives in `BTreeMap`s (lint rule D001). The final replica table is
//! serialized into the cluster report via [`ReplicationSummary`], so the
//! byte-identity tests cover placement itself.

use jaws_morton::MortonKey;
use serde::Serialize;
use std::collections::BTreeMap;

/// Knobs for the hot-atom replica overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationConfig {
    /// Master switch; when false the executor routes by static Morton slabs
    /// and allocates no replication state at all.
    pub enabled: bool,
    /// Sliding histogram window, simulated ms. Accesses older than this are
    /// trimmed before every threshold decision.
    pub window_ms: f64,
    /// Windowed access count at or above which a key is promoted.
    pub promote_accesses: u32,
    /// Windowed access count at or below which a replicated key is demoted.
    /// Must be strictly below `promote_accesses` (hysteresis band).
    pub demote_accesses: u32,
    /// Replicas placed per promoted key (capped by live non-owner nodes).
    pub max_replicas_per_atom: u32,
    /// Upper bound on simultaneously replicated keys.
    pub max_hot_atoms: usize,
}

impl ReplicationConfig {
    /// Replication off; the remaining knobs are the [`Self::on`] defaults so
    /// flipping `enabled` alone yields a sane overlay.
    pub fn disabled() -> Self {
        ReplicationConfig {
            enabled: false,
            ..Self::on()
        }
    }

    /// Replication on with defaults sized for the paper-like skewed traces:
    /// a key accessed 8 times inside a one-minute window is hot; it stays
    /// replicated until the window drains to ≤ 2.
    pub fn on() -> Self {
        ReplicationConfig {
            enabled: true,
            window_ms: 60_000.0,
            promote_accesses: 8,
            demote_accesses: 2,
            max_replicas_per_atom: 1,
            max_hot_atoms: 64,
        }
    }

    /// Validates the hysteresis band and window.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (no hysteresis, zero-width
    /// window, or a zero replica budget).
    pub fn validate(&self) {
        assert!(
            self.promote_accesses >= 1,
            "promotion threshold must be ≥ 1"
        );
        assert!(
            self.demote_accesses < self.promote_accesses,
            "hysteresis requires demote ({}) < promote ({})",
            self.demote_accesses,
            self.promote_accesses
        );
        assert!(
            self.window_ms > 0.0,
            "histogram window must be positive, got {}",
            self.window_ms
        );
        assert!(self.max_replicas_per_atom >= 1, "need a replica budget");
        assert!(self.max_hot_atoms >= 1, "need a hot-atom budget");
    }
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Fixed-capacity ring of the most recent access timestamps for one key.
///
/// Promotion and demotion only ever compare the windowed access count
/// against `promote_accesses` and `demote_accesses < promote_accesses`, so
/// the last `promote_accesses` timestamps determine every decision exactly:
/// the ring reports `min(exact windowed count, capacity)`, which lands on
/// the same side of both thresholds as the exact count (engine time is
/// non-decreasing, so the ring always holds the *newest* accesses). Unlike
/// the per-key `VecDeque<f64>` it replaced — which held every in-window
/// access and reallocated as hot keys grew — the ring never grows after
/// construction, so the dispatch path records accesses allocation-free.
#[derive(Debug)]
struct AccessRing {
    /// The last `slots.len()` access times; `slots[cursor]` is the next
    /// overwrite target (the oldest entry once the ring has wrapped).
    slots: Box<[f64]>,
    cursor: usize,
    /// Slots holding real timestamps: `min(total accesses, slots.len())`.
    filled: usize,
}

impl AccessRing {
    fn new(capacity: usize) -> Self {
        AccessRing {
            slots: vec![0.0; capacity.max(1)].into_boxed_slice(),
            cursor: 0,
            filled: 0,
        }
    }

    /// Records one access at `now_ms`, evicting the oldest retained
    /// timestamp once full. No allocation.
    fn record(&mut self, now_ms: f64) {
        self.slots[self.cursor] = now_ms;
        self.cursor = (self.cursor + 1) % self.slots.len();
        self.filled = (self.filled + 1).min(self.slots.len());
    }

    /// Retained accesses still inside the window ending at `now_ms`:
    /// `min(exact windowed count, capacity)`.
    fn windowed_count(&self, now_ms: f64, window_ms: f64) -> u32 {
        self.slots[..self.filled]
            .iter()
            .filter(|&&t| now_ms - t <= window_ms)
            .count() as u32
    }
}

/// One replica-table transition decided while routing an access; the engine
/// turns these into `jaws-obs` events in decision order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ReplicaAction {
    /// A key crossed the promotion threshold; `node` now hosts a replica.
    Promoted {
        morton: MortonKey,
        node: u32,
        /// Windowed access count at promotion, saturated at
        /// `promote_accesses` (the ring retains no more — see
        /// [`AccessRing`]).
        window_accesses: u32,
    },
    /// A key drained below the demotion threshold; `node`'s replica is gone.
    Demoted { morton: MortonKey, node: u32 },
    /// The access was diverted from its slab owner to a replica.
    Routed {
        morton: MortonKey,
        owner: u32,
        replica: u32,
    },
}

/// The replica routing table plus the access histogram feeding it.
#[derive(Debug)]
pub(crate) struct ReplicaDirectory {
    cfg: ReplicationConfig,
    /// Per key: the fixed-capacity ring of recent access timestamps.
    hits: BTreeMap<MortonKey, AccessRing>,
    /// Per replicated key: hosting nodes, ascending (never the owner).
    replicas: BTreeMap<MortonKey, Vec<u32>>,
    promotions: u64,
    demotions: u64,
    crash_drops: u64,
    replica_routed: u64,
}

impl ReplicaDirectory {
    pub(crate) fn new(cfg: ReplicationConfig) -> Self {
        cfg.validate();
        ReplicaDirectory {
            cfg,
            hits: BTreeMap::new(),
            replicas: BTreeMap::new(),
            promotions: 0,
            demotions: 0,
            crash_drops: 0,
            replica_routed: 0,
        }
    }

    /// Records one access to `m` at `now_ms`, applies any promotion/demotion
    /// transition the refreshed window triggers, and returns the node that
    /// should serve the access: the least-loaded live candidate among the
    /// owner and the key's replicas (ties prefer the owner, then the lowest
    /// node index). Transitions and diversions are appended to `actions`.
    // lint: hotpath
    pub(crate) fn route_atom(
        &mut self,
        m: MortonKey,
        owner: u32,
        now_ms: f64,
        alive: &[bool],
        load: &[u64],
        actions: &mut Vec<ReplicaAction>,
    ) -> u32 {
        let capacity = self.cfg.promote_accesses as usize;
        let ring = self
            .hits
            .entry(m)
            .or_insert_with(|| AccessRing::new(capacity));
        ring.record(now_ms);
        let count = ring.windowed_count(now_ms, self.cfg.window_ms);

        if let Some(hosts) = self.replicas.get(&m) {
            if count <= self.cfg.demote_accesses {
                for &n in hosts {
                    actions.push(ReplicaAction::Demoted { morton: m, node: n });
                }
                self.replicas.remove(&m);
                self.demotions += 1;
            }
        } else if count >= self.cfg.promote_accesses && self.replicas.len() < self.cfg.max_hot_atoms
        {
            // Candidate hosts: live nodes other than the owner, least loaded
            // first (ties by index). Integer loads, so the order is total.
            // lint: allow(M001) — promotion is a rare table transition; the
            // Vec escapes into the replica table, it is not scratch.
            let mut hosts: Vec<u32> = (0..alive.len() as u32)
                .filter(|&n| n != owner && alive[n as usize])
                .collect();
            hosts.sort_by_key(|&n| (load[n as usize], n));
            hosts.truncate(self.cfg.max_replicas_per_atom as usize);
            if !hosts.is_empty() {
                for &n in &hosts {
                    actions.push(ReplicaAction::Promoted {
                        morton: m,
                        node: n,
                        window_accesses: count,
                    });
                }
                self.replicas.insert(m, hosts);
                self.promotions += 1;
            }
        }

        let mut best = owner;
        if let Some(hosts) = self.replicas.get(&m) {
            for &n in hosts {
                if alive[n as usize] && load[n as usize] < load[best as usize] {
                    best = n;
                }
            }
        }
        if best != owner {
            self.replica_routed += 1;
            actions.push(ReplicaAction::Routed {
                morton: m,
                owner,
                replica: best,
            });
        }
        best
    }

    /// Drops every replica hosted on `node` (a scripted crash killed it) and
    /// returns the keys that lost a replica there, ascending. Future
    /// promotions only consider live nodes, so the table never re-learns a
    /// dead host.
    pub(crate) fn drop_node(&mut self, node: u32) -> Vec<MortonKey> {
        let mut dropped = Vec::new();
        self.replicas.retain(|&m, hosts| {
            let before = hosts.len();
            hosts.retain(|&n| n != node);
            if hosts.len() < before {
                dropped.push(m);
                self.crash_drops += 1;
            }
            !hosts.is_empty()
        });
        dropped
    }

    /// Serializable end-of-run summary (replica table included, so report
    /// byte-identity covers placement).
    pub(crate) fn summary(&self) -> ReplicationSummary {
        ReplicationSummary {
            promotions: self.promotions,
            demotions: self.demotions,
            crash_drops: self.crash_drops,
            replica_routed: self.replica_routed,
            replicas: self
                .replicas
                .iter()
                .map(|(m, hosts)| ReplicaEntry {
                    morton: m.raw(),
                    nodes: hosts.clone(),
                })
                .collect(),
        }
    }
}

/// End-of-run replication summary, serialized into the cluster report.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicationSummary {
    /// Keys promoted to a replica at least once.
    pub promotions: u64,
    /// Keys demoted by histogram drift.
    pub demotions: u64,
    /// Replicas dropped because their host crashed.
    pub crash_drops: u64,
    /// Footprint atoms diverted from their slab owner to a replica.
    pub replica_routed: u64,
    /// Final replica table, ascending Morton key.
    pub replicas: Vec<ReplicaEntry>,
}

/// One row of the final replica table.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaEntry {
    /// The replicated Morton key.
    pub morton: u64,
    /// Hosting nodes, ascending.
    pub nodes: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(promote: u32, demote: u32) -> ReplicaDirectory {
        ReplicaDirectory::new(ReplicationConfig {
            enabled: true,
            window_ms: 1_000.0,
            promote_accesses: promote,
            demote_accesses: demote,
            max_replicas_per_atom: 1,
            max_hot_atoms: 8,
        })
    }

    #[test]
    fn cold_keys_route_to_their_owner() {
        let mut d = dir(3, 1);
        let alive = [true; 4];
        let load = [0u64; 4];
        let mut acts = Vec::new();
        assert_eq!(
            d.route_atom(MortonKey(7), 2, 0.0, &alive, &load, &mut acts),
            2
        );
        assert!(acts.is_empty(), "no transitions on a cold key: {acts:?}");
        assert!(d.summary().replicas.is_empty());
    }

    #[test]
    fn hot_key_promotes_to_the_least_loaded_non_owner() {
        let mut d = dir(3, 1);
        let alive = [true; 4];
        let load = [9u64, 4, 0, 2]; // owner 0 busy; node 2 idlest
        let mut acts = Vec::new();
        for t in 0..2 {
            d.route_atom(MortonKey(7), 0, t as f64, &alive, &load, &mut acts);
        }
        assert!(acts.is_empty(), "below threshold: {acts:?}");
        let target = d.route_atom(MortonKey(7), 0, 2.0, &alive, &load, &mut acts);
        assert!(matches!(
            acts[0],
            ReplicaAction::Promoted {
                node: 2,
                window_accesses: 3,
                ..
            }
        ));
        assert_eq!(target, 2, "the promoting access already diverts");
        assert!(matches!(
            acts[1],
            ReplicaAction::Routed {
                owner: 0,
                replica: 2,
                ..
            }
        ));
    }

    #[test]
    fn routing_prefers_the_owner_on_load_ties() {
        let mut d = dir(2, 0);
        let alive = [true; 2];
        let load = [3u64, 3];
        let mut acts = Vec::new();
        d.route_atom(MortonKey(1), 0, 0.0, &alive, &load, &mut acts);
        let t = d.route_atom(MortonKey(1), 0, 1.0, &alive, &load, &mut acts);
        assert_eq!(t, 0, "equal load must not divert");
    }

    #[test]
    fn window_drift_demotes() {
        let mut d = dir(2, 1);
        let alive = [true; 2];
        let load = [5u64, 0];
        let mut acts = Vec::new();
        d.route_atom(MortonKey(3), 0, 0.0, &alive, &load, &mut acts);
        d.route_atom(MortonKey(3), 0, 10.0, &alive, &load, &mut acts); // promotes
        assert_eq!(d.summary().replicas.len(), 1);
        acts.clear();
        // Next access far outside the window: count falls to 1 ≤ demote.
        let t = d.route_atom(MortonKey(3), 0, 10_000.0, &alive, &load, &mut acts);
        assert!(matches!(acts[0], ReplicaAction::Demoted { node: 1, .. }));
        assert_eq!(t, 0, "demoted key routes to its owner");
        assert!(d.summary().replicas.is_empty());
        assert_eq!(d.summary().demotions, 1);
    }

    #[test]
    fn crash_drops_replicas_and_promotions_avoid_the_dead_node() {
        let mut d = dir(2, 0);
        let mut alive = [true; 3];
        let load = [5u64, 0, 1];
        let mut acts = Vec::new();
        d.route_atom(MortonKey(3), 0, 0.0, &alive, &load, &mut acts);
        d.route_atom(MortonKey(3), 0, 1.0, &alive, &load, &mut acts); // replica on 1
        assert_eq!(d.drop_node(1), vec![MortonKey(3)]);
        assert!(d.summary().replicas.is_empty());
        assert_eq!(d.summary().crash_drops, 1);
        alive[1] = false;
        acts.clear();
        // Re-promotion after the crash must pick a live host.
        d.route_atom(MortonKey(3), 0, 2.0, &alive, &load, &mut acts);
        assert!(
            matches!(acts[0], ReplicaAction::Promoted { node: 2, .. }),
            "{acts:?}"
        );
    }

    #[test]
    fn hot_atom_budget_caps_the_table() {
        let mut d = ReplicaDirectory::new(ReplicationConfig {
            max_hot_atoms: 1,
            ..dir(1, 0).cfg
        });
        let alive = [true; 2];
        let load = [5u64, 0];
        let mut acts = Vec::new();
        d.route_atom(MortonKey(1), 0, 0.0, &alive, &load, &mut acts);
        d.route_atom(MortonKey(2), 0, 0.0, &alive, &load, &mut acts);
        assert_eq!(d.summary().replicas.len(), 1, "budget of one key");
    }

    /// The retired histogram, verbatim: per-key `VecDeque<f64>` of every
    /// in-window access timestamp, trimmed exactly. Kept as the decision
    /// oracle for [`AccessRing`]. The only deliberate difference is the
    /// `window_accesses` payload of `Promoted`, which the ring saturates at
    /// `promote_accesses`; the oracle applies the same saturation so the
    /// comparison below is exact over full action sequences.
    struct DequeOracle {
        cfg: ReplicationConfig,
        hits: BTreeMap<MortonKey, std::collections::VecDeque<f64>>,
        replicas: BTreeMap<MortonKey, Vec<u32>>,
    }

    impl DequeOracle {
        fn new(cfg: ReplicationConfig) -> Self {
            DequeOracle {
                cfg,
                hits: BTreeMap::new(),
                replicas: BTreeMap::new(),
            }
        }

        fn route_atom(
            &mut self,
            m: MortonKey,
            owner: u32,
            now_ms: f64,
            alive: &[bool],
            load: &[u64],
            actions: &mut Vec<ReplicaAction>,
        ) -> u32 {
            let window = self.hits.entry(m).or_default();
            window.push_back(now_ms);
            while let Some(&t) = window.front() {
                if now_ms - t > self.cfg.window_ms {
                    window.pop_front();
                } else {
                    break;
                }
            }
            let count = window.len() as u32;
            if let Some(hosts) = self.replicas.get(&m) {
                if count <= self.cfg.demote_accesses {
                    for &n in hosts {
                        actions.push(ReplicaAction::Demoted { morton: m, node: n });
                    }
                    self.replicas.remove(&m);
                }
            } else if count >= self.cfg.promote_accesses
                && self.replicas.len() < self.cfg.max_hot_atoms
            {
                let mut hosts: Vec<u32> = (0..alive.len() as u32)
                    .filter(|&n| n != owner && alive[n as usize])
                    .collect();
                hosts.sort_by_key(|&n| (load[n as usize], n));
                hosts.truncate(self.cfg.max_replicas_per_atom as usize);
                if !hosts.is_empty() {
                    for &n in &hosts {
                        actions.push(ReplicaAction::Promoted {
                            morton: m,
                            node: n,
                            window_accesses: count.min(self.cfg.promote_accesses),
                        });
                    }
                    self.replicas.insert(m, hosts);
                }
            }
            let mut best = owner;
            if let Some(hosts) = self.replicas.get(&m) {
                for &n in hosts {
                    if alive[n as usize] && load[n as usize] < load[best as usize] {
                        best = n;
                    }
                }
            }
            if best != owner {
                actions.push(ReplicaAction::Routed {
                    morton: m,
                    owner,
                    replica: best,
                });
            }
            best
        }
    }

    /// The bucket-ring histogram must reproduce the exact sliding window's
    /// promote/demote/route decisions on a paper-like skewed trace: ~70 % of
    /// accesses hammer a dozen hot keys (driving promotions, demotions on
    /// drift, and replica routing), the rest spread over a long cold tail.
    #[test]
    fn ring_pins_identical_decisions_to_the_deque_oracle_on_a_skewed_trace() {
        let cfg = ReplicationConfig {
            enabled: true,
            window_ms: 500.0,
            promote_accesses: 8,
            demote_accesses: 2,
            max_replicas_per_atom: 2,
            max_hot_atoms: 6, // deliberately tight: budget refusals included
        };
        let mut ring = ReplicaDirectory::new(cfg);
        let mut oracle = DequeOracle::new(cfg);
        let nodes = 5usize;
        let mut alive = vec![true; nodes];
        let mut load = vec![0u64; nodes];
        let mut state = 0x2009_0720_u64;
        let mut rng = move || {
            // splitmix64 — the workspace's seeded-stream idiom.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut now_ms = 0.0f64;
        let mut ring_actions = Vec::new();
        let mut oracle_actions = Vec::new();
        for step in 0..4096 {
            let r = rng();
            // 70 % of traffic on 12 hot keys, the rest on a 500-key tail.
            let key = if r % 10 < 7 {
                MortonKey((r / 10) % 12)
            } else {
                MortonKey(100 + (r / 10) % 500)
            };
            let owner = (key.raw() % nodes as u64) as u32;
            // Phased arrivals: dense bursts (hot keys cross the promotion
            // threshold) alternating with lulls (their windows drain past
            // the demotion threshold).
            now_ms += if (step / 512) % 2 == 0 {
                (r >> 32) as f64 % 4.0
            } else {
                60.0 + (r >> 32) as f64 % 80.0
            };
            load[step % nodes] = r % 97; // drifting load picture
            if step == 1500 {
                // Mid-trace crash: both tables drop node 3's replicas.
                assert_eq!(ring.drop_node(3), {
                    let mut dropped = Vec::new();
                    oracle.replicas.retain(|&m, hosts| {
                        let before = hosts.len();
                        hosts.retain(|&n| n != 3);
                        if hosts.len() < before {
                            dropped.push(m);
                        }
                        !hosts.is_empty()
                    });
                    dropped
                });
                alive[3] = false;
            }
            let a = ring.route_atom(key, owner, now_ms, &alive, &load, &mut ring_actions);
            let b = oracle.route_atom(key, owner, now_ms, &alive, &load, &mut oracle_actions);
            assert_eq!(a, b, "routing diverged at step {step}");
        }
        assert_eq!(ring_actions, oracle_actions, "action sequences diverged");
        // The trace actually exercised every transition kind.
        let has = |f: &dyn Fn(&ReplicaAction) -> bool| ring_actions.iter().any(f);
        assert!(has(&|a| matches!(a, ReplicaAction::Promoted { .. })));
        assert!(has(&|a| matches!(a, ReplicaAction::Demoted { .. })));
        assert!(has(&|a| matches!(a, ReplicaAction::Routed { .. })));
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn degenerate_hysteresis_rejected() {
        ReplicationConfig {
            demote_accesses: 4,
            promote_accesses: 4,
            ..ReplicationConfig::on()
        }
        .validate();
    }
}
