//! Seeded failure scenarios for the cluster engine (ROADMAP item 3).
//!
//! The §V-C deployment assumes every node survives the replay; a production
//! JAWS must keep draining the workload when a node crashes mid-batch or
//! degrades into a straggler (STAR-Scheduler is the reference point for
//! distributed I/O-intensive dispatch under node failure). A [`FailurePlan`]
//! is a *deterministic script* of such events, injected into the engine's
//! event queue like any other event:
//!
//! * **Crash** — at time `T` the node is marked dead, its Morton slab is
//!   re-routed to a designated survivor (clamped routing update, chained
//!   across repeated failures), and every in-flight or queued sub-query part
//!   it held is re-enqueued through the survivor's scheduler so ordered-job
//!   barriers still resolve. Re-dispatched work re-enters the survivor's
//!   utility ranking — it does not jump the queue (LifeRaft's
//!   starvation-vs-throughput lesson).
//! * **Slowdown** — at time `T` the node's charged service times (batches and
//!   speculative reads) are multiplied by a factor, modeling a straggler.
//!
//! ## Determinism contract
//!
//! A plan is constructed from an **explicit seed** and explicit event times —
//! this module contains no entropy or wall-clock source (lint rule D002), and
//! `jaws-lint` additionally enforces (rule D003) that plans are built through
//! [`FailurePlan::new`] so the seed can never be defaulted away. The seed
//! drives only the optional deterministic time [`FailurePlan::jittered`]
//! perturbation; same seed + same plan ⇒ byte-identical reports and JSONL
//! traces (asserted by `crates/sim/tests/determinism.rs`).

use serde::Serialize;

/// One scripted failure event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FailureEvent {
    /// The node dies at `at_ms`: its slab is re-routed and its pending parts
    /// re-dispatched to `survivor` (or, when `None`, the lowest-indexed node
    /// still alive).
    Crash {
        /// Simulated time of the crash, ms.
        at_ms: f64,
        /// The node that dies.
        node: u32,
        /// Designated survivor inheriting the slab; `None` picks the
        /// lowest-indexed live node deterministically.
        survivor: Option<u32>,
    },
    /// The node turns into a straggler at `at_ms`: every subsequently charged
    /// batch or prefetch service time is multiplied by `factor`.
    Slowdown {
        /// Simulated time the degradation starts, ms.
        at_ms: f64,
        /// The straggling node.
        node: u32,
        /// Service-time multiplier (≥ 1 models degradation; must be finite
        /// and > 0).
        factor: f64,
    },
}

impl FailureEvent {
    /// The simulated time the event fires.
    pub fn at_ms(&self) -> f64 {
        match *self {
            FailureEvent::Crash { at_ms, .. } | FailureEvent::Slowdown { at_ms, .. } => at_ms,
        }
    }

    /// The node the event targets.
    pub fn node(&self) -> u32 {
        match *self {
            FailureEvent::Crash { node, .. } | FailureEvent::Slowdown { node, .. } => node,
        }
    }
}

/// A deterministic, seeded script of node failures for one cluster replay.
///
/// Construction requires an explicit seed ([`FailurePlan::new`]; enforced by
/// jaws-lint rule D003) even though event times are explicit, so that every
/// derived perturbation ([`FailurePlan::jittered`]) is replayable and no
/// call site can fall back to ambient entropy.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FailurePlan {
    seed: u64,
    events: Vec<FailureEvent>,
}

impl FailurePlan {
    /// An empty plan under an explicit seed. Add events with
    /// [`FailurePlan::crash_at`] / [`FailurePlan::slowdown_at`].
    pub fn new(seed: u64) -> Self {
        FailurePlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The canonical no-failure plan (seed 0, no events) — what a plain
    /// replay uses.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// Schedules a crash of `node` at `at_ms` with the default survivor rule
    /// (lowest-indexed node still alive at crash time).
    pub fn crash_at(mut self, at_ms: f64, node: u32) -> Self {
        assert!(
            at_ms.is_finite() && at_ms >= 0.0,
            "crash time must be finite"
        );
        self.events.push(FailureEvent::Crash {
            at_ms,
            node,
            survivor: None,
        });
        self
    }

    /// Schedules a crash of `node` at `at_ms`, designating `survivor` to
    /// inherit its slab.
    pub fn crash_with_survivor(mut self, at_ms: f64, node: u32, survivor: u32) -> Self {
        assert!(
            at_ms.is_finite() && at_ms >= 0.0,
            "crash time must be finite"
        );
        assert_ne!(node, survivor, "a node cannot survive its own crash");
        self.events.push(FailureEvent::Crash {
            at_ms,
            node,
            survivor: Some(survivor),
        });
        self
    }

    /// Schedules a service-time slowdown of `node` by `factor` from `at_ms`.
    pub fn slowdown_at(mut self, at_ms: f64, node: u32, factor: f64) -> Self {
        assert!(
            at_ms.is_finite() && at_ms >= 0.0,
            "slowdown time must be finite"
        );
        assert!(
            factor.is_finite() && factor > 0.0,
            "slowdown factor must be finite and positive"
        );
        self.events.push(FailureEvent::Slowdown {
            at_ms,
            node,
            factor,
        });
        self
    }

    /// Derives a plan whose event times are deterministically perturbed by up
    /// to ±`amplitude_ms`, driven by the plan's seed (splitmix64 over the
    /// event index — no entropy). Perturbed times are clamped at 0. Useful
    /// for sweeping "the same scenario, slightly shifted" without inventing
    /// new seeds per run.
    pub fn jittered(&self, amplitude_ms: f64) -> Self {
        assert!(
            amplitude_ms.is_finite() && amplitude_ms >= 0.0,
            "jitter amplitude must be finite and non-negative"
        );
        let jitter_of = |i: u64| {
            // splitmix64: the standard 64-bit finalizer; a pure function of
            // (seed, index), so the derived plan is itself deterministic.
            let mut z = self
                .seed
                .wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // Map to [-1, 1) on a 53-bit mantissa grid (exact in f64).
            (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        };
        let events = self
            .events
            .iter()
            .enumerate()
            .map(|(i, ev)| {
                let shift = jitter_of(i as u64) * amplitude_ms;
                match *ev {
                    FailureEvent::Crash {
                        at_ms,
                        node,
                        survivor,
                    } => FailureEvent::Crash {
                        at_ms: (at_ms + shift).max(0.0),
                        node,
                        survivor,
                    },
                    FailureEvent::Slowdown {
                        at_ms,
                        node,
                        factor,
                    } => FailureEvent::Slowdown {
                        at_ms: (at_ms + shift).max(0.0),
                        node,
                        factor,
                    },
                }
            })
            .collect();
        FailurePlan {
            seed: self.seed,
            events,
        }
    }

    /// The scripted events, in insertion order (the engine queues them with
    /// time + insertion-id keys, so same-time events fire in this order).
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// The explicit seed the plan was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan schedules nothing (the plain-replay fast path).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates the plan against a cluster of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node indices, a crash scripted twice for the
    /// same node, or a plan that crashes every node (nothing could drain the
    /// workload).
    pub fn validate(&self, nodes: u32) {
        let mut crashed = std::collections::BTreeSet::new();
        for ev in &self.events {
            assert!(
                ev.node() < nodes,
                "failure event targets node {} of a {}-node cluster",
                ev.node(),
                nodes
            );
            if let FailureEvent::Crash { node, survivor, .. } = ev {
                assert!(
                    crashed.insert(*node),
                    "node {node} is scripted to crash twice"
                );
                if let Some(s) = survivor {
                    assert!(
                        *s < nodes,
                        "survivor {s} out of range for a {nodes}-node cluster"
                    );
                }
            }
        }
        assert!(
            (crashed.len() as u32) < nodes,
            "a FailurePlan must leave at least one node alive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events_in_order() {
        let p = FailurePlan::new(7)
            .crash_at(100.0, 1)
            .slowdown_at(50.0, 0, 2.0);
        assert_eq!(p.events().len(), 2);
        assert_eq!(p.events()[0].at_ms(), 100.0);
        assert_eq!(p.events()[1].node(), 0);
        assert_eq!(p.seed(), 7);
        assert!(!p.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = FailurePlan::new(42)
            .crash_at(1000.0, 0)
            .slowdown_at(2000.0, 1, 4.0);
        let a = p.jittered(100.0);
        let b = p.jittered(100.0);
        assert_eq!(a, b, "same seed must derive the same jittered plan");
        for (orig, j) in p.events().iter().zip(a.events()) {
            assert!((j.at_ms() - orig.at_ms()).abs() <= 100.0);
            assert!(j.at_ms() >= 0.0);
        }
        // A different seed moves the times differently.
        let c = FailurePlan::new(43)
            .crash_at(1000.0, 0)
            .slowdown_at(2000.0, 1, 4.0);
        assert_ne!(a.events()[0].at_ms(), c.jittered(100.0).events()[0].at_ms());
    }

    #[test]
    fn validate_accepts_sane_plans() {
        FailurePlan::new(1)
            .crash_with_survivor(10.0, 0, 1)
            .slowdown_at(5.0, 1, 8.0)
            .validate(2);
    }

    #[test]
    #[should_panic(expected = "at least one node alive")]
    fn validate_rejects_total_cluster_loss() {
        FailurePlan::new(1)
            .crash_at(1.0, 0)
            .crash_at(2.0, 1)
            .validate(2);
    }

    #[test]
    #[should_panic(expected = "crash twice")]
    fn validate_rejects_double_crash() {
        FailurePlan::new(1)
            .crash_at(1.0, 0)
            .crash_at(2.0, 0)
            .validate(4);
    }

    #[test]
    #[should_panic(expected = "targets node")]
    fn validate_rejects_out_of_range_nodes() {
        FailurePlan::new(1).slowdown_at(1.0, 9, 2.0).validate(2);
    }
}
