//! Multi-node cluster execution (§V-C, Fig. 7).
//!
//! "In the Turbulence cluster, data are partitioned spatially … and stored
//! across different nodes, each running a separate JAWS instance. Incoming
//! queries are first evaluated by the Query Pre-Processor … the positions are
//! then assigned to the workload queues of the corresponding atoms."
//!
//! This module reproduces that deployment: the atom grid is split into `n`
//! contiguous Morton slabs (contiguous in Morton order ⇒ compact in space),
//! every node owns one slab across all timesteps and runs its own scheduler,
//! buffer pool and simulated disk. A query fans out into per-node parts; it
//! completes — and, for ordered jobs, unblocks its successor — only when
//! every part has finished (the paper's "JAWS combines and buffers the
//! sub-query results before delivering the final result to the user").
//!
//! One shared discrete-event clock drives all nodes, so cross-node barriers
//! and job think-time loops stay exact.

use crate::report::{Percentiles, RunReport};
use crate::setup::{build_db, build_scheduler, CachePolicyKind, SchedulerKind};
use jaws_cache::CacheStats;
use jaws_morton::{AtomId, MortonKey};
use jaws_scheduler::{MetricParams, Residency, Scheduler, SchedulerStats};
use jaws_turbdb::{CostModel, DbConfig, DiskStats, TurbDb};
use jaws_workload::{Footprint, JobKind, Query, QueryId, Trace};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes; the atom grid is split into this many Morton slabs.
    /// Must divide the atoms per timestep.
    pub nodes: u32,
    /// Geometry of the *whole* database (each node stores one slab of it).
    pub db: DbConfig,
    /// Cost model per node.
    pub cost: CostModel,
    /// Scheduler run on every node.
    pub scheduler: SchedulerKind,
    /// Cache policy per node.
    pub cache_policy: CachePolicyKind,
    /// Buffer-pool capacity per node, in atoms.
    pub cache_atoms_per_node: usize,
    /// Run length `r`.
    pub run_len: usize,
    /// Gate timeout per node, ms.
    pub gate_timeout_ms: f64,
}

/// Per-node measurements.
#[derive(Debug, Clone, Serialize)]
pub struct NodeReport {
    /// Node index.
    pub node: u32,
    /// Sub-query parts executed.
    pub parts_completed: u64,
    /// Disk statistics.
    pub disk: DiskStats,
    /// Cache statistics.
    pub cache: CacheStats,
    /// Scheduler statistics.
    pub scheduler: SchedulerStats,
    /// Fraction of the makespan this node's pipeline was busy.
    pub utilization: f64,
}

/// Cluster-level outcome: the aggregate [`RunReport`] plus per-node detail.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// Aggregate measurements (throughput, response times, totals).
    pub aggregate: RunReport,
    /// Per-node breakdown.
    pub nodes: Vec<NodeReport>,
}

impl ClusterReport {
    /// Load imbalance: max/mean node busy time (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self
            .nodes
            .iter()
            .map(|n| n.utilization)
            .fold(0.0f64, f64::max);
        let mean =
            self.nodes.iter().map(|n| n.utilization).sum::<f64>() / self.nodes.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

struct Node {
    db: TurbDb,
    scheduler: Box<dyn Scheduler>,
    busy: bool,
    busy_ms: f64,
    parts_completed: u64,
}

struct NodeResidency<'a>(&'a TurbDb);

impl Residency for NodeResidency<'_> {
    fn is_resident(&self, atom: &AtomId) -> bool {
        self.0.is_resident(atom)
    }

    fn residency_epoch(&self) -> Option<u64> {
        Some(self.0.residency_epoch())
    }

    fn residency_changes_since(&self, since: u64) -> Option<Vec<(AtomId, bool)>> {
        self.0.residency_changes_since(since)
    }
}

#[derive(Debug)]
enum Event {
    JobArrival(usize),
    QuerySubmit(usize, usize),
    /// A node finished a batch: (node, completed per-node part ids).
    BatchDone(u32, Vec<QueryId>),
    IdleCheck(u32),
}

#[derive(Debug, PartialEq)]
struct Key(f64, u64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// The shared-clock multi-node executor.
pub struct ClusterExecutor {
    cfg: ClusterConfig,
    nodes: Vec<Node>,
    slab_size: u64,
    heap: BinaryHeap<Reverse<(Key, u64)>>,
    events: HashMap<u64, Event>,
    next_event: u64,
    now_ms: f64,
    idle_pending: Vec<bool>,
}

impl ClusterExecutor {
    /// Builds a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` does not divide the atoms per timestep.
    pub fn new(cfg: ClusterConfig) -> Self {
        cfg.db.validate();
        let per_ts = cfg.db.atoms_per_timestep();
        assert!(cfg.nodes >= 1, "need at least one node");
        assert_eq!(
            per_ts % cfg.nodes as u64,
            0,
            "nodes ({}) must divide atoms per timestep ({per_ts})",
            cfg.nodes
        );
        let params = MetricParams {
            atom_read_ms: cfg.cost.atom_read_ms,
            position_compute_ms: cfg.cost.position_compute_ms,
            atoms_per_timestep: per_ts / cfg.nodes as u64,
        };
        let nodes = (0..cfg.nodes)
            .map(|_| Node {
                // Every node opens the full geometry but only ever reads its
                // slab; its cache and disk stats therefore reflect slab
                // traffic only.
                db: build_db(
                    cfg.db,
                    cfg.cost,
                    jaws_turbdb::DataMode::Virtual,
                    cfg.cache_atoms_per_node,
                    cfg.cache_policy,
                ),
                scheduler: build_scheduler(cfg.scheduler, params, cfg.run_len, cfg.gate_timeout_ms),
                busy: false,
                busy_ms: 0.0,
                parts_completed: 0,
            })
            .collect();
        let slab_size = per_ts / cfg.nodes as u64;
        ClusterExecutor {
            idle_pending: vec![false; cfg.nodes as usize],
            cfg,
            nodes,
            slab_size,
            heap: BinaryHeap::new(),
            events: HashMap::new(),
            next_event: 0,
            now_ms: 0.0,
        }
    }

    /// The node owning a Morton key: contiguous Morton slabs of equal size.
    pub fn node_of(&self, m: MortonKey) -> u32 {
        (m.raw() / self.slab_size) as u32
    }

    fn push(&mut self, at_ms: f64, ev: Event) {
        let id = self.next_event;
        self.next_event += 1;
        self.events.insert(id, ev);
        self.heap.push(Reverse((Key(at_ms, id), id)));
    }

    /// Splits a query into per-node part queries, in ascending node order.
    /// Part ids pack the node into the high bits so they stay unique across
    /// nodes.
    fn split(&self, q: &Query) -> Vec<(u32, Query)> {
        let mut per_node: BTreeMap<u32, Vec<(MortonKey, u32)>> = BTreeMap::new();
        for &(m, c) in &q.footprint.atoms {
            per_node.entry(self.node_of(m)).or_default().push((m, c));
        }
        per_node
            .into_iter()
            .map(|(node, atoms)| {
                let part = Query {
                    id: part_id(q.id, node),
                    user: q.user,
                    op: q.op,
                    timestep: q.timestep,
                    footprint: Footprint::from_pairs(atoms),
                };
                (node, part)
            })
            .collect()
    }

    /// Replays `trace` on the cluster.
    pub fn run(&mut self, trace: &Trace) -> ClusterReport {
        assert_eq!(
            trace.atoms_per_side,
            self.cfg.db.atoms_per_side(),
            "trace grid mismatch"
        );
        let mut locate: HashMap<QueryId, (usize, usize)> = HashMap::new();
        for (ji, job) in trace.jobs.iter().enumerate() {
            for (qi, q) in job.queries.iter().enumerate() {
                locate.insert(q.id, (ji, qi));
            }
        }
        // Per-query barrier: outstanding part count.
        let mut outstanding: HashMap<QueryId, u32> = HashMap::new();
        let mut submit_ms: HashMap<QueryId, f64> = HashMap::new();
        let mut responses: Vec<f64> = Vec::new();
        let mut remaining_per_job: Vec<usize> =
            trace.jobs.iter().map(|j| j.queries.len()).collect();
        let mut jobs_completed = 0u64;
        let first_arrival = trace.jobs.first().map_or(0.0, |j| j.arrival_ms);
        let mut last_completion = first_arrival;

        for (ji, job) in trace.jobs.iter().enumerate() {
            self.push(job.arrival_ms, Event::JobArrival(ji));
        }

        while let Some(Reverse((Key(at, _), id))) = self.heap.pop() {
            self.now_ms = self.now_ms.max(at);
            // lint: invariant — push() stores a payload under every heap id
            let ev = self.events.remove(&id).expect("event payload");
            match ev {
                Event::JobArrival(ji) => {
                    let job = &trace.jobs[ji];
                    // Declare per-node part jobs to job-aware schedulers: the
                    // slab projection preserves the precedence structure.
                    for node in 0..self.cfg.nodes {
                        let part_job = project_job(job, node, self);
                        if !part_job.queries.is_empty() {
                            self.nodes[node as usize]
                                .scheduler
                                .job_declared(&part_job, self.now_ms);
                        }
                    }
                    match job.kind {
                        JobKind::Batched => {
                            for (qi, _) in job.queries.iter().enumerate() {
                                self.push(
                                    self.now_ms + qi as f64 * job.think_ms,
                                    Event::QuerySubmit(ji, qi),
                                );
                            }
                        }
                        JobKind::Ordered => {
                            self.push(self.now_ms, Event::QuerySubmit(ji, 0));
                        }
                    }
                }
                Event::QuerySubmit(ji, qi) => {
                    let q = &trace.jobs[ji].queries[qi];
                    submit_ms.insert(q.id, self.now_ms);
                    let parts = self.split(q);
                    outstanding.insert(q.id, parts.len() as u32);
                    for (node, part) in parts {
                        self.nodes[node as usize]
                            .scheduler
                            .query_available(&part, self.now_ms);
                    }
                }
                Event::BatchDone(node, completed_parts) => {
                    self.nodes[node as usize].busy = false;
                    for pid in completed_parts {
                        {
                            let n = &mut self.nodes[node as usize];
                            n.parts_completed += 1;
                            let rt_part = self.now_ms - submit_ms[&orig_id(pid)];
                            n.scheduler.on_query_complete(pid, rt_part, self.now_ms);
                            if n.scheduler.take_run_boundary() {
                                n.db.end_run();
                            }
                        }
                        let qid = orig_id(pid);
                        // lint: invariant — every part was registered in
                        // `outstanding` when its query was split
                        let left = outstanding
                            .get_mut(&qid)
                            .expect("completed part of a tracked query");
                        *left -= 1;
                        if *left > 0 {
                            continue;
                        }
                        outstanding.remove(&qid);
                        // The whole query is done: record and advance the job.
                        let rt = self.now_ms - submit_ms[&qid];
                        responses.push(rt);
                        last_completion = self.now_ms;
                        let (ji, qi) = locate[&qid];
                        let job = &trace.jobs[ji];
                        remaining_per_job[ji] -= 1;
                        if remaining_per_job[ji] == 0 {
                            jobs_completed += 1;
                        }
                        if job.kind == JobKind::Ordered && qi + 1 < job.queries.len() {
                            self.push(self.now_ms + job.think_ms, Event::QuerySubmit(ji, qi + 1));
                        }
                    }
                }
                Event::IdleCheck(node) => {
                    self.idle_pending[node as usize] = false;
                }
            }
            for node in 0..self.cfg.nodes {
                self.dispatch(node);
            }
        }

        let completed = responses.len() as u64;
        let makespan_ms = (last_completion - first_arrival).max(1e-9);
        let mean_response_ms = if responses.is_empty() {
            0.0
        } else {
            responses.iter().sum::<f64>() / responses.len() as f64
        };
        let total_disk = self.nodes.iter().fold(DiskStats::default(), |mut a, n| {
            let d = n.db.disk_stats();
            a.reads += d.reads;
            a.seeks += d.seeks;
            a.io_ms += d.io_ms;
            a
        });
        let total_cache = self.nodes.iter().fold(CacheStats::default(), |mut a, n| {
            let c = n.db.cache_stats();
            a.hits += c.hits;
            a.misses += c.misses;
            a.evictions += c.evictions;
            a.policy_overhead_ns += c.policy_overhead_ns;
            a
        });
        let total_sched = self
            .nodes
            .iter()
            .fold(SchedulerStats::default(), |mut a, n| {
                let s = n.scheduler.stats();
                a.batches += s.batches;
                a.atom_groups += s.atom_groups;
                a.subqueries += s.subqueries;
                a.forced_releases += s.forced_releases;
                a
            });
        // lint: invariant — ClusterExecutor::new asserts nodes >= 1
        let first_node = self.nodes.first().expect("cluster has at least one node");
        let aggregate = RunReport {
            scheduler: format!("{}x{}", self.cfg.nodes, first_node.scheduler.name()),
            cache_policy: first_node.db.cache_policy_name().to_string(),
            queries_completed: completed,
            jobs_completed,
            makespan_ms,
            throughput_qps: completed as f64 / (makespan_ms / 1000.0),
            mean_response_ms,
            response: Percentiles::from_samples(&mut responses),
            cache: total_cache,
            disk: total_disk,
            scheduler_stats: total_sched,
            cache_overhead_ms_per_query: if completed == 0 {
                0.0
            } else {
                total_cache.policy_overhead_ns as f64 / completed as f64 / 1e6
            },
            seconds_per_query: if completed == 0 {
                0.0
            } else {
                makespan_ms / 1000.0 / completed as f64
            },
            alpha_final: first_node.scheduler.alpha(),
            truncated: completed < trace.query_count() as u64,
        };
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeReport {
                node: i as u32,
                parts_completed: n.parts_completed,
                disk: n.db.disk_stats(),
                cache: n.db.cache_stats(),
                scheduler: n.scheduler.stats(),
                utilization: n.busy_ms / makespan_ms,
            })
            .collect();
        ClusterReport { aggregate, nodes }
    }

    fn dispatch(&mut self, node: u32) {
        let ni = node as usize;
        if self.nodes[ni].busy {
            return;
        }
        let batch = {
            let n = &mut self.nodes[ni];
            let res = NodeResidency(&n.db);
            n.scheduler.next_batch(self.now_ms, &res)
        };
        match batch {
            Some(batch) => {
                let (service_ms, completing) = {
                    let n = &mut self.nodes[ni];
                    let snapshot = {
                        let res = NodeResidency(&n.db);
                        n.scheduler.utility_snapshot(&res)
                    };
                    let mut service_ms = n.db.batch_dispatch_ms();
                    for group in &batch.atoms {
                        let r = n.db.read_atom(group.atom, &snapshot);
                        service_ms += r.io_ms;
                        service_ms += n.db.compute_cost_ms(group.positions());
                    }
                    for group in &batch.atoms {
                        for nb in n.db.stencil_neighbor_ids(group.atom) {
                            let r = n.db.read_atom(nb, &snapshot);
                            service_ms += r.io_ms;
                        }
                    }
                    n.busy = true;
                    n.busy_ms += service_ms;
                    (service_ms, batch.completing_queries)
                };
                self.push(self.now_ms + service_ms, Event::BatchDone(node, completing));
            }
            None => {
                if self.nodes[ni].scheduler.has_pending() && !self.idle_pending[ni] {
                    self.idle_pending[ni] = true;
                    self.push(self.now_ms + 500.0, Event::IdleCheck(node));
                }
            }
        }
    }
}

/// Packs a node index into the high bits of a part id.
fn part_id(query: QueryId, node: u32) -> QueryId {
    debug_assert!(query < 1 << 48, "query id too large for part packing");
    ((node as u64 + 1) << 48) | query
}

/// Recovers the original query id from a part id.
fn orig_id(part: QueryId) -> QueryId {
    part & ((1 << 48) - 1)
}

/// Projects a job onto one node: each query keeps only the footprint atoms
/// the node owns; empty projections are dropped, preserving order.
fn project_job(job: &jaws_workload::Job, node: u32, ex: &ClusterExecutor) -> jaws_workload::Job {
    let queries = job
        .queries
        .iter()
        .filter_map(|q| {
            let atoms: Vec<(MortonKey, u32)> = q
                .footprint
                .atoms
                .iter()
                .copied()
                .filter(|&(m, _)| ex.node_of(m) == node)
                .collect();
            if atoms.is_empty() {
                return None;
            }
            Some(Query {
                id: part_id(q.id, node),
                user: q.user,
                op: q.op,
                timestep: q.timestep,
                footprint: Footprint::from_pairs(atoms),
            })
        })
        .collect();
    jaws_workload::Job {
        id: job.id,
        user: job.user,
        kind: job.kind,
        campaign: job.campaign,
        queries,
        arrival_ms: job.arrival_ms,
        think_ms: job.think_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaws_workload::{GenConfig, TraceGenerator};

    fn cluster_cfg(nodes: u32, scheduler: SchedulerKind) -> ClusterConfig {
        ClusterConfig {
            nodes,
            db: DbConfig {
                grid_side: 32,
                atom_side: 8,
                ghost: 2,
                timesteps: 8,
                dt: 0.002,
                seed: 5,
            },
            cost: CostModel::paper_testbed(),
            scheduler,
            cache_policy: CachePolicyKind::LruK,
            cache_atoms_per_node: 8,
            run_len: 25,
            gate_timeout_ms: 10_000.0,
        }
    }

    #[test]
    fn single_node_cluster_matches_trace_totals() {
        let trace = TraceGenerator::new(GenConfig::small(51)).generate();
        let mut ex = ClusterExecutor::new(cluster_cfg(1, SchedulerKind::Jaws2 { batch_k: 8 }));
        let r = ex.run(&trace);
        assert_eq!(r.aggregate.queries_completed, trace.query_count() as u64);
        assert_eq!(r.aggregate.jobs_completed, trace.jobs.len() as u64);
        assert!(!r.aggregate.truncated);
    }

    #[test]
    fn multi_node_cluster_drains_and_splits_work() {
        let trace = TraceGenerator::new(GenConfig::small(53)).generate();
        let mut ex = ClusterExecutor::new(cluster_cfg(4, SchedulerKind::Jaws2 { batch_k: 8 }));
        let r = ex.run(&trace);
        assert_eq!(r.aggregate.queries_completed, trace.query_count() as u64);
        // Every node saw some work (footprints are scattered blobs).
        let active = r.nodes.iter().filter(|n| n.parts_completed > 0).count();
        assert!(active >= 3, "only {active} of 4 nodes did work");
        assert!(r.imbalance() >= 1.0);
    }

    #[test]
    fn more_nodes_speed_up_the_replay() {
        let trace = TraceGenerator::new(GenConfig::small(55)).generate();
        // Compress arrivals so the run is capacity-bound, then scale out.
        let trace = trace.speedup(20.0);
        let mut one = ClusterExecutor::new(cluster_cfg(1, SchedulerKind::LifeRaft2));
        let mut four = ClusterExecutor::new(cluster_cfg(4, SchedulerKind::LifeRaft2));
        let r1 = one.run(&trace);
        let r4 = four.run(&trace);
        assert_eq!(
            r1.aggregate.queries_completed,
            r4.aggregate.queries_completed
        );
        assert!(
            r4.aggregate.makespan_ms < r1.aggregate.makespan_ms,
            "4 nodes {:.0} ms vs 1 node {:.0} ms",
            r4.aggregate.makespan_ms,
            r1.aggregate.makespan_ms
        );
    }

    #[test]
    fn morton_slabs_partition_the_grid_evenly() {
        let ex = ClusterExecutor::new(cluster_cfg(4, SchedulerKind::NoShare));
        let mut counts = [0u64; 4];
        for m in 0..64u64 {
            counts[ex.node_of(MortonKey(m)) as usize] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }

    #[test]
    fn part_ids_round_trip() {
        for q in [1u64, 42, 1 << 40] {
            for node in [0u32, 3, 15] {
                assert_eq!(orig_id(part_id(q, node)), q);
            }
        }
        assert_ne!(part_id(7, 0), part_id(7, 1), "parts distinct across nodes");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn uneven_split_rejected() {
        let _ = ClusterExecutor::new(cluster_cfg(3, SchedulerKind::NoShare));
    }

    #[test]
    fn ordered_chains_respect_cross_node_barriers() {
        use jaws_morton::MortonKey as MK;
        use jaws_workload::{Job, JobKind, Query, QueryOp, Trace};
        // One ordered job whose every query spans two nodes' slabs: the
        // second query must not start before both parts of the first finish.
        let q = |id: u64, ts: u32| Query {
            id,
            user: 0,
            op: QueryOp::ParticleTrack,
            timestep: ts,
            // Atoms 0 (node 0) and 63 (node 3) in a 4-node split of 64.
            footprint: Footprint::from_pairs([(MK(0), 50u32), (MK(63), 50u32)]),
        };
        let trace = Trace::new(
            8,
            4,
            vec![Job {
                id: 1,
                user: 0,
                kind: JobKind::Ordered,
                campaign: 1,
                queries: vec![q(1, 0), q(2, 1), q(3, 2)],
                arrival_ms: 0.0,
                think_ms: 100.0,
            }],
        );
        let mut ex = ClusterExecutor::new(cluster_cfg(4, SchedulerKind::LifeRaft2));
        let r = ex.run(&trace);
        assert_eq!(r.aggregate.queries_completed, 3);
        // Both end nodes executed one part per query.
        assert_eq!(r.nodes[0].parts_completed, 3);
        assert_eq!(r.nodes[3].parts_completed, 3);
        assert_eq!(r.nodes[1].parts_completed, 0);
    }
}
