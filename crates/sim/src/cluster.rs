//! Multi-node cluster execution (§V-C, Fig. 7).
//!
//! "In the Turbulence cluster, data are partitioned spatially … and stored
//! across different nodes, each running a separate JAWS instance. Incoming
//! queries are first evaluated by the Query Pre-Processor … the positions are
//! then assigned to the workload queues of the corresponding atoms."
//!
//! This module reproduces that deployment as an N-node instantiation of the
//! shared engine ([`crate::engine`]): the atom grid is split into `n`
//! contiguous Morton slabs (contiguous in Morton order ⇒ compact in space),
//! every node owns one slab across all timesteps and runs its own
//! [`NodePipeline`] — scheduler, buffer pool, simulated disk, and (since the
//! engine unification) its own trajectory prefetcher. A query fans out into
//! per-node parts and completes — and, for ordered jobs, unblocks its
//! successor — only when every part has finished (the paper's "JAWS combines
//! and buffers the sub-query results before delivering the final result to
//! the user"). The only cluster-specific code left here is the Morton-slab
//! fan-out ([`crate::engine::Routing::MortonSlabs`]) and the per-node report
//! breakdown; arrivals, pacing, think-time chains, prefetching, `max_sim_ms`
//! truncation and idle re-checks are the engine's, shared with
//! [`crate::Executor`].

use crate::engine::{self, Routing};
use crate::failure::FailurePlan;
use crate::node::NodePipeline;
use crate::replication::{ReplicationConfig, ReplicationSummary};
use crate::report::{self, RunReport};
use crate::setup::{build_db, build_scheduler, CachePolicyKind, SchedulerKind};
use crate::SimConfig;
use jaws_cache::CacheStats;
use jaws_morton::MortonKey;
use jaws_obs::ObsSink;
use jaws_scheduler::{finite_or_zero, MetricParams, SchedulerStats};
use jaws_turbdb::{CostModel, DbConfig, DiskStats};
use jaws_workload::{QueryId, Trace};
use serde::Serialize;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes; the atom grid is split into this many contiguous
    /// Morton slabs of ⌈atoms/nodes⌉ keys each (the last slab absorbs the
    /// remainder, so node counts need not divide the grid).
    pub nodes: u32,
    /// Geometry of the *whole* database (each node stores one slab of it).
    pub db: DbConfig,
    /// Cost model per node.
    pub cost: CostModel,
    /// Scheduler run on every node.
    pub scheduler: SchedulerKind,
    /// Cache policy per node.
    pub cache_policy: CachePolicyKind,
    /// Buffer-pool capacity per node, in atoms.
    pub cache_atoms_per_node: usize,
    /// Run length `r`.
    pub run_len: usize,
    /// Gate timeout per node, ms.
    pub gate_timeout_ms: f64,
    /// Engine knobs shared with the single-node executor: per-node
    /// trajectory prefetching, the simulated-time cap, and the idle re-poll
    /// interval.
    pub sim: SimConfig,
    /// Seeded failure scenario injected into the replay
    /// ([`FailurePlan::none`] for a healthy run). Validated against the node
    /// count at construction.
    pub failures: FailurePlan,
    /// Dynamic data placement: hot-atom replication with least-loaded
    /// replica routing ([`ReplicationConfig::disabled`] for the paper's
    /// static Morton slabs). Validated at construction.
    pub replication: ReplicationConfig,
}

/// Per-node measurements.
#[derive(Debug, Clone, Serialize)]
pub struct NodeReport {
    /// Node index.
    pub node: u32,
    /// Sub-query parts executed.
    pub parts_completed: u64,
    /// Speculative atom reads issued by this node's prefetcher.
    pub prefetch_reads: u64,
    /// Disk statistics.
    pub disk: DiskStats,
    /// Cache statistics.
    pub cache: CacheStats,
    /// Scheduler statistics.
    pub scheduler: SchedulerStats,
    /// Fraction of the makespan this node's pipeline was busy (0 when the
    /// run completed nothing — never NaN).
    pub utilization: f64,
    /// Simulated time this node's pipeline spent servicing batches, ms —
    /// the numerator of `utilization`, kept raw so load comparisons do not
    /// depend on a shared makespan divisor.
    pub busy_ms: f64,
    /// Final adaptive α of this node's controller (per-node controllers
    /// diverge under skewed slabs).
    pub alpha_final: f64,
    /// True when a scripted [`FailurePlan`] crash killed this node.
    pub failed: bool,
    /// Parts re-dispatched off this node when it crashed.
    pub redispatched_parts: u64,
    /// Straggler service-time multiplier in force at end of run (1.0 =
    /// never degraded).
    pub slowdown: f64,
}

/// Degraded-mode summary of a run under a non-empty [`FailurePlan`].
#[derive(Debug, Clone, Serialize)]
pub struct DegradedReport {
    /// The plan's explicit seed (replay handle).
    pub plan_seed: u64,
    /// Time the first scripted failure fired, if any fired before the cap.
    pub first_failure_ms: Option<f64>,
    /// Nodes killed by scripted crashes, ascending.
    pub failed_nodes: Vec<u32>,
    /// Total parts re-enqueued through survivors across all crashes.
    pub redispatched_parts: u64,
    /// `(node, factor)` for nodes degraded into stragglers, ascending.
    pub slowed_nodes: Vec<(u32, f64)>,
}

/// Cluster-level outcome: the aggregate [`RunReport`] plus per-node detail.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// Aggregate measurements (throughput, response times, totals).
    pub aggregate: RunReport,
    /// Per-node breakdown.
    pub nodes: Vec<NodeReport>,
    /// Degraded-mode summary; `None` when the run's [`FailurePlan`] was
    /// empty (the serialized report is then byte-identical to a pre-failure
    /// one modulo the per-node status fields).
    pub degraded: Option<DegradedReport>,
    /// Dynamic-placement summary (replica table, promotion/demotion/routing
    /// counters); `None` when replication was disabled.
    pub replication: Option<ReplicationSummary>,
}

impl ClusterReport {
    /// Load imbalance: max/mean node busy time (1.0 = perfectly balanced).
    ///
    /// Computed over the raw per-node `busy_ms`, matching this doc — it used
    /// to divide `utilization` values instead, which is only equivalent when
    /// every node's utilization was derived from the *same* makespan; a
    /// report assembled or post-processed from heterogeneous runs silently
    /// got a makespan-weighted ratio.
    pub fn imbalance(&self) -> f64 {
        let max = self.nodes.iter().map(|n| n.busy_ms).fold(0.0f64, f64::max);
        let mean =
            self.nodes.iter().map(|n| n.busy_ms).sum::<f64>() / self.nodes.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Speculative atom reads issued across all nodes.
    pub fn prefetch_reads(&self) -> u64 {
        self.nodes.iter().map(|n| n.prefetch_reads).sum()
    }
}

/// Morton keys node `node` actually owns under ceil-sized slabs with the
/// short remainder clamped onto the last node: full interior slabs own
/// `slab_size`, the last node owns whatever remains past its slab start, and
/// trailing nodes beyond the key range own nothing. Clamped below at 1 so a
/// workless node's Eq. 2 normalizer stays well-defined.
fn owned_atoms(per_ts: u64, slab_size: u64, nodes: u32, node: u32) -> u64 {
    let start = node as u64 * slab_size;
    let owned = if node == nodes - 1 {
        per_ts.saturating_sub(start)
    } else {
        slab_size.min(per_ts.saturating_sub(start))
    };
    owned.max(1)
}

/// The shared-clock multi-node executor.
pub struct ClusterExecutor {
    cfg: ClusterConfig,
    pipelines: Vec<NodePipeline>,
    routing: Routing,
    response_log: Vec<(QueryId, f64)>,
    sink: ObsSink,
}

impl ClusterExecutor {
    /// Builds a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds the part-id packing budget
    /// ([`engine::MAX_NODE_INDEX`]).
    pub fn new(cfg: ClusterConfig) -> Self {
        cfg.db.validate();
        let per_ts = cfg.db.atoms_per_timestep();
        assert!(cfg.nodes >= 1, "need at least one node");
        assert!(
            cfg.nodes - 1 <= engine::MAX_NODE_INDEX,
            "nodes ({}) exceed the part-id packing budget ({} max)",
            cfg.nodes,
            engine::MAX_NODE_INDEX + 1
        );
        cfg.failures.validate(cfg.nodes);
        cfg.replication.validate();
        // Ceil-sized slabs: every node owns ⌈per_ts/nodes⌉ contiguous Morton
        // keys except the last, which owns whatever remains (routing clamps
        // onto it). `atoms_per_timestep` feeds Eq. 2's per-timestep
        // normalization, so each node must be told the key count it
        // *actually* owns — handing everyone the ceil slab size would
        // over-normalize (dampen) the short last slab's aged-utility term.
        let slab_size = per_ts.div_ceil(cfg.nodes as u64);
        let pipelines = (0..cfg.nodes)
            .map(|node| {
                let params = MetricParams {
                    atom_read_ms: cfg.cost.atom_read_ms,
                    position_compute_ms: cfg.cost.position_compute_ms,
                    atoms_per_timestep: owned_atoms(per_ts, slab_size, cfg.nodes, node),
                };
                // Every node opens the full geometry but only ever reads its
                // slab (plus stencil/prefetch spill-over); its cache and disk
                // stats therefore reflect its own traffic only.
                NodePipeline::new(
                    build_db(
                        cfg.db,
                        cfg.cost,
                        jaws_turbdb::DataMode::Virtual,
                        cfg.cache_atoms_per_node,
                        cfg.cache_policy,
                    ),
                    build_scheduler(cfg.scheduler, params, cfg.run_len, cfg.gate_timeout_ms),
                    cfg.sim.prefetch,
                )
            })
            .collect();
        let nodes = cfg.nodes;
        // Static Morton slabs, or the same slabs under the hot-atom replica
        // overlay when dynamic placement is on. A disabled config routes
        // through `MortonSlabs` so the replay is bit-identical to a build
        // predating replication.
        let routing = if cfg.replication.enabled {
            Routing::Replicated {
                slab_size,
                nodes,
                replication: cfg.replication,
            }
        } else {
            Routing::MortonSlabs { slab_size, nodes }
        };
        ClusterExecutor {
            cfg,
            pipelines,
            routing,
            response_log: Vec::new(),
            sink: ObsSink::null(),
        }
    }

    /// Wires an observability sink through every node's pipeline (tagged with
    /// its node index) and the shared engine loop. With a
    /// [`jaws_obs::NullRecorder`] every emission site short-circuits and the
    /// run is bit-identical to an unwired build.
    pub fn set_recorder(&mut self, sink: ObsSink) {
        for (i, p) in self.pipelines.iter_mut().enumerate() {
            p.set_recorder(sink.with_node(i as u32));
        }
        self.sink = sink;
    }

    /// The node owning a Morton key: contiguous Morton slabs of equal size.
    pub fn node_of(&self, m: MortonKey) -> u32 {
        self.routing.node_of(m)
    }

    /// Per-query response times of the last run, in completion order, under
    /// the original trace query ids (parts are folded into their query).
    pub fn response_log(&self) -> &[(QueryId, f64)] {
        &self.response_log
    }

    /// Replays `trace` on the cluster.
    pub fn run(&mut self, trace: &Trace) -> ClusterReport {
        assert_eq!(
            trace.atoms_per_side,
            self.cfg.db.atoms_per_side(),
            "trace grid mismatch"
        );
        let outcome = engine::run_trace(
            &mut self.pipelines,
            &self.routing,
            &self.cfg.sim,
            trace,
            true,
            &self.cfg.failures,
            &self.sink,
        );
        self.response_log.extend(outcome.response_log);

        let total_disk = self
            .pipelines
            .iter()
            .fold(DiskStats::default(), |mut a, p| {
                let d = p.db().disk_stats();
                a.reads += d.reads;
                a.seeks += d.seeks;
                a.io_ms += d.io_ms;
                a
            });
        let total_cache = self
            .pipelines
            .iter()
            .fold(CacheStats::default(), |mut a, p| {
                let c = p.db().cache_stats();
                a.hits += c.hits;
                a.misses += c.misses;
                a.evictions += c.evictions;
                a.policy_overhead_ns += c.policy_overhead_ns;
                a
            });
        let total_sched = self
            .pipelines
            .iter()
            .fold(SchedulerStats::default(), |mut a, p| {
                let s = p.scheduler().stats();
                a.batches += s.batches;
                a.atom_groups += s.atom_groups;
                a.subqueries += s.subqueries;
                a.forced_releases += s.forced_releases;
                a
            });
        // lint: invariant — ClusterExecutor::new asserts nodes >= 1
        let first_node = self
            .pipelines
            .first()
            .expect("cluster has at least one node");
        // Per-node adaptive controllers diverge (skewed slabs see different
        // workloads), so the aggregate α is the node-count-weighted mean —
        // equal weight per controller — not node 0's final value.
        let alpha_mean = self
            .pipelines
            .iter()
            .map(|p| p.scheduler().alpha())
            .sum::<f64>()
            / self.pipelines.len() as f64;
        let aggregate = report::assemble(
            format!("{}x{}", self.cfg.nodes, first_node.scheduler().name()),
            first_node.db().cache_policy_name().to_string(),
            outcome.totals,
            total_cache,
            total_disk,
            total_sched,
            alpha_mean,
        );
        let makespan_ms = aggregate.makespan_ms;
        let nodes = self
            .pipelines
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let status = outcome.node_status[i];
                NodeReport {
                    node: i as u32,
                    parts_completed: p.parts_completed(),
                    prefetch_reads: p.prefetch_reads(),
                    disk: p.db().disk_stats(),
                    cache: p.db().cache_stats(),
                    scheduler: p.scheduler().stats(),
                    // A zero-completion run has a zero makespan; the guard
                    // keeps the ratio (and imbalance()) NaN-free.
                    utilization: finite_or_zero(p.busy_ms() / makespan_ms),
                    busy_ms: p.busy_ms(),
                    alpha_final: p.scheduler().alpha(),
                    failed: status.failed,
                    redispatched_parts: status.redispatched_parts,
                    slowdown: status.slowdown,
                }
            })
            .collect();
        let degraded = (!self.cfg.failures.is_empty()).then(|| DegradedReport {
            plan_seed: self.cfg.failures.seed(),
            first_failure_ms: outcome.first_failure_ms,
            failed_nodes: outcome
                .node_status
                .iter()
                .enumerate()
                .filter(|(_, s)| s.failed)
                .map(|(i, _)| i as u32)
                .collect(),
            redispatched_parts: outcome
                .node_status
                .iter()
                .map(|s| s.redispatched_parts)
                .sum(),
            slowed_nodes: outcome
                .node_status
                .iter()
                .enumerate()
                // lint: allow(F002) — exact sentinel, not ranking logic: 1.0
                // is the never-degraded default and factors are copied
                // verbatim from the plan, so bitwise inequality is the test
                .filter(|(_, s)| s.slowdown != 1.0)
                .map(|(i, s)| (i as u32, s.slowdown))
                .collect(),
        });
        ClusterReport {
            aggregate,
            nodes,
            degraded,
            replication: outcome.replication,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaws_workload::{Footprint, GenConfig, TraceGenerator};
    use proptest::prelude::*;

    fn cluster_cfg(nodes: u32, scheduler: SchedulerKind) -> ClusterConfig {
        ClusterConfig {
            nodes,
            db: DbConfig {
                grid_side: 32,
                atom_side: 8,
                ghost: 2,
                timesteps: 8,
                dt: 0.002,
                seed: 5,
            },
            cost: CostModel::paper_testbed(),
            scheduler,
            cache_policy: CachePolicyKind::LruK,
            cache_atoms_per_node: 8,
            run_len: 25,
            gate_timeout_ms: 10_000.0,
            sim: SimConfig::default(),
            failures: FailurePlan::none(),
            replication: ReplicationConfig::disabled(),
        }
    }

    #[test]
    fn single_node_cluster_matches_trace_totals() {
        let trace = TraceGenerator::new(GenConfig::small(51)).generate();
        let mut ex = ClusterExecutor::new(cluster_cfg(1, SchedulerKind::Jaws2 { batch_k: 8 }));
        let r = ex.run(&trace);
        assert_eq!(r.aggregate.queries_completed, trace.query_count() as u64);
        assert_eq!(r.aggregate.jobs_completed, trace.jobs.len() as u64);
        assert!(!r.aggregate.truncated);
    }

    #[test]
    fn multi_node_cluster_drains_and_splits_work() {
        let trace = TraceGenerator::new(GenConfig::small(53)).generate();
        let mut ex = ClusterExecutor::new(cluster_cfg(4, SchedulerKind::Jaws2 { batch_k: 8 }));
        let r = ex.run(&trace);
        assert_eq!(r.aggregate.queries_completed, trace.query_count() as u64);
        // Every node saw some work (footprints are scattered blobs).
        let active = r.nodes.iter().filter(|n| n.parts_completed > 0).count();
        assert!(active >= 3, "only {active} of 4 nodes did work");
        assert!(r.imbalance() >= 1.0);
    }

    #[test]
    fn more_nodes_speed_up_the_replay() {
        let trace = TraceGenerator::new(GenConfig::small(55)).generate();
        // Compress arrivals so the run is capacity-bound, then scale out.
        let trace = trace.speedup(20.0);
        let mut one = ClusterExecutor::new(cluster_cfg(1, SchedulerKind::LifeRaft2));
        let mut four = ClusterExecutor::new(cluster_cfg(4, SchedulerKind::LifeRaft2));
        let r1 = one.run(&trace);
        let r4 = four.run(&trace);
        assert_eq!(
            r1.aggregate.queries_completed,
            r4.aggregate.queries_completed
        );
        assert!(
            r4.aggregate.makespan_ms < r1.aggregate.makespan_ms,
            "4 nodes {:.0} ms vs 1 node {:.0} ms",
            r4.aggregate.makespan_ms,
            r1.aggregate.makespan_ms
        );
    }

    #[test]
    fn morton_slabs_partition_the_grid_evenly() {
        let ex = ClusterExecutor::new(cluster_cfg(4, SchedulerKind::NoShare));
        let mut counts = [0u64; 4];
        for m in 0..64u64 {
            counts[ex.node_of(MortonKey(m)) as usize] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }

    #[test]
    fn uneven_split_routes_every_atom_and_drains() {
        // 3 nodes over 64 atoms/ts: ceil slabs of 22 — keys 0..=21, 22..=43,
        // and the short remainder 44..=63 clamped onto node 2.
        let ex = ClusterExecutor::new(cluster_cfg(3, SchedulerKind::NoShare));
        let mut counts = [0u64; 3];
        for m in 0..64u64 {
            counts[ex.node_of(MortonKey(m)) as usize] += 1;
        }
        assert_eq!(counts, [22, 22, 20]);

        let trace = TraceGenerator::new(GenConfig::small(59)).generate();
        let mut ex = ClusterExecutor::new(cluster_cfg(3, SchedulerKind::Jaws2 { batch_k: 8 }));
        let r = ex.run(&trace);
        assert_eq!(r.aggregate.queries_completed, trace.query_count() as u64);
        assert_eq!(r.aggregate.jobs_completed, trace.jobs.len() as u64);
        let routed: u64 = r.nodes.iter().map(|n| n.parts_completed).sum();
        assert!(routed >= trace.query_count() as u64);
    }

    #[test]
    fn cluster_runs_support_truncation() {
        let trace = TraceGenerator::new(GenConfig::small(57)).generate();
        let mut cfg = cluster_cfg(2, SchedulerKind::NoShare);
        cfg.sim.max_sim_ms = 10_000.0;
        let mut ex = ClusterExecutor::new(cfg);
        let r = ex.run(&trace);
        assert!(r.aggregate.truncated);
        assert!(r.aggregate.queries_completed < trace.query_count() as u64);
    }

    #[test]
    fn cluster_prefetching_issues_reads_on_ordered_chains() {
        use jaws_morton::MortonKey as MK;
        use jaws_workload::{Job, JobKind, Query, QueryOp, Trace};
        // A slow tracking chain drifting +1 in Morton-adjacent x: plenty of
        // idle time for every node's predictor.
        let q = |id: u64, ts: u32, x: u32| Query {
            id,
            user: 0,
            op: QueryOp::ParticleTrack,
            timestep: ts,
            footprint: Footprint::from_pairs([(MK::from_coords(x, 1, 1), 200u32)]),
        };
        let trace = Trace::new(
            8,
            4,
            vec![Job {
                id: 1,
                user: 0,
                kind: JobKind::Ordered,
                campaign: 1,
                queries: (0..6).map(|i| q(i + 1, i as u32, (i as u32) % 4)).collect(),
                arrival_ms: 0.0,
                think_ms: 5_000.0,
            }],
        );
        let mut base_cfg = cluster_cfg(2, SchedulerKind::Jaws2 { batch_k: 8 });
        base_cfg.cache_atoms_per_node = 16;
        let mut pf_cfg = base_cfg.clone();
        pf_cfg.sim.prefetch = true;
        let base = ClusterExecutor::new(base_cfg).run(&trace);
        let pf = ClusterExecutor::new(pf_cfg).run(&trace);
        assert_eq!(base.prefetch_reads(), 0);
        assert!(pf.prefetch_reads() > 0, "no node's predictor fired");
        assert_eq!(
            pf.aggregate.queries_completed,
            base.aggregate.queries_completed
        );
    }

    #[test]
    fn ordered_chains_respect_cross_node_barriers() {
        use jaws_morton::MortonKey as MK;
        use jaws_workload::{Job, JobKind, Query, QueryOp, Trace};
        // One ordered job whose every query spans two nodes' slabs: the
        // second query must not start before both parts of the first finish.
        let q = |id: u64, ts: u32| Query {
            id,
            user: 0,
            op: QueryOp::ParticleTrack,
            timestep: ts,
            // Atoms 0 (node 0) and 63 (node 3) in a 4-node split of 64.
            footprint: Footprint::from_pairs([(MK(0), 50u32), (MK(63), 50u32)]),
        };
        let trace = Trace::new(
            8,
            4,
            vec![Job {
                id: 1,
                user: 0,
                kind: JobKind::Ordered,
                campaign: 1,
                queries: vec![q(1, 0), q(2, 1), q(3, 2)],
                arrival_ms: 0.0,
                think_ms: 100.0,
            }],
        );
        let mut ex = ClusterExecutor::new(cluster_cfg(4, SchedulerKind::LifeRaft2));
        let r = ex.run(&trace);
        assert_eq!(r.aggregate.queries_completed, 3);
        // Both end nodes executed one part per query.
        assert_eq!(r.nodes[0].parts_completed, 3);
        assert_eq!(r.nodes[3].parts_completed, 3);
        assert_eq!(r.nodes[1].parts_completed, 0);
    }

    #[test]
    fn owned_atoms_reflect_the_clamped_partition() {
        // 3 nodes over 64 atoms/ts: ceil slabs of 22 → the last node owns the
        // short remainder of 20 keys, and Eq. 2 normalization must use it.
        assert_eq!(owned_atoms(64, 22, 3, 0), 22);
        assert_eq!(owned_atoms(64, 22, 3, 1), 22);
        assert_eq!(owned_atoms(64, 22, 3, 2), 20);
        // 9 nodes over 64: slabs of 8 fill nodes 0..=7; node 8 owns nothing
        // and is clamped to 1 so its normalizer stays well-defined.
        assert_eq!(owned_atoms(64, 8, 9, 7), 8);
        assert_eq!(owned_atoms(64, 8, 9, 8), 1);
        // Even splits are unchanged.
        for n in 0..4 {
            assert_eq!(owned_atoms(64, 16, 4, n), 16);
        }
    }

    #[test]
    fn aggregate_alpha_is_the_mean_of_divergent_node_controllers() {
        use jaws_morton::MortonKey as MK;
        use jaws_workload::{Job, JobKind, Query, QueryOp, Trace};
        // Concentrate every footprint on node 0's slab with a short run
        // length: node 0's adaptive controller steps through many run
        // boundaries while the starved nodes keep α₀, forcing divergence.
        let q = |id: u64, ts: u32| Query {
            id,
            user: 0,
            op: QueryOp::Velocity,
            timestep: ts % 8,
            footprint: Footprint::from_pairs([(MK(id % 4), 60u32)]),
        };
        let jobs = (0..4u64)
            .map(|j| Job {
                id: j + 1,
                user: j as u32,
                kind: JobKind::Batched,
                campaign: 1,
                queries: (0..30u64).map(|i| q(j * 30 + i + 1, i as u32)).collect(),
                arrival_ms: 0.0,
                think_ms: 10.0,
            })
            .collect();
        let trace = Trace::new(8, 4, jobs);
        let mut cfg = cluster_cfg(3, SchedulerKind::Jaws2 { batch_k: 8 });
        cfg.run_len = 10;
        let r = ClusterExecutor::new(cfg).run(&trace);
        assert_eq!(r.aggregate.queries_completed, trace.query_count() as u64);
        let alphas: Vec<f64> = r.nodes.iter().map(|n| n.alpha_final).collect();
        assert!(
            (alphas[0] - alphas[2]).abs() > 1e-9,
            "controllers never diverged: {alphas:?}"
        );
        let mean = alphas.iter().sum::<f64>() / alphas.len() as f64;
        assert_eq!(
            r.aggregate.alpha_final.to_bits(),
            mean.to_bits(),
            "aggregate α must be the node-count-weighted mean"
        );
        assert_ne!(
            r.aggregate.alpha_final.to_bits(),
            alphas[0].to_bits(),
            "aggregate α must not be node 0's value alone"
        );
    }

    #[test]
    fn empty_trace_reports_zero_utilization_not_nan() {
        use jaws_workload::Trace;
        let trace = Trace::new(8, 4, vec![]);
        let r = ClusterExecutor::new(cluster_cfg(2, SchedulerKind::NoShare)).run(&trace);
        assert_eq!(r.aggregate.queries_completed, 0);
        for n in &r.nodes {
            assert_eq!(
                n.utilization.to_bits(),
                0.0f64.to_bits(),
                "node {} utilization must be exactly 0, got {}",
                n.node,
                n.utilization
            );
        }
        let imb = r.imbalance();
        assert!(imb.is_finite(), "imbalance poisoned: {imb}");
    }

    #[test]
    fn truncated_runs_fold_part_ids_in_the_response_log() {
        use std::collections::BTreeSet;
        let trace = TraceGenerator::new(GenConfig::small(57)).generate();
        let mut cfg = cluster_cfg(4, SchedulerKind::Jaws2 { batch_k: 8 });
        cfg.sim.max_sim_ms = 10_000.0;
        let mut ex = ClusterExecutor::new(cfg);
        let r = ex.run(&trace);
        assert!(r.aggregate.truncated, "cap did not cut the replay");
        assert!(!ex.response_log().is_empty());
        let trace_ids: BTreeSet<u64> = trace
            .jobs
            .iter()
            .flat_map(|j| j.queries.iter().map(|q| q.id))
            .collect();
        for &(qid, rt) in ex.response_log() {
            assert!(
                qid <= engine::PART_QUERY_MASK,
                "raw part id {qid:#x} leaked into the response log"
            );
            assert!(trace_ids.contains(&qid), "log id {qid} not a trace query");
            assert!(rt.is_finite() && rt >= 0.0);
        }
    }

    #[test]
    fn crashed_node_work_is_redispatched_and_the_trace_drains() {
        let trace = TraceGenerator::new(GenConfig::small(53)).generate();
        // Compress arrivals so node 1 holds queued work when it dies.
        let trace = trace.speedup(20.0);
        let mut cfg = cluster_cfg(4, SchedulerKind::Jaws2 { batch_k: 8 });
        let healthy = ClusterExecutor::new(cfg.clone()).run(&trace);
        assert!(healthy.degraded.is_none(), "healthy run must not degrade");
        cfg.failures =
            FailurePlan::new(17).crash_with_survivor(0.5 * healthy.aggregate.makespan_ms, 1, 2);
        let mut ex = ClusterExecutor::new(cfg);
        let r = ex.run(&trace);
        assert_eq!(
            r.aggregate.queries_completed,
            trace.query_count() as u64,
            "re-dispatch failed to drain the dead node's slab"
        );
        assert!(!r.aggregate.truncated);
        assert!(r.nodes[1].failed, "crashed node not marked failed");
        assert!(!r.nodes[2].failed);
        let d = r
            .degraded
            .as_ref()
            .expect("degraded section for a failure run");
        assert_eq!(d.failed_nodes, vec![1]);
        assert_eq!(d.redispatched_parts, r.nodes[1].redispatched_parts);
        assert!(
            d.redispatched_parts > 0,
            "node 1 held no work at the crash — the scenario tests nothing"
        );
        assert!(d.first_failure_ms.is_some());
        // A crash run is the case where busy time and utilization disagree
        // in spirit: the dead node's pipeline stops accumulating busy-ms
        // while the survivor's inflates. The busy-time imbalance must be a
        // finite ratio strictly above balanced, and must agree with a
        // recomputation from the reported per-node busy_ms fields.
        let imb = r.imbalance();
        assert!(imb.is_finite() && imb > 1.0, "degraded imbalance {imb}");
        let max = r.nodes.iter().map(|n| n.busy_ms).fold(0.0f64, f64::max);
        let mean = r.nodes.iter().map(|n| n.busy_ms).sum::<f64>() / r.nodes.len() as f64;
        assert_eq!(imb.to_bits(), (max / mean).to_bits());
        // The log still folds to trace query ids only.
        for &(qid, _) in ex.response_log() {
            assert!(qid <= engine::PART_QUERY_MASK);
        }
    }

    /// The trace every dynamic-placement test shares: four batched jobs
    /// hammering `MortonKey(0)` — node 0's slab in a 4-node split of 64 keys
    /// — the canonical hot-atom skew replication exists to fix.
    fn hot_atom_trace() -> jaws_workload::Trace {
        use jaws_morton::MortonKey as MK;
        use jaws_workload::{Job, JobKind, Query, QueryOp, Trace};
        let q = |id: u64| Query {
            id,
            user: 0,
            op: QueryOp::Velocity,
            timestep: 0,
            footprint: Footprint::from_pairs([(MK(0), 60u32)]),
        };
        let jobs = (0..4u64)
            .map(|j| Job {
                id: j + 1,
                user: j as u32,
                kind: JobKind::Batched,
                campaign: 1,
                queries: (0..10u64).map(|i| q(j * 10 + i + 1)).collect(),
                arrival_ms: j as f64 * 50.0,
                think_ms: 0.0,
            })
            .collect();
        Trace::new(8, 4, jobs)
    }

    #[test]
    fn hot_atom_replication_promotes_and_diverts_load() {
        let trace = hot_atom_trace();
        let static_run =
            ClusterExecutor::new(cluster_cfg(4, SchedulerKind::Jaws2 { batch_k: 8 })).run(&trace);
        assert!(
            static_run.replication.is_none(),
            "disabled must report None"
        );

        let mut cfg = cluster_cfg(4, SchedulerKind::Jaws2 { batch_k: 8 });
        cfg.replication = ReplicationConfig::on();
        let r = ClusterExecutor::new(cfg).run(&trace);
        assert_eq!(r.aggregate.queries_completed, trace.query_count() as u64);
        let rep = r.replication.as_ref().expect("replication summary");
        assert!(rep.promotions >= 1, "the hot atom never promoted");
        assert!(
            rep.replica_routed > 0,
            "no sub-query was diverted to a replica"
        );
        assert!(
            rep.replicas.iter().any(|e| e.morton == 0),
            "the hot atom is missing from the replica table: {:?}",
            rep.replicas
        );
        // The replica host actually absorbed diverted work.
        let helpers: u64 = r.nodes[1..].iter().map(|n| n.parts_completed).sum();
        assert!(helpers > 0, "every part still ran on the static owner");
        assert!(
            r.imbalance() < static_run.imbalance(),
            "replication did not reduce imbalance: {:.3} vs static {:.3}",
            r.imbalance(),
            static_run.imbalance()
        );
    }

    #[test]
    fn crashed_node_drops_its_replicas_and_the_trace_drains() {
        // Same skew, co-designed with the failure layer: promote a replica,
        // find its host from the healthy report, then crash that host
        // mid-run. The directory must drop the dead node's replicas (routing
        // falls back to the slab owner) while slab re-chaining drains the
        // trace exactly as in the replication-free crash scenario.
        let trace = hot_atom_trace();
        let mut cfg = cluster_cfg(4, SchedulerKind::Jaws2 { batch_k: 8 });
        cfg.replication = ReplicationConfig::on();
        let healthy = ClusterExecutor::new(cfg.clone()).run(&trace);
        let rep = healthy.replication.as_ref().expect("replication summary");
        let host = rep.replicas.first().expect("a replica promoted").nodes[0];
        assert_ne!(host, 0, "a replica must never land on the owner");
        let survivor = if host == 3 { 2 } else { 3 };
        cfg.failures = FailurePlan::new(17).crash_with_survivor(
            0.5 * healthy.aggregate.makespan_ms,
            host,
            survivor,
        );
        let r = ClusterExecutor::new(cfg).run(&trace);
        assert_eq!(
            r.aggregate.queries_completed,
            trace.query_count() as u64,
            "replica host crash left queries behind"
        );
        assert!(!r.aggregate.truncated);
        assert!(r.nodes[host as usize].failed);
        let rep = r.replication.as_ref().expect("replication summary");
        assert!(
            rep.crash_drops >= 1,
            "the crashed host's replicas were never dropped"
        );
        assert!(
            rep.replicas.iter().all(|e| !e.nodes.contains(&host)),
            "a dead node is still in the replica table: {:?}",
            rep.replicas
        );
    }

    #[test]
    fn imbalance_is_computed_over_busy_time_not_utilization() {
        // Regression: `imbalance()` documented max/mean *busy time* but
        // divided `utilization` values. Equivalent only while every node's
        // utilization shares one makespan divisor; a report whose
        // utilizations are stale or heterogeneous silently degraded to the
        // mean-zero guard. Pre-fix this returned 1.0; the busy-ms ratio is
        // 3000/2000 = 1.5.
        let trace = jaws_workload::Trace::new(8, 4, vec![]);
        let mut r = ClusterExecutor::new(cluster_cfg(2, SchedulerKind::NoShare)).run(&trace);
        for n in &mut r.nodes {
            n.utilization = 0.0;
        }
        r.nodes[0].busy_ms = 3000.0;
        r.nodes[1].busy_ms = 1000.0;
        assert!(
            (r.imbalance() - 1.5).abs() < 1e-12,
            "imbalance must ratio busy time, got {}",
            r.imbalance()
        );
    }

    #[test]
    fn straggler_slowdown_stretches_the_replay() {
        let trace = TraceGenerator::new(GenConfig::small(55))
            .generate()
            .speedup(20.0);
        let mut cfg = cluster_cfg(2, SchedulerKind::LifeRaft2);
        let healthy = ClusterExecutor::new(cfg.clone()).run(&trace);
        cfg.failures = FailurePlan::new(5).slowdown_at(0.0, 0, 8.0);
        let r = ClusterExecutor::new(cfg).run(&trace);
        assert_eq!(r.aggregate.queries_completed, trace.query_count() as u64);
        assert!(
            r.aggregate.makespan_ms > healthy.aggregate.makespan_ms,
            "8x straggler did not stretch the makespan ({:.0} vs {:.0})",
            r.aggregate.makespan_ms,
            healthy.aggregate.makespan_ms
        );
        assert_eq!(r.nodes[0].slowdown.to_bits(), 8.0f64.to_bits());
        assert!(!r.nodes[0].failed);
        let d = r.degraded.expect("degraded section");
        assert!(d.failed_nodes.is_empty());
        assert_eq!(d.slowed_nodes.len(), 1);
        assert_eq!(d.slowed_nodes[0].0, 0);
        assert_eq!(d.slowed_nodes[0].1.to_bits(), 8.0f64.to_bits());
    }

    proptest! {
        /// Ceil-sized Morton slabs partition the grid for *any* node count,
        /// including ones that do not divide the atoms per timestep: every
        /// key maps to a valid node, slab assignment is monotone (contiguous
        /// slabs), and every node below the clamp point owns exactly
        /// ⌈per_ts/nodes⌉ keys.
        #[test]
        fn uneven_node_counts_partition_the_grid(nodes in 1u32..=16) {
            let ex = ClusterExecutor::new(cluster_cfg(nodes, SchedulerKind::NoShare));
            let per_ts = 64u64; // 32³ grid of 8³ atoms = 4³ atoms/ts
            let slab = per_ts.div_ceil(nodes as u64);
            let mut prev = 0u32;
            let mut counts = vec![0u64; nodes as usize];
            for m in 0..per_ts {
                let n = ex.node_of(MortonKey(m));
                prop_assert!(n < nodes, "key {m} routed to node {n} of {nodes}");
                prop_assert!(n >= prev, "slab assignment must be monotone in Morton order");
                prev = n;
                counts[n as usize] += 1;
            }
            for (i, &c) in counts.iter().enumerate() {
                if (i as u64) < per_ts.div_ceil(slab) - 1 {
                    prop_assert_eq!(c, slab, "node {} owns a full slab", i);
                }
            }
            prop_assert_eq!(counts.iter().sum::<u64>(), per_ts);
        }

        /// `(query, node)` round-trips through part-id packing over the full
        /// supported range of both fields.
        #[test]
        fn part_id_packing_round_trips(
            query in 0u64..=engine::PART_QUERY_MASK,
            node in 0u32..=engine::MAX_NODE_INDEX,
        ) {
            let pid = engine::part_id(query, node);
            prop_assert_eq!(engine::orig_id(pid), query);
            prop_assert_eq!(engine::part_node(pid), node);
            prop_assert!(pid > engine::PART_QUERY_MASK,
                "part ids must never collide with raw trace query ids");
        }
    }
}
