//! Discrete-event execution engine for JAWS experiments.
//!
//! The paper measures wall-clock performance of a SQL Server deployment; we
//! measure simulated time on an explicit cost model (T_b per atom transfer,
//! a seek charge for non-sequential reads, T_m per position — the same
//! constants Eq. 1 is written in). The engine replays a trace:
//!
//! * jobs arrive at their trace arrival times;
//! * batched jobs submit all queries immediately, ordered jobs submit query
//!   `i+1` one think-time after query `i` completes (the paper's users
//!   "collect results from a time step, calculate new positions outside the
//!   database, and then submit a new query");
//! * each execution pipeline (one cluster node) repeatedly asks its
//!   scheduler for the next batch, charges its I/O + compute cost, and
//!   advances the clock;
//! * cache residency feeds φ back into Eq. 1, and the scheduler's workload
//!   knowledge feeds the URC cache policy, closing both coordination loops of
//!   §V-B.
//!
//! One discrete-event core ([`engine`]) drives both deployment shapes:
//! [`Executor`] is its single-node instantiation and [`ClusterExecutor`] its
//! N-node Morton-slab instantiation (§V-C) — same event loop, same client
//! model, same [`SimConfig`] knobs (prefetching, `max_sim_ms` truncation,
//! idle re-check). Per-node state lives in [`node::NodePipeline`].
//!
//! [`sweep`] runs many configurations in parallel threads for the saturation
//! and batch-size sweeps of Figs. 11–12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod executor;
pub mod failure;
pub mod node;
pub mod replication;
pub mod report;
pub mod setup;
pub mod sweep;

pub use cluster::{ClusterConfig, ClusterExecutor, ClusterReport, DegradedReport, NodeReport};
pub use engine::{queue_ops, reset_queue_ops, Routing};
pub use executor::{Executor, SimConfig};
pub use failure::{FailureEvent, FailurePlan};
pub use node::NodePipeline;
pub use replication::{ReplicaEntry, ReplicationConfig, ReplicationSummary};
pub use report::{Percentiles, RunReport};
pub use setup::{build_db, build_policy, build_scheduler, CachePolicyKind, SchedulerKind};
pub use sweep::run_parallel;
