//! The shared discrete-event core behind [`crate::Executor`] and
//! [`crate::ClusterExecutor`].
//!
//! Both public executors used to carry their own event heap, arrival pacing,
//! ordered-job think-time chains and completion bookkeeping — and had drifted
//! (the cluster path lacked prefetching, `max_sim_ms` truncation and the idle
//! re-check). This module owns all of it exactly once:
//!
//! * [`Routing`] decides how a submitted query reaches the node pipelines —
//!   the identity route of a single node, or the Morton-slab fan-out of the
//!   §V-C cluster with packed per-node part ids;
//! * `LiveRouting` (crate-internal) overlays the static route with node
//!   liveness: a scripted
//!   crash ([`crate::FailurePlan`]) marks a node dead and re-routes its slab
//!   to a survivor (clamped, chained across repeated failures);
//! * `run_trace` (crate-internal) is the one client model: it replays job
//!   arrivals, paces batched queries, drives ordered think-time chains,
//!   enforces the cross-node completion barrier (outstanding-part counts),
//!   charges batch service times, spends idle capacity on trajectory
//!   prefetches, injects scripted node failures (crash re-dispatch, straggler
//!   slowdowns), and truncates at the simulated-time cap — against N ≥ 1
//!   [`NodePipeline`]s.
//!
//! The engine owns the clock: pipelines never see time except through the
//! `now_ms` arguments the engine passes in. All engine-side state is kept in
//! `BTreeMap`s so iteration order can never leak hash randomness into
//! scheduling decisions (lint rule D001 needs no carve-outs here).
//!
//! ## Failure semantics
//!
//! A crash at time `T` is one deterministic transaction inside the event
//! loop: the node is marked dead, every later event addressed to it (stale
//! `BatchDone`, `PrefetchDone`, `IdleCheck`) is dropped on pop, its slab
//! redirects to the survivor, and every part it held — queued in its
//! scheduler *or* in its in-flight batch — is re-enqueued through the
//! survivor's scheduler under its original packed part id (so the
//! completion barrier and the response log stay keyed by trace query ids).
//! Re-dispatched and newly-routed work is first *declared* to the survivor
//! as a remnant job projection so job-aware gating knows the incoming ids;
//! the work then competes in the survivor's utility ranking like any other
//! arrival — recovery never jumps the queue.

use crate::failure::{FailureEvent, FailurePlan};
use crate::node::NodePipeline;
use crate::replication::{ReplicaAction, ReplicaDirectory, ReplicationConfig, ReplicationSummary};
use crate::report::RunTotals;
use crate::SimConfig;
use jaws_arena::Lanes;
use jaws_morton::MortonKey;
use jaws_obs::{ObsSink, VecRecorder};
use jaws_workload::{Footprint, Job, JobKind, Query, QueryId, Trace};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// Bits of a packed part id that carry the original query id. The remaining
/// high bits hold `node + 1`, so part ids from different nodes never collide
/// with each other or with raw trace query ids.
pub const PART_QUERY_BITS: u32 = 48;

/// Mask selecting the original-query-id bits of a packed part id.
pub const PART_QUERY_MASK: u64 = (1 << PART_QUERY_BITS) - 1;

/// Highest node index a part id can encode: `node + 1` must fit in the
/// `64 − PART_QUERY_BITS` tag bits.
pub const MAX_NODE_INDEX: u32 = (1 << (64 - PART_QUERY_BITS)) - 2;

/// Packs a node index into the high bits of a part id.
pub fn part_id(query: QueryId, node: u32) -> QueryId {
    debug_assert!(
        query <= PART_QUERY_MASK,
        "query id {query} exceeds the {PART_QUERY_BITS}-bit part budget"
    );
    debug_assert!(
        node <= MAX_NODE_INDEX,
        "node {node} exceeds the packed-field maximum {MAX_NODE_INDEX}"
    );
    ((node as u64 + 1) << PART_QUERY_BITS) | query
}

/// Recovers the original query id from a part id.
pub fn orig_id(part: QueryId) -> QueryId {
    part & PART_QUERY_MASK
}

/// Recovers the node index from a part id.
pub fn part_node(part: QueryId) -> u32 {
    ((part >> PART_QUERY_BITS) - 1) as u32
}

/// Remnant job declarations (crash re-dispatch) tag the synthetic job id with
/// the 1-based crash ordinal in these high bits, so a job whose parts are
/// re-dispatched by several successive crashes gets a distinct declaration id
/// each time and never collides with trace job ids.
const REMNANT_JOB_BITS: u32 = 48;

/// Just-in-time replica declarations (a diverted part arriving at a node the
/// job was never projected onto) use synthetic single-query job ids in their
/// own namespace: the top bit set over a run-monotone ordinal. Remnant ids
/// tag crash ordinals into bits 48.. and crash counts are bounded by the node
/// count (far below 2¹⁵), so the namespaces never collide.
const REPLICA_DECL_BIT: u64 = 1 << 63;

/// How submitted queries reach the node pipelines.
#[derive(Debug, Clone, Copy)]
pub enum Routing {
    /// One pipeline; queries are delivered whole, under their trace ids.
    Single,
    /// The §V-C cluster: the atom grid is split into contiguous Morton slabs
    /// of `slab_size` atoms, one per node; each query fans out into per-node
    /// part queries (packed ids) and completes only when every part has.
    MortonSlabs {
        /// Atoms per node slab (`ceil(atoms-per-timestep / nodes)`). When the
        /// node count does not divide the atoms per timestep, every node but
        /// the last owns a full slab and the last owns the short remainder.
        slab_size: u64,
        /// Number of nodes; keys past the last full slab are clamped onto the
        /// final node so the short remainder slab is still owned.
        nodes: u32,
    },
    /// Morton slabs plus a dynamic hot-atom replica overlay: static slab
    /// ownership exactly as in [`Routing::MortonSlabs`], but the engine
    /// maintains a per-key access histogram and routes each footprint atom to
    /// the least-loaded live replica, falling back to the owner
    /// ([`crate::replication`]).
    Replicated {
        /// Atoms per node slab, as in [`Routing::MortonSlabs`].
        slab_size: u64,
        /// Number of nodes, as in [`Routing::MortonSlabs`].
        nodes: u32,
        /// Histogram window and hysteresis thresholds of the overlay.
        replication: ReplicationConfig,
    },
}

impl Routing {
    /// The node owning a Morton key under the *static* partition (no failure
    /// redirects applied — the engine's `LiveRouting` overlay holds its
    /// own failure-aware view).
    pub fn node_of(&self, m: MortonKey) -> u32 {
        match self {
            Routing::Single => 0,
            Routing::MortonSlabs { slab_size, nodes }
            | Routing::Replicated {
                slab_size, nodes, ..
            } => ((m.raw() / slab_size) as u32).min(nodes - 1),
        }
    }

    /// Maps a completed part id back to the trace query id.
    pub fn original_id(&self, part: QueryId) -> QueryId {
        match self {
            Routing::Single => part,
            Routing::MortonSlabs { .. } | Routing::Replicated { .. } => orig_id(part),
        }
    }
}

/// The engine's routing view: the static [`Routing`] plus node liveness. A
/// crash redirects the dead node's slab onto its survivor (and compresses any
/// chain of earlier redirects that pointed at the dead node), so `node_of`
/// always answers with a live node.
struct LiveRouting<'r> {
    base: &'r Routing,
    /// Per static owner: the live node currently responsible for its slab.
    redirect: Vec<u32>,
    /// Per node: false once a scripted crash killed it.
    alive: Vec<bool>,
}

impl<'r> LiveRouting<'r> {
    fn new(base: &'r Routing, nodes: usize) -> Self {
        LiveRouting {
            base,
            redirect: (0..nodes as u32).collect(),
            alive: vec![true; nodes],
        }
    }

    /// The live node owning a Morton key.
    fn node_of(&self, m: MortonKey) -> u32 {
        self.redirect[self.base.node_of(m) as usize]
    }

    /// Kills `node`, redirecting every slab it was responsible for onto the
    /// survivor. `designated` names the survivor; `None` (or a designated
    /// node that is itself dead / the crashing node after chain resolution)
    /// falls back to the lowest-indexed live node. Returns the survivor.
    ///
    /// # Panics
    ///
    /// Panics if no node would remain alive (validated up front by
    /// [`FailurePlan::validate`], re-checked here as an invariant).
    fn crash(&mut self, node: u32, designated: Option<u32>) -> u32 {
        self.alive[node as usize] = false;
        let fallback = || {
            self.alive
                .iter()
                .position(|&a| a)
                // lint: invariant — FailurePlan::validate rejects plans that
                // crash every node, so a live node always remains
                .expect("a crash must leave at least one node alive") as u32
        };
        let surv = match designated {
            Some(s) => {
                let resolved = self.redirect[s as usize];
                if self.alive[resolved as usize] {
                    resolved
                } else {
                    fallback()
                }
            }
            None => fallback(),
        };
        for r in &mut self.redirect {
            if *r == node {
                *r = surv;
            }
        }
        surv
    }

    /// Projects a job onto one node for declaration: each query keeps only
    /// the footprint atoms the node owns (under its part id); queries with
    /// empty projections are dropped, preserving order. `None` when the node
    /// owns nothing of the job. The single route borrows the job whole.
    fn project_job<'j>(&self, job: &'j Job, node: u32) -> Option<Cow<'j, Job>> {
        match self.base {
            Routing::Single => Some(Cow::Borrowed(job)),
            Routing::MortonSlabs { .. } | Routing::Replicated { .. } => {
                let queries: Vec<Query> = job
                    .queries
                    .iter()
                    .filter_map(|q| {
                        let atoms: Vec<(MortonKey, u32)> = q
                            .footprint
                            .atoms
                            .iter()
                            .copied()
                            .filter(|&(m, _)| self.node_of(m) == node)
                            .collect();
                        if atoms.is_empty() {
                            return None;
                        }
                        Some(Query {
                            id: part_id(q.id, node),
                            user: q.user,
                            op: q.op,
                            timestep: q.timestep,
                            footprint: Footprint::from_pairs(atoms),
                        })
                    })
                    .collect();
                if queries.is_empty() {
                    return None;
                }
                Some(Cow::Owned(Job {
                    id: job.id,
                    user: job.user,
                    kind: job.kind,
                    campaign: job.campaign,
                    queries,
                    arrival_ms: job.arrival_ms,
                    think_ms: job.think_ms,
                }))
            }
        }
    }
}

/// Typed engine events.
#[derive(Debug)]
enum Event {
    /// A trace job reached its arrival time.
    JobArrival(usize),
    /// Query `(job index, query index)` is submitted by the client model.
    QuerySubmit(usize, usize),
    /// A node finished a batch: (node, completed part ids).
    BatchDone(u32, Vec<QueryId>),
    /// A node's speculative read finished.
    PrefetchDone(u32),
    /// A node's idle re-poll fired (starvation-valve wake-up).
    IdleCheck(u32),
    /// Scripted failure event `i` of the run's [`FailurePlan`] fired.
    Failure(usize),
}

/// Cumulative push count of every [`EventQueue`] in the process. Updated only
/// from the (serial) engine event loop; read by the bench bins so event-queue
/// traffic is a measured quantity. Never feeds a scheduling decision.
static EV_PUSHES: AtomicU64 = AtomicU64::new(0);

/// Cumulative pop count, mirroring [`EV_PUSHES`].
static EV_POPS: AtomicU64 = AtomicU64::new(0);

/// Process-wide event-queue operation counters (pushes, pops) since start or
/// the last [`reset_queue_ops`]. Observability for the bench bins only — the
/// counts are themselves deterministic (the replay pushes and pops the exact
/// same event sequence at any thread count), so they may appear unmasked in
/// bench reports.
pub fn queue_ops() -> (u64, u64) {
    (
        EV_PUSHES.load(AtomicOrdering::Relaxed),
        EV_POPS.load(AtomicOrdering::Relaxed),
    )
}

/// Resets the process-wide event-queue counters to zero.
pub fn reset_queue_ops() {
    EV_PUSHES.store(0, AtomicOrdering::Relaxed);
    EV_POPS.store(0, AtomicOrdering::Relaxed);
}

/// One-millisecond buckets in the calendar ring. Events scheduled further
/// ahead of the cursor than this wait in the sorted overflow map and migrate
/// into the ring as the window slides over them.
const RING_BUCKETS: u64 = 4096;

/// A pending event stored inline in its bucket: `(time, insertion id,
/// payload)`. Insertion ids break time ties first-pushed-first-popped.
type Slot = (f64, u64, Event);

/// The event queue: a calendar queue of integer-millisecond buckets over
/// simulated time. The ring covers the next [`RING_BUCKETS`] ms from the pop
/// cursor; pops select the intra-bucket minimum under the same
/// `(f64::total_cmp, insertion id)` total order the former binary heap used,
/// so the replay's event sequence is bit-for-bit unchanged — but pushes and
/// pops are O(bucket occupancy) with no per-event sift or payload-map
/// round-trip, and drained bucket `Vec`s keep their capacity as the ring
/// wraps, so a warmed-up queue allocates nothing in steady state.
struct EventQueue {
    /// `RING_BUCKETS` buckets; slot `b % RING_BUCKETS` holds exactly the
    /// events of absolute bucket `b` for `b` in `[cursor, cursor + RING)`.
    ring: Vec<Vec<Slot>>,
    /// Far-future events, keyed by absolute bucket index (all `>= cursor +
    /// RING_BUCKETS`).
    overflow: BTreeMap<u64, Vec<Slot>>,
    /// Lowest absolute bucket index that may still hold events.
    cursor: u64,
    /// Events currently in `ring`.
    ring_len: usize,
    /// Total pending events (ring + overflow).
    len: usize,
    next_event: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: BTreeMap::new(),
            cursor: 0,
            ring_len: 0,
            len: 0,
            next_event: 0,
        }
    }
}

impl EventQueue {
    // lint: hotpath
    fn push(&mut self, at_ms: f64, ev: Event) {
        let id = self.next_event;
        self.next_event += 1;
        // Event times are finite and non-negative (now_ms plus a non-negative
        // delay), so `as u64` is floor(). The clamp keeps a (never observed)
        // sub-cursor time poppable — it lands in the current bucket, where
        // min-selection orders it first.
        let bucket = (at_ms as u64).max(self.cursor);
        if bucket - self.cursor < RING_BUCKETS {
            self.ring[(bucket % RING_BUCKETS) as usize].push((at_ms, id, ev));
            self.ring_len += 1;
        } else {
            self.overflow
                .entry(bucket)
                .or_default()
                .push((at_ms, id, ev));
        }
        self.len += 1;
        EV_PUSHES.fetch_add(1, AtomicOrdering::Relaxed);
    }

    // lint: hotpath
    fn pop(&mut self) -> Option<(f64, Event)> {
        if self.len == 0 {
            return None;
        }
        if self.ring_len == 0 {
            // Everything pending is far-future: jump the window instead of
            // walking empty buckets.
            // lint: invariant — len > 0 with an empty ring means overflow is
            // non-empty
            let (&first, _) = self
                .overflow
                .first_key_value()
                .expect("pending events live in ring or overflow");
            self.cursor = first;
            self.migrate_window();
        }
        loop {
            let slot = (self.cursor % RING_BUCKETS) as usize;
            if !self.ring[slot].is_empty() {
                let bucket = &mut self.ring[slot];
                let mut best = 0;
                for i in 1..bucket.len() {
                    let ord = bucket[i]
                        .0
                        .total_cmp(&bucket[best].0)
                        .then(bucket[i].1.cmp(&bucket[best].1));
                    if ord == std::cmp::Ordering::Less {
                        best = i;
                    }
                }
                let (at, _, ev) = bucket.swap_remove(best);
                self.ring_len -= 1;
                self.len -= 1;
                EV_POPS.fetch_add(1, AtomicOrdering::Relaxed);
                return Some((at, ev));
            }
            self.cursor += 1;
            // The window slid by one: the newly covered far bucket (if any)
            // enters the ring at the slot just vacated.
            if let Some(mut evs) = self.overflow.remove(&(self.cursor + RING_BUCKETS - 1)) {
                self.ring_len += evs.len();
                let far = ((self.cursor + RING_BUCKETS - 1) % RING_BUCKETS) as usize;
                self.ring[far].append(&mut evs);
            }
        }
    }

    /// Moves every overflow bucket now inside `[cursor, cursor + RING)` into
    /// the ring. Called after a cursor jump.
    fn migrate_window(&mut self) {
        while let Some((&k, _)) = self.overflow.first_key_value() {
            if k >= self.cursor + RING_BUCKETS {
                break;
            }
            // lint: invariant — first_key_value just returned this key
            let mut evs = self.overflow.remove(&k).expect("first overflow bucket");
            self.ring_len += evs.len();
            let slot = (k % RING_BUCKETS) as usize;
            self.ring[slot].append(&mut evs);
        }
    }
}

/// Per-node observability buffers, active only while a traced multi-node run
/// is in flight. Pipelines may step on `jaws-par` worker threads, so letting
/// them write the shared recorder directly would make trace order depend on
/// thread interleaving. Instead each pipeline is rewired to a private
/// [`VecRecorder`]; the engine drains the buffers — in node order, at the
/// exact points where the serial engine would have called into each pipeline
/// — through [`ObsSink::forward`], which re-records verbatim. The resulting
/// JSONL is byte-identical to a serial run at any thread count (jaws-obs
/// module docs, invariant 3).
struct TraceBuffers<'a> {
    bufs: Vec<Arc<Mutex<VecRecorder>>>,
    out: &'a ObsSink,
}

impl TraceBuffers<'_> {
    /// Forwards everything `node` buffered since the last drain.
    fn drain(&self, node: usize) {
        // lint: invariant — a poisoned buffer lock means a worker already
        // panicked, and that panic is re-raised by jaws_par::map_mut
        let mut buf = self.bufs[node].lock().expect("trace buffer lock");
        for r in buf.take() {
            self.out.forward(&r);
        }
    }

    /// Drains every node's buffer in ascending node order.
    fn drain_all(&self) {
        for node in 0..self.bufs.len() {
            self.drain(node);
        }
    }
}

/// Installs per-node trace buffers when a traced run has more than one
/// pipeline (the only case where pipelines may emit from worker threads).
fn buffer_node_sinks<'a>(
    pipelines: &mut [NodePipeline],
    sink: &'a ObsSink,
) -> Option<TraceBuffers<'a>> {
    if pipelines.len() < 2 || !sink.enabled() {
        return None;
    }
    let bufs: Vec<Arc<Mutex<VecRecorder>>> = pipelines
        .iter_mut()
        .enumerate()
        .map(|(node, p)| {
            let buf = Arc::new(Mutex::new(VecRecorder::new()));
            p.set_recorder(ObsSink::new(buf.clone()).with_node(node as u32));
            buf
        })
        .collect();
    Some(TraceBuffers { bufs, out: sink })
}

/// Per-node failure outcome of one run, consumed by the cluster report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeStatus {
    /// True once a scripted crash killed the node.
    pub failed: bool,
    /// Parts re-dispatched *off* this node when it crashed (in-flight plus
    /// queued at crash time).
    pub redispatched_parts: u64,
    /// Service-time multiplier in force at the end of the run (1.0 = never
    /// degraded).
    pub slowdown: f64,
}

impl Default for NodeStatus {
    fn default() -> Self {
        NodeStatus {
            failed: false,
            redispatched_parts: 0,
            slowdown: 1.0,
        }
    }
}

/// Everything a run produced that the report layer needs, plus the per-query
/// completion log in completion order.
pub(crate) struct EngineOutcome {
    /// Totals feeding [`crate::report`] assembly.
    pub totals: RunTotals,
    /// `(trace query id, response ms)` in completion order.
    pub response_log: Vec<(QueryId, f64)>,
    /// Per-node failure outcomes (all-default when the plan was empty).
    pub node_status: Vec<NodeStatus>,
    /// Time of the first scripted failure that actually fired, if any.
    pub first_failure_ms: Option<f64>,
    /// Replica-overlay summary; `None` unless [`Routing::Replicated`] with
    /// replication enabled was in force.
    pub replication: Option<ReplicationSummary>,
}

/// Bookkeeping that exists only while a non-empty [`FailurePlan`] is in
/// force; a plain replay allocates none of it and takes the exact pre-failure
/// code paths.
struct FailureState {
    /// Per node: part ids submitted to it and not yet completed (in-flight
    /// batch parts included — their `BatchDone` hasn't fired yet).
    pending: Vec<BTreeSet<QueryId>>,
    /// Every outstanding part as submitted (footprint included), so a crash
    /// can re-enqueue it verbatim through the survivor.
    defs: BTreeMap<QueryId, Query>,
    /// Per node: part ids its scheduler has been told about via a job
    /// declaration (arrival projections and crash remnants).
    declared: Vec<BTreeSet<QueryId>>,
    /// Per trace job: whether its arrival event has fired.
    arrived: Vec<bool>,
    /// Crashes handled so far (1-based ordinal tags remnant job ids).
    crashes: u64,
}

/// Bookkeeping that exists only under an enabled [`Routing::Replicated`]
/// overlay; static-slab and single-node replays allocate none of it and take
/// the exact pre-replication code paths.
struct ReplicationState {
    /// Histogram, replica table and transition counters.
    dir: ReplicaDirectory,
    /// Per node: part ids its scheduler has been told about — arrival
    /// projections, crash remnants, and just-in-time replica declarations.
    /// Kept in lockstep with `FailureState::declared` when both layers are
    /// active, so either layer's membership test answers for both.
    declared: Vec<BTreeSet<QueryId>>,
    /// Per node: parts submitted and not yet completed — the integer load
    /// signal that replica placement and routing minimize over.
    node_load: Vec<u64>,
    /// Monotone ordinal for just-in-time declaration job ids.
    decls: u64,
}

/// Reusable per-submit scratch for the engine's fan-out path. One query's
/// footprint is scattered into per-node lanes, built into part queries, and
/// the lane buffers are recovered after delivery — so a warmed-up submit
/// allocates nothing on the static-slab route and only the per-part `Query`
/// clones demanded by declarations on the replicated route.
struct EngineScratch {
    /// Per-node `(morton, count)` buckets for the footprint scatter.
    lanes: Lanes<(MortonKey, u32)>,
    /// Replicated route: which nodes statically own atoms of the current
    /// query (withdrawal bookkeeping). Reset per submit.
    owner_flag: Vec<bool>,
    /// Replicated route: replica promote/demote/route transitions of the
    /// current query. Cleared per submit.
    actions: Vec<ReplicaAction>,
    /// Replicated route: built parts awaiting delivery — the trace event
    /// order requires every just-in-time declaration to precede the first
    /// delivery, so parts are staged here between the two passes.
    parts: Vec<(u32, Query)>,
}

impl EngineScratch {
    fn new(nodes: usize) -> Self {
        EngineScratch {
            lanes: Lanes::new(nodes),
            owner_flag: vec![false; nodes],
            actions: Vec::new(),
            parts: Vec::new(),
        }
    }
}

/// Hands one part query to its owning pipeline: emits the routing record,
/// registers failure-plan bookkeeping, feeds the trajectory predictor (for
/// ordered follow-ups) and makes the part available to the node's scheduler.
#[allow(clippy::too_many_arguments)]
fn deliver_part(
    node: u32,
    part: &Query,
    query: QueryId,
    observe: bool,
    job_id: u64,
    now_ms: f64,
    fstate: &mut Option<FailureState>,
    pipelines: &mut [NodePipeline],
    sink: &ObsSink,
    buffers: &Option<TraceBuffers<'_>>,
) {
    if sink.enabled() {
        sink.emit(
            now_ms,
            jaws_obs::Event::PartRouted {
                query,
                part: part.id,
                node,
                atoms: part.footprint.atoms.len() as u32,
            },
        );
    }
    if let Some(fs) = fstate {
        fs.pending[node as usize].insert(part.id);
        fs.defs.insert(part.id, part.clone());
    }
    let p = &mut pipelines[node as usize];
    if observe {
        p.observe(job_id, part);
    }
    p.query_available(part, now_ms);
    if let Some(b) = buffers {
        b.drain(node as usize);
    }
}

/// Replays `trace` against `pipelines` under `routing` until the trace drains
/// or the simulated-time cap fires.
///
/// `declare_on_arrival` controls whether each trace job is declared to the
/// schedulers at its arrival (the normal path); the single-node executor
/// passes `false` after an up-front ground-truth declaration override
/// ([`crate::Executor::declare_jobs`]).
///
/// `failures` scripts node crashes and slowdowns; it must be empty on the
/// single route (there is no survivor to re-dispatch to).
///
/// `sink` receives the engine-level lifecycle events (job arrival, query
/// submission, part routing, completion, failures, end-of-run counters);
/// per-node events are emitted by the pipelines through their own
/// (node-tagged) sinks.
pub(crate) fn run_trace(
    pipelines: &mut [NodePipeline],
    routing: &Routing,
    cfg: &SimConfig,
    trace: &Trace,
    declare_on_arrival: bool,
    failures: &FailurePlan,
    sink: &ObsSink,
) -> EngineOutcome {
    assert!(
        failures.is_empty()
            || matches!(
                routing,
                Routing::MortonSlabs { .. } | Routing::Replicated { .. }
            ),
        "failure plans require the cluster route (a single node has no survivor)"
    );
    // Query → (job index, query index) for completion routing.
    let mut locate: BTreeMap<QueryId, (usize, usize)> = BTreeMap::new();
    for (ji, job) in trace.jobs.iter().enumerate() {
        for (qi, q) in job.queries.iter().enumerate() {
            locate.insert(q.id, (ji, qi));
        }
    }
    let total_queries: usize = trace.query_count();
    let mut submit_ms: BTreeMap<QueryId, f64> = BTreeMap::new();
    // Per-query completion barrier: outstanding part count (always 1 on the
    // single route; one per owning node under Morton slabs).
    let mut outstanding: BTreeMap<QueryId, u32> = BTreeMap::new();
    let mut responses: Vec<f64> = Vec::with_capacity(total_queries);
    let mut response_log: Vec<(QueryId, f64)> = Vec::new();
    let mut jobs_completed = 0u64;
    let mut remaining_per_job: Vec<usize> = trace.jobs.iter().map(|j| j.queries.len()).collect();
    let first_arrival = trace.jobs.first().map_or(0.0, |j| j.arrival_ms);
    let mut last_completion = first_arrival;
    let mut truncated = false;
    let mut now_ms = 0.0f64;
    let mut queue = EventQueue::default();
    let mut live = LiveRouting::new(routing, pipelines.len());
    let mut node_status: Vec<NodeStatus> = vec![NodeStatus::default(); pipelines.len()];
    let mut first_failure_ms: Option<f64> = None;
    // Failure bookkeeping is allocated only when a plan is in force, so the
    // plain replay pays nothing and stays byte-identical to its pre-failure
    // behavior (event ids included: the plan pushes no events when empty).
    let mut fstate: Option<FailureState> = (!failures.is_empty()).then(|| FailureState {
        pending: vec![BTreeSet::new(); pipelines.len()],
        defs: BTreeMap::new(),
        declared: vec![BTreeSet::new(); pipelines.len()],
        arrived: vec![false; trace.jobs.len()],
        crashes: 0,
    });
    // Replication bookkeeping follows the same only-pay-when-active rule.
    let mut rstate: Option<ReplicationState> = match routing {
        Routing::Replicated { replication, .. } if replication.enabled => Some(ReplicationState {
            dir: ReplicaDirectory::new(*replication),
            declared: vec![BTreeSet::new(); pipelines.len()],
            node_load: vec![0; pipelines.len()],
            decls: 0,
        }),
        _ => None,
    };
    // Traced multi-node runs: buffer per-node emissions so worker threads
    // never interleave on the shared recorder (see [`TraceBuffers`]).
    let buffers = buffer_node_sinks(pipelines, sink);
    // Reusable fan-out and dispatch scratch: allocated once per run, cleared
    // per event — the per-event hot path allocates nothing after warm-up.
    let mut scratch = EngineScratch::new(pipelines.len());
    let mut plans: Vec<DispatchPlan> = Vec::with_capacity(pipelines.len());

    // Submits query (ji, qi): records the submission time, fans the query
    // out to its owning pipelines, and (for ordered follow-ups) feeds the
    // trajectory predictors. The fan-out scatters into the reusable scratch
    // lanes and recovers each part's footprint buffer after delivery, so a
    // warmed-up submit performs no allocation on the static routes.
    let submit = |ji: usize,
                  qi: usize,
                  observe: bool,
                  now_ms: f64,
                  live: &LiveRouting,
                  submit_ms: &mut BTreeMap<QueryId, f64>,
                  outstanding: &mut BTreeMap<QueryId, u32>,
                  fstate: &mut Option<FailureState>,
                  rstate: &mut Option<ReplicationState>,
                  pipelines: &mut [NodePipeline],
                  scratch: &mut EngineScratch| {
        let job = &trace.jobs[ji];
        let q = &job.queries[qi];
        submit_ms.insert(q.id, now_ms);
        if sink.enabled() {
            sink.emit(
                now_ms,
                jaws_obs::Event::QuerySubmit {
                    query: q.id,
                    job: job.id,
                    timestep: q.timestep,
                    atoms: q.footprint.atoms.len() as u32,
                    positions: q.positions(),
                },
            );
        }
        match rstate {
            Some(rs) => {
                replicated_fan_out(
                    rs,
                    fstate,
                    q,
                    job,
                    observe,
                    now_ms,
                    live,
                    pipelines,
                    sink,
                    &buffers,
                    scratch,
                    outstanding,
                );
            }
            None => match live.base {
                Routing::Single => {
                    // The single route delivers the query itself, unchanged.
                    outstanding.insert(q.id, 1);
                    deliver_part(
                        0, q, q.id, observe, job.id, now_ms, fstate, pipelines, sink, &buffers,
                    );
                }
                Routing::MortonSlabs { .. } | Routing::Replicated { .. } => {
                    for &(m, c) in &q.footprint.atoms {
                        scratch.lanes.push(live.node_of(m) as usize, (m, c));
                    }
                    let parts = (0..scratch.lanes.len())
                        .filter(|&n| scratch.lanes.lane_len(n) > 0)
                        .count();
                    outstanding.insert(q.id, parts as u32);
                    for node in 0..scratch.lanes.len() {
                        if scratch.lanes.lane_len(node) == 0 {
                            continue;
                        }
                        let atoms = scratch.lanes.take_lane(node);
                        let mut part = Query {
                            id: part_id(q.id, node as u32),
                            user: q.user,
                            op: q.op,
                            timestep: q.timestep,
                            footprint: Footprint::from_pairs_in_place(atoms),
                        };
                        deliver_part(
                            node as u32,
                            &part,
                            q.id,
                            observe,
                            job.id,
                            now_ms,
                            fstate,
                            pipelines,
                            sink,
                            &buffers,
                        );
                        scratch
                            .lanes
                            .restore(node, std::mem::take(&mut part.footprint.atoms));
                    }
                }
            },
        }
    };

    for (ji, job) in trace.jobs.iter().enumerate() {
        queue.push(job.arrival_ms, Event::JobArrival(ji));
    }
    for (i, ev) in failures.events().iter().enumerate() {
        queue.push(ev.at_ms(), Event::Failure(i));
    }

    while let Some((at, ev)) = queue.pop() {
        if at > cfg.max_sim_ms {
            truncated = true;
            break;
        }
        now_ms = now_ms.max(at);
        match ev {
            Event::JobArrival(ji) => {
                let job = &trace.jobs[ji];
                if let Some(fs) = &mut fstate {
                    fs.arrived[ji] = true;
                }
                if sink.enabled() {
                    sink.emit(
                        now_ms,
                        jaws_obs::Event::JobArrival {
                            job: job.id,
                            kind: match job.kind {
                                JobKind::Ordered => "ordered".to_string(),
                                JobKind::Batched => "batched".to_string(),
                            },
                            queries: job.queries.len() as u32,
                        },
                    );
                }
                if declare_on_arrival {
                    for node in 0..pipelines.len() as u32 {
                        if !live.alive[node as usize] {
                            continue;
                        }
                        if let Some(pj) = live.project_job(job, node) {
                            if let Some(fs) = &mut fstate {
                                fs.declared[node as usize].extend(pj.queries.iter().map(|q| q.id));
                            }
                            if let Some(rs) = &mut rstate {
                                rs.declared[node as usize].extend(pj.queries.iter().map(|q| q.id));
                            }
                            pipelines[node as usize].job_declared(pj.as_ref(), now_ms);
                            if let Some(b) = &buffers {
                                b.drain(node as usize);
                            }
                        }
                    }
                }
                match job.kind {
                    JobKind::Batched => {
                        // The client loop streams order-independent queries
                        // at its pacing cadence.
                        for (qi, _) in job.queries.iter().enumerate() {
                            queue.push(
                                now_ms + qi as f64 * job.think_ms,
                                Event::QuerySubmit(ji, qi),
                            );
                        }
                    }
                    JobKind::Ordered => {
                        // The chain head is submitted in place (the predictor
                        // only observes from the second query on).
                        submit(
                            ji,
                            0,
                            false,
                            now_ms,
                            &live,
                            &mut submit_ms,
                            &mut outstanding,
                            &mut fstate,
                            &mut rstate,
                            &mut *pipelines,
                            &mut scratch,
                        );
                    }
                }
            }
            Event::QuerySubmit(ji, qi) => {
                let observe = trace.jobs[ji].kind == JobKind::Ordered;
                submit(
                    ji,
                    qi,
                    observe,
                    now_ms,
                    &live,
                    &mut submit_ms,
                    &mut outstanding,
                    &mut fstate,
                    &mut rstate,
                    &mut *pipelines,
                    &mut scratch,
                );
            }
            Event::BatchDone(node, completed_parts) => {
                if !live.alive[node as usize] {
                    // The node died mid-batch: its completion never happens
                    // and these parts were re-dispatched at crash time.
                    continue;
                }
                pipelines[node as usize].set_idle();
                for pid in completed_parts {
                    let qid = routing.original_id(pid);
                    // lint: invariant — schedulers only complete queries
                    // previously handed to query_available
                    let submitted = submit_ms
                        .get(&qid)
                        .copied()
                        .expect("completed query was submitted");
                    let rt = now_ms - submitted;
                    pipelines[node as usize].complete_part(pid, rt, now_ms);
                    if let Some(fs) = &mut fstate {
                        fs.pending[node as usize].remove(&pid);
                        fs.defs.remove(&pid);
                    }
                    if let Some(rs) = &mut rstate {
                        rs.node_load[node as usize] = rs.node_load[node as usize].saturating_sub(1);
                    }
                    if let Some(b) = &buffers {
                        b.drain(node as usize);
                    }
                    // lint: invariant — every part was registered in
                    // `outstanding` when its query was submitted
                    let left = outstanding
                        .get_mut(&qid)
                        .expect("completed part of a tracked query");
                    *left -= 1;
                    if *left > 0 {
                        continue;
                    }
                    outstanding.remove(&qid);
                    // The whole query is done: record and advance the job.
                    if sink.enabled() {
                        sink.emit(
                            now_ms,
                            jaws_obs::Event::QueryComplete {
                                query: qid,
                                response_ms: rt,
                            },
                        );
                        sink.emit(
                            now_ms,
                            jaws_obs::Event::Histogram {
                                name: "engine.response_ms".to_string(),
                                sample: rt,
                            },
                        );
                    }
                    responses.push(rt);
                    response_log.push((qid, rt));
                    last_completion = now_ms;
                    let (ji, qi) = locate[&qid];
                    let job = &trace.jobs[ji];
                    remaining_per_job[ji] -= 1;
                    if remaining_per_job[ji] == 0 {
                        jobs_completed += 1;
                    }
                    if job.kind == JobKind::Ordered && qi + 1 < job.queries.len() {
                        queue.push(now_ms + job.think_ms, Event::QuerySubmit(ji, qi + 1));
                    }
                }
            }
            Event::PrefetchDone(node) => {
                if live.alive[node as usize] {
                    pipelines[node as usize].set_idle();
                }
            }
            Event::IdleCheck(node) => {
                if live.alive[node as usize] {
                    pipelines[node as usize].clear_idle_check();
                }
            }
            Event::Failure(i) => {
                let ev = failures.events()[i];
                first_failure_ms.get_or_insert(now_ms);
                match ev {
                    FailureEvent::Slowdown { node, factor, .. } => {
                        if live.alive[node as usize] {
                            pipelines[node as usize].set_service_multiplier(factor);
                            node_status[node as usize].slowdown = factor;
                            if sink.enabled() {
                                sink.emit(now_ms, jaws_obs::Event::NodeSlowdown { node, factor });
                            }
                        }
                    }
                    FailureEvent::Crash { node, survivor, .. } => {
                        // FailurePlan::validate rejects plans that crash the
                        // same node twice, so this assert cannot fire.
                        assert!(live.alive[node as usize], "node {node} crashed twice");
                        crash_node(
                            node,
                            survivor,
                            now_ms,
                            trace,
                            &locate,
                            &submit_ms,
                            &mut live,
                            // lint: invariant — run_trace asserts the plan is
                            // empty unless the cluster route is in force, and
                            // fstate is Some whenever the plan is non-empty
                            fstate.as_mut().expect("failure state exists"),
                            &mut rstate,
                            &mut node_status,
                            pipelines,
                            sink,
                            &buffers,
                        );
                    }
                }
            }
        }
        dispatch_round(
            pipelines,
            &live.alive,
            now_ms,
            cfg,
            &mut queue,
            &buffers,
            &mut plans,
        );
    }

    if let Some(b) = &buffers {
        // Nothing should be left (every interaction drains eagerly), but a
        // truncation break mid-iteration must not lose records.
        b.drain_all();
        // Re-wire the pipelines to the shared recorder, exactly as the
        // cluster executor had them before the run.
        for (node, p) in pipelines.iter_mut().enumerate() {
            p.set_recorder(sink.with_node(node as u32));
        }
    }

    if responses.len() < total_queries {
        truncated = true;
    }
    if truncated {
        // Queries still queued will never complete; let schedulers that keep
        // per-query bookkeeping (QoS deadlines) retire it instead of leaking
        // it — scheduler instances outlive the trace in the daemon direction.
        for (node, p) in pipelines.iter_mut().enumerate() {
            if live.alive[node] {
                p.retire_pending(now_ms);
            }
        }
    }
    if sink.enabled() {
        sink.emit(
            now_ms,
            jaws_obs::Event::Counter {
                name: "engine.queries_completed".to_string(),
                value: responses.len() as u64,
            },
        );
        sink.emit(
            now_ms,
            jaws_obs::Event::Counter {
                name: "engine.jobs_completed".to_string(),
                value: jobs_completed,
            },
        );
    }
    EngineOutcome {
        totals: RunTotals {
            responses,
            jobs_completed,
            first_arrival,
            last_completion,
            truncated,
        },
        response_log,
        node_status,
        first_failure_ms,
        replication: rstate.map(|rs| rs.dir.summary()),
    }
}

/// Computes the per-node parts of `q` under the replica overlay: records each
/// footprint atom in the access histogram, applies the promotion/demotion
/// transitions the refreshed windows trigger, routes every atom to the
/// least-loaded live candidate (slab owner or replica), and regroups the
/// atoms into per-target parts. Two declaration-consistency duties ride
/// along, in deterministic order:
///
/// * **withdrawals** — a statically-owning node whose every atom diverted
///   away holds a declared part id that will never arrive; job-aware gating
///   would stall its partners until the gate timeout, so the id is withdrawn
///   ([`crate::scheduler_api::Scheduler::query_withdrawn`] via the pipeline);
/// * **just-in-time declarations** — a replica host outside the job's static
///   projection has never heard of the incoming part id (JAWS₂ gating
///   requires every available query to be declared), so a synthetic
///   single-query job (id namespace [`REPLICA_DECL_BIT`]) declares it first.
///   Single-query jobs never form gating alignments, so the declaration
///   cannot distort schedule quality.
#[allow(clippy::too_many_arguments)]
fn replicated_fan_out(
    rs: &mut ReplicationState,
    fstate: &mut Option<FailureState>,
    q: &Query,
    job: &Job,
    observe: bool,
    now_ms: f64,
    live: &LiveRouting<'_>,
    pipelines: &mut [NodePipeline],
    sink: &ObsSink,
    buffers: &Option<TraceBuffers<'_>>,
    scratch: &mut EngineScratch,
    outstanding: &mut BTreeMap<QueryId, u32>,
) {
    scratch.actions.clear();
    scratch.owner_flag.iter_mut().for_each(|f| *f = false);
    for &(m, c) in &q.footprint.atoms {
        let owner = live.node_of(m);
        scratch.owner_flag[owner as usize] = true;
        let target = rs.dir.route_atom(
            m,
            owner,
            now_ms,
            &live.alive,
            &rs.node_load,
            &mut scratch.actions,
        );
        scratch.lanes.push(target as usize, (m, c));
    }
    if sink.enabled() {
        for a in &scratch.actions {
            let ev = match *a {
                ReplicaAction::Promoted {
                    morton,
                    node,
                    window_accesses,
                } => jaws_obs::Event::ReplicaPromoted {
                    morton: morton.raw(),
                    node,
                    window_accesses,
                },
                ReplicaAction::Demoted { morton, node } => jaws_obs::Event::ReplicaDropped {
                    morton: morton.raw(),
                    node,
                    crashed: false,
                },
                ReplicaAction::Routed {
                    morton,
                    owner,
                    replica,
                } => jaws_obs::Event::ReplicaRouted {
                    query: q.id,
                    morton: morton.raw(),
                    owner,
                    replica,
                },
            };
            sink.emit(now_ms, ev);
        }
    }
    // Withdrawals before deliveries, so gating state is settled when the
    // diverted parts arrive.
    for (node, pipeline) in pipelines.iter_mut().enumerate() {
        if !scratch.owner_flag[node] || scratch.lanes.lane_len(node) > 0 {
            continue;
        }
        let pid = part_id(q.id, node as u32);
        if rs.declared[node].remove(&pid) {
            if let Some(fs) = fstate {
                fs.declared[node].remove(&pid);
            }
            pipeline.query_withdrawn(pid, now_ms);
            if let Some(b) = buffers {
                b.drain(node);
            }
        }
    }
    // Build the parts and run every just-in-time declaration first (ascending
    // node order) — the trace byte-stream pins declarations ahead of the
    // first delivery.
    debug_assert!(scratch.parts.is_empty(), "parts scratch left dirty");
    for (node, pipeline) in pipelines.iter_mut().enumerate() {
        if scratch.lanes.lane_len(node) == 0 {
            continue;
        }
        let atoms = scratch.lanes.take_lane(node);
        let part = Query {
            id: part_id(q.id, node as u32),
            user: q.user,
            op: q.op,
            timestep: q.timestep,
            footprint: Footprint::from_pairs_in_place(atoms),
        };
        if !rs.declared[node].contains(&part.id) {
            rs.decls += 1;
            let decl = Job {
                id: REPLICA_DECL_BIT | rs.decls,
                user: job.user,
                kind: job.kind,
                campaign: job.campaign,
                queries: vec![part.clone()],
                arrival_ms: job.arrival_ms,
                think_ms: job.think_ms,
            };
            rs.declared[node].insert(part.id);
            if let Some(fs) = fstate {
                fs.declared[node].insert(part.id);
            }
            pipeline.job_declared(&decl, now_ms);
            if let Some(b) = buffers {
                b.drain(node);
            }
        }
        scratch.parts.push((node as u32, part));
    }
    outstanding.insert(q.id, scratch.parts.len() as u32);
    // Deliveries in ascending node order; each part's footprint buffer goes
    // back to its lane once the pipeline has taken what it needs.
    let mut parts = std::mem::take(&mut scratch.parts);
    for (node, part) in &mut parts {
        rs.node_load[*node as usize] += 1;
        deliver_part(
            *node, part, q.id, observe, job.id, now_ms, fstate, pipelines, sink, buffers,
        );
        scratch
            .lanes
            .restore(*node as usize, std::mem::take(&mut part.footprint.atoms));
    }
    parts.clear();
    scratch.parts = parts;
}

/// Handles one scripted crash: kills the node in the routing overlay, then
/// re-dispatches everything it held through the survivor — first declaring
/// *remnant job* projections so the survivor's job-aware gating knows the
/// incoming ids, then re-enqueueing the pending parts in ascending part-id
/// order. Future queries of already-arrived jobs whose atoms now route to the
/// survivor under a part id it was never told about are declared too, so
/// their later submission finds a known id.
#[allow(clippy::too_many_arguments)]
fn crash_node(
    node: u32,
    designated: Option<u32>,
    now_ms: f64,
    trace: &Trace,
    locate: &BTreeMap<QueryId, (usize, usize)>,
    submit_ms: &BTreeMap<QueryId, f64>,
    live: &mut LiveRouting<'_>,
    fs: &mut FailureState,
    rstate: &mut Option<ReplicationState>,
    node_status: &mut [NodeStatus],
    pipelines: &mut [NodePipeline],
    sink: &ObsSink,
    buffers: &Option<TraceBuffers<'_>>,
) {
    let surv = live.crash(node, designated);
    fs.crashes += 1;
    let moved = std::mem::take(&mut fs.pending[node as usize]);
    node_status[node as usize].failed = true;
    node_status[node as usize].redispatched_parts = moved.len() as u64;
    if sink.enabled() {
        sink.emit(
            now_ms,
            jaws_obs::Event::NodeFailed {
                node,
                survivor: surv,
                redispatched: moved.len() as u64,
            },
        );
    }
    if let Some(rs) = rstate {
        // The dead node's replicas leave the routing table (its slab itself
        // re-chains through `LiveRouting` exactly as without replication),
        // and the load it carried moves to the survivor along with the parts.
        for m in rs.dir.drop_node(node) {
            if sink.enabled() {
                sink.emit(
                    now_ms,
                    jaws_obs::Event::ReplicaDropped {
                        morton: m.raw(),
                        node,
                        crashed: true,
                    },
                );
            }
        }
        let moved_load = std::mem::take(&mut rs.node_load[node as usize]);
        debug_assert_eq!(moved_load, moved.len() as u64, "load tracks pending");
        rs.node_load[surv as usize] += moved_load;
    }

    // Remnant declarations, grouped per trace job in ascending job index;
    // within a job, queries stay in sequence order (ties on the same query —
    // several re-dispatched parts of one query — break by part id).
    let mut remnants: BTreeMap<usize, Vec<(usize, QueryId, Query)>> = BTreeMap::new();
    for &pid in &moved {
        let qid = orig_id(pid);
        let (ji, qi) = locate[&qid];
        // lint: invariant — every pending part stored its definition at
        // submission time
        let def = fs.defs.get(&pid).expect("pending part has a definition");
        remnants.entry(ji).or_default().push((qi, pid, def.clone()));
    }
    for (ji, job) in trace.jobs.iter().enumerate() {
        if !fs.arrived[ji] {
            // Unarrived jobs project through the post-crash routing at their
            // arrival; nothing to declare early.
            continue;
        }
        for (qi, q) in job.queries.iter().enumerate() {
            if submit_ms.contains_key(&q.id) {
                continue; // submitted (or already complete): not a future query
            }
            let atoms: Vec<(MortonKey, u32)> = q
                .footprint
                .atoms
                .iter()
                .copied()
                .filter(|&(m, _)| live.node_of(m) == surv)
                .collect();
            if atoms.is_empty() {
                continue;
            }
            let pid = part_id(q.id, surv);
            if fs.declared[surv as usize].contains(&pid) {
                continue; // the survivor's own projection already covers it
            }
            remnants.entry(ji).or_default().push((
                qi,
                pid,
                Query {
                    id: pid,
                    user: q.user,
                    op: q.op,
                    timestep: q.timestep,
                    footprint: Footprint::from_pairs(atoms),
                },
            ));
        }
    }
    for (ji, mut parts) in remnants {
        parts.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let job = &trace.jobs[ji];
        debug_assert!(
            job.id < (1 << REMNANT_JOB_BITS),
            "trace job id exceeds the remnant tag budget"
        );
        let remnant = Job {
            // Tagged with the crash ordinal: distinct from the trace id and
            // from remnants of earlier crashes.
            id: (fs.crashes << REMNANT_JOB_BITS) | job.id,
            user: job.user,
            kind: job.kind,
            campaign: job.campaign,
            queries: parts.into_iter().map(|(_, _, q)| q).collect(),
            arrival_ms: job.arrival_ms,
            think_ms: job.think_ms,
        };
        fs.declared[surv as usize].extend(remnant.queries.iter().map(|q| q.id));
        if let Some(rs) = rstate {
            rs.declared[surv as usize].extend(remnant.queries.iter().map(|q| q.id));
        }
        pipelines[surv as usize].job_declared(&remnant, now_ms);
        if let Some(b) = buffers {
            b.drain(surv as usize);
        }
    }

    // Re-enqueue the dead node's pending parts through the survivor's
    // scheduler: recovered work re-enters the utility ranking, it does not
    // jump the queue.
    for &pid in &moved {
        // lint: invariant — every pending part stored its definition at
        // submission time
        let def = fs
            .defs
            .get(&pid)
            .expect("pending part has a definition")
            .clone();
        if sink.enabled() {
            sink.emit(
                now_ms,
                jaws_obs::Event::PartRedispatched {
                    part: pid,
                    from: node,
                    to: surv,
                },
            );
        }
        fs.pending[surv as usize].insert(pid);
        pipelines[surv as usize].query_available(&def, now_ms);
        if let Some(b) = buffers {
            b.drain(surv as usize);
        }
    }
}

/// What one node decided in a dispatch round. Planning is node-local (it
/// touches only that node's pipeline), so plans can be computed on `jaws-par`
/// worker threads; the follow-up events are then pushed in ascending node
/// order by [`dispatch_round`], reproducing the serial engine's insertion-id
/// sequence exactly.
enum DispatchPlan {
    /// The node started a batch: (completed part ids, service time).
    Batch(Vec<QueryId>, f64),
    /// The node started a speculative read costing `io_ms`.
    Prefetch(f64),
    /// Gated work exists; re-poll after `idle_recheck_ms`.
    IdleCheck,
    /// Busy, dead, or nothing to do.
    Nothing,
}

/// Starts the next batch on `pipeline` if it is free and work is schedulable;
/// otherwise spends the idle capacity on a speculative read, or asks for an
/// idle re-poll if gated work exists. Mutates only `pipeline` — the decision
/// is returned as a [`DispatchPlan`] instead of pushed, so planning can run
/// off-thread.
fn dispatch_plan(pipeline: &mut NodePipeline, now_ms: f64) -> DispatchPlan {
    if pipeline.is_busy() {
        return DispatchPlan::Nothing;
    }
    match pipeline.next_batch(now_ms) {
        Some(batch) => {
            debug_assert!(!batch.is_empty(), "scheduler produced an empty batch");
            let service_ms = pipeline.charge_batch(&batch, now_ms);
            DispatchPlan::Batch(batch.completing_queries, service_ms)
        }
        None => {
            // Nothing schedulable: spend the idle capacity on a speculative
            // read, if the trajectory predictor has one.
            if let Some(io_ms) = pipeline.try_prefetch(now_ms) {
                DispatchPlan::Prefetch(io_ms)
            } else if pipeline.wants_idle_check() {
                // If gated work exists, poll again soon so the starvation
                // valve can fire even with no other events.
                DispatchPlan::IdleCheck
            } else {
                DispatchPlan::Nothing
            }
        }
    }
}

/// Free nodes below which a dispatch round plans inline instead of on the
/// `jaws_par` pool. A delta-core planning step costs ~20–60 µs (BENCH_8)
/// while `std::thread::scope` pays a fresh OS-thread spawn of the same order
/// per worker per call, so fanning out for two or three free nodes loses
/// wall-clock; bench-chosen, wall-clock only (plans are reassembled in node
/// order either way).
const PAR_DISPATCH_MIN_FREE: usize = 4;

/// One per-event dispatch round over all live pipelines.
///
/// Nodes share no state between events (each owns its database, cache and
/// scheduler), so when several are free their planning steps run concurrently
/// via [`jaws_par::map_mut`]; with fewer than [`PAR_DISPATCH_MIN_FREE`] free
/// nodes (the common saturated case is one) the round stays inline and
/// spawns nothing. Dead nodes are skipped entirely. Plans are applied — and
/// any buffered trace records drained — in ascending node order, so event
/// ids, reports and JSONL traces are byte-identical at any thread count.
// lint: hotpath
#[allow(clippy::too_many_arguments)]
fn dispatch_round(
    pipelines: &mut [NodePipeline],
    alive: &[bool],
    now_ms: f64,
    cfg: &SimConfig,
    queue: &mut EventQueue,
    buffers: &Option<TraceBuffers<'_>>,
    plans: &mut Vec<DispatchPlan>,
) {
    let free = pipelines
        .iter()
        .enumerate()
        .filter(|(i, p)| alive[*i] && !p.is_busy())
        .count();
    plans.clear();
    if free >= PAR_DISPATCH_MIN_FREE {
        *plans = jaws_par::map_mut(pipelines, |i, p| {
            if alive[i] {
                dispatch_plan(p, now_ms)
            } else {
                DispatchPlan::Nothing
            }
        });
    } else {
        plans.extend(pipelines.iter_mut().enumerate().map(|(i, p)| {
            if alive[i] {
                dispatch_plan(p, now_ms)
            } else {
                DispatchPlan::Nothing
            }
        }));
    }
    for (node, plan) in plans.drain(..).enumerate() {
        if let Some(b) = buffers {
            b.drain(node);
        }
        match plan {
            DispatchPlan::Batch(completed, service_ms) => {
                queue.push(
                    now_ms + service_ms,
                    Event::BatchDone(node as u32, completed),
                );
            }
            DispatchPlan::Prefetch(io_ms) => {
                queue.push(now_ms + io_ms, Event::PrefetchDone(node as u32));
            }
            DispatchPlan::IdleCheck => {
                queue.push(now_ms + cfg.idle_recheck_ms, Event::IdleCheck(node as u32));
            }
            DispatchPlan::Nothing => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The retired heap key: f64 event times under a total order. Kept as the
    /// test oracle for the calendar queue's pop order.
    #[derive(Debug, PartialEq)]
    struct Key(f64, u64);

    impl Eq for Key {}

    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    /// The pre-calendar-queue implementation, verbatim: a min-heap of
    /// `(time, insertion id)` keys. Pop order is the specification the
    /// calendar queue must reproduce bit-for-bit.
    #[derive(Default)]
    struct HeapOracle {
        heap: BinaryHeap<Reverse<(Key, u64)>>,
        events: BTreeMap<u64, Event>,
        next_event: u64,
    }

    impl HeapOracle {
        fn push(&mut self, at_ms: f64, ev: Event) {
            let id = self.next_event;
            self.next_event += 1;
            self.events.insert(id, ev);
            self.heap.push(Reverse((Key(at_ms, id), id)));
        }

        fn pop(&mut self) -> Option<(f64, Event)> {
            let Reverse((Key(at, _), id)) = self.heap.pop()?;
            let ev = self.events.remove(&id).expect("event payload");
            Some((at, ev))
        }
    }

    /// Tags pops so sequences can be compared: (time bits, payload tag).
    fn tag(popped: Option<(f64, Event)>) -> Option<(u64, u32)> {
        popped.map(|(at, ev)| match ev {
            Event::IdleCheck(n) => (at.to_bits(), n),
            other => panic!("test events are IdleCheck only, got {other:?}"),
        })
    }

    #[test]
    fn calendar_queue_pops_nothing_when_empty() {
        let mut q = EventQueue::default();
        assert!(q.pop().is_none());
        q.push(5.0, Event::IdleCheck(0));
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_queue_orders_by_time_then_insertion_id() {
        let mut q = EventQueue::default();
        q.push(3.25, Event::IdleCheck(0));
        q.push(1.5, Event::IdleCheck(1));
        q.push(1.5, Event::IdleCheck(2));
        q.push(0.75, Event::IdleCheck(3));
        let order: Vec<u32> = std::iter::from_fn(|| tag(q.pop()).map(|(_, n)| n)).collect();
        assert_eq!(order, vec![3, 1, 2, 0], "ties pop first-pushed-first");
    }

    #[test]
    fn calendar_queue_migrates_far_future_overflow() {
        let mut q = EventQueue::default();
        // Far beyond the ring window, out of push order, with a tie.
        let far = RING_BUCKETS as f64 * 3.0;
        q.push(far + 7.0, Event::IdleCheck(0));
        q.push(2.0, Event::IdleCheck(1));
        q.push(far + 7.0, Event::IdleCheck(2));
        q.push(far + 1.0, Event::IdleCheck(3));
        let order: Vec<u32> = std::iter::from_fn(|| tag(q.pop()).map(|(_, n)| n)).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn calendar_queue_interleaves_pushes_between_pops() {
        // The engine's shape: pops advance the cursor while new events land
        // at or after the popped time, including in the current bucket.
        let mut q = EventQueue::default();
        let mut oracle = HeapOracle::default();
        for (i, t) in [10.0, 4.5, 4.5, 2_000.0, 9_999.5].iter().enumerate() {
            q.push(*t, Event::IdleCheck(i as u32));
            oracle.push(*t, Event::IdleCheck(i as u32));
        }
        let mut next = 100u32;
        while let Some((at, ev)) = oracle.pop() {
            assert_eq!(tag(Some((at, ev))), tag(q.pop()));
            if next < 106 {
                // Re-arm two follow-ups relative to the popped time.
                for dt in [0.0, 750.25] {
                    q.push(at + dt, Event::IdleCheck(next));
                    oracle.push(at + dt, Event::IdleCheck(next));
                    next += 1;
                }
            }
        }
        assert!(q.pop().is_none());
    }

    proptest! {
        /// Pop order equals the retired binary heap's over random event
        /// sequences — quantized times force same-timestamp ties, the far
        /// multiplier exercises overflow migration, and interleaved pops
        /// exercise the sliding window.
        #[test]
        fn calendar_queue_matches_heap_oracle(
            ops in proptest::collection::vec((0u8..2, 0u16..200, 0u8..2), 1..200)
        ) {
            let mut q = EventQueue::default();
            let mut oracle = HeapOracle::default();
            let mut n = 0u32;
            for (is_pop, t_raw, far) in ops {
                let (is_pop, far) = (is_pop == 1, far == 1);
                if is_pop {
                    prop_assert_eq!(tag(q.pop()), tag(oracle.pop()));
                } else {
                    let t = if far {
                        t_raw as f64 * 97.5
                    } else {
                        (t_raw % 24) as f64 * 0.5
                    };
                    q.push(t, Event::IdleCheck(n));
                    oracle.push(t, Event::IdleCheck(n));
                    n += 1;
                }
            }
            loop {
                let (a, b) = (tag(q.pop()), tag(oracle.pop()));
                let done = b.is_none();
                prop_assert_eq!(a, b);
                if done {
                    break;
                }
            }
        }
    }

    #[test]
    fn part_ids_round_trip() {
        for q in [1u64, 42, 1 << 40, PART_QUERY_MASK] {
            for node in [0u32, 3, 15, MAX_NODE_INDEX] {
                let pid = part_id(q, node);
                assert_eq!(orig_id(pid), q);
                assert_eq!(part_node(pid), node);
            }
        }
        assert_ne!(part_id(7, 0), part_id(7, 1), "parts distinct across nodes");
        assert_ne!(part_id(7, 0), 7, "part ids never collide with trace ids");
    }

    #[test]
    fn single_routing_is_the_identity() {
        let r = Routing::Single;
        assert_eq!(r.node_of(MortonKey(63)), 0);
        assert_eq!(r.original_id(42), 42);
    }

    #[test]
    fn slab_routing_assigns_contiguous_ranges() {
        let r = Routing::MortonSlabs {
            slab_size: 16,
            nodes: 4,
        };
        assert_eq!(r.node_of(MortonKey(0)), 0);
        assert_eq!(r.node_of(MortonKey(15)), 0);
        assert_eq!(r.node_of(MortonKey(16)), 1);
        assert_eq!(r.node_of(MortonKey(63)), 3);
    }

    #[test]
    fn slab_routing_clamps_the_short_remainder_onto_the_last_node() {
        // 64 atoms over 3 nodes: ceil slabs of 22 → nodes own 22/22/20.
        let r = Routing::MortonSlabs {
            slab_size: 22,
            nodes: 3,
        };
        assert_eq!(r.node_of(MortonKey(21)), 0);
        assert_eq!(r.node_of(MortonKey(22)), 1);
        assert_eq!(r.node_of(MortonKey(43)), 1);
        assert_eq!(r.node_of(MortonKey(44)), 2);
        assert_eq!(r.node_of(MortonKey(63)), 2);
        // More nodes than slabs ever fill: everything clamps in range.
        let r = Routing::MortonSlabs {
            slab_size: 1,
            nodes: 2,
        };
        assert_eq!(r.node_of(MortonKey(500)), 1);
    }

    #[test]
    fn live_routing_redirects_a_dead_slab_to_the_survivor() {
        let base = Routing::MortonSlabs {
            slab_size: 16,
            nodes: 4,
        };
        let mut live = LiveRouting::new(&base, 4);
        assert_eq!(live.node_of(MortonKey(20)), 1);
        let surv = live.crash(1, Some(3));
        assert_eq!(surv, 3);
        assert_eq!(live.node_of(MortonKey(20)), 3, "slab 1 must move to 3");
        assert_eq!(live.node_of(MortonKey(0)), 0, "other slabs untouched");
        assert!(!live.alive[1]);
    }

    #[test]
    fn live_routing_chains_redirects_across_repeated_crashes() {
        let base = Routing::MortonSlabs {
            slab_size: 16,
            nodes: 4,
        };
        let mut live = LiveRouting::new(&base, 4);
        live.crash(1, Some(2));
        // Node 2 now owns slabs 1 and 2; when it dies both must land on the
        // next survivor (designated dead ⇒ lowest live fallback).
        let surv = live.crash(2, Some(1));
        assert_eq!(
            surv, 0,
            "dead designated survivor falls back to lowest live"
        );
        assert_eq!(live.node_of(MortonKey(20)), 0);
        assert_eq!(live.node_of(MortonKey(40)), 0);
        assert_eq!(live.node_of(MortonKey(60)), 3);
    }
}
