//! One simulated execution pipeline — the per-node half of the engine.
//!
//! A [`NodePipeline`] owns everything a cluster node owns in the §V-C
//! deployment: a [`TurbDb`] (buffer pool + simulated disk), a scheduler, the
//! residency adapter feeding φ of Eq. 1 back into the metric, an optional
//! trajectory [`Prefetcher`] (§VII), and busy/idle accounting. The engine
//! ([`crate::engine`]) owns the clock and the event queue; the pipeline only
//! answers "what would you run next and what does it cost".

use jaws_morton::AtomId;
use jaws_obs::ObsSink;
use jaws_scheduler::{Batch, Prefetcher, Residency, Scheduler};
use jaws_turbdb::TurbDb;
use jaws_workload::{Job, JobId, Query, QueryId};

/// Adapter exposing buffer-pool residency (φ of Eq. 1) to the scheduler.
struct DbResidency<'a>(&'a TurbDb);

impl Residency for DbResidency<'_> {
    fn is_resident(&self, atom: &AtomId) -> bool {
        self.0.is_resident(atom)
    }

    fn residency_epoch(&self) -> Option<u64> {
        Some(self.0.residency_epoch())
    }

    fn residency_changes_since(&self, since: u64) -> Option<Vec<(AtomId, bool)>> {
        self.0.residency_changes_since(since)
    }
}

/// One simulated execution pipeline: a database plus a scheduler plus the
/// per-node bookkeeping the engine needs.
pub struct NodePipeline {
    db: TurbDb,
    scheduler: Box<dyn Scheduler>,
    prefetcher: Option<Prefetcher>,
    busy: bool,
    idle_check_pending: bool,
    /// Straggler factor from a scripted [`crate::FailurePlan`] slowdown:
    /// every charged batch and speculative-read service time is multiplied
    /// by it. 1.0 (the default) is a healthy node.
    service_multiplier: f64,
    busy_ms: f64,
    parts_completed: u64,
    prefetch_reads: u64,
    sink: ObsSink,
}

impl NodePipeline {
    /// Builds a pipeline over an opened database and a scheduler. When
    /// `prefetch` is set, idle capacity is spent on trajectory-predicted
    /// speculative reads (§VII).
    pub fn new(db: TurbDb, scheduler: Box<dyn Scheduler>, prefetch: bool) -> Self {
        let prefetcher =
            prefetch.then(|| Prefetcher::new(db.config().atoms_per_side(), db.config().timesteps));
        NodePipeline {
            db,
            scheduler,
            prefetcher,
            busy: false,
            idle_check_pending: false,
            service_multiplier: 1.0,
            busy_ms: 0.0,
            parts_completed: 0,
            prefetch_reads: 0,
            sink: ObsSink::null(),
        }
    }

    /// Wires a (node-tagged) observability sink into the pipeline and
    /// forwards it to the database and the scheduler. The default sink is
    /// null, so an unwired pipeline pays one branch per emission site.
    pub fn set_recorder(&mut self, sink: ObsSink) {
        self.db.set_recorder(sink.clone());
        self.scheduler.set_recorder(sink.clone());
        self.sink = sink;
    }

    /// Access to the database (post-run inspection).
    pub fn db(&self) -> &TurbDb {
        &self.db
    }

    /// Access to the scheduler (post-run inspection).
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }

    /// Speculative atom reads issued by the prefetcher so far.
    pub fn prefetch_reads(&self) -> u64 {
        self.prefetch_reads
    }

    /// Sub-query parts completed on this pipeline so far.
    pub fn parts_completed(&self) -> u64 {
        self.parts_completed
    }

    /// Total simulated time this pipeline spent servicing batches.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// True while a batch or speculative read is in flight.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Sets the straggler service-time multiplier (scripted
    /// [`crate::FailurePlan`] slowdown). Applies to every batch and
    /// speculative read charged from now on.
    pub fn set_service_multiplier(&mut self, factor: f64) {
        debug_assert!(
            factor.is_finite() && factor > 0.0,
            "service multiplier must be finite and positive"
        );
        self.service_multiplier = factor;
    }

    /// The straggler service-time multiplier currently in force.
    pub fn service_multiplier(&self) -> f64 {
        self.service_multiplier
    }

    /// Declares a job (or a node-local projection of one) to the scheduler.
    pub fn job_declared(&mut self, job: &Job, now_ms: f64) {
        self.scheduler.job_declared(job, now_ms);
    }

    /// Hands a submitted query (or part) to the scheduler.
    pub fn query_available(&mut self, q: &Query, now_ms: f64) {
        self.scheduler.query_available(q, now_ms);
    }

    /// Withdraws a declared part id that dynamic placement diverted to a
    /// replica on another node — it will never become available here.
    pub fn query_withdrawn(&mut self, part: QueryId, now_ms: f64) {
        self.scheduler.query_withdrawn(part, now_ms);
    }

    /// Drops all pending scheduler work and per-query bookkeeping (the run
    /// was truncated at `max_sim_ms`; queued parts will never complete).
    pub fn retire_pending(&mut self, now_ms: f64) {
        self.scheduler.retire_pending(now_ms);
    }

    /// Feeds an ordered-job observation to the trajectory predictor, if
    /// prefetching is enabled.
    pub fn observe(&mut self, job: JobId, q: &Query) {
        if let Some(p) = &mut self.prefetcher {
            p.observe(job, q);
        }
    }

    /// Asks the scheduler for the next batch under current residency.
    pub fn next_batch(&mut self, now_ms: f64) -> Option<Batch> {
        let res = DbResidency(&self.db);
        self.scheduler.next_batch(now_ms, &res)
    }

    /// Charges a batch against the database — atom reads in Morton order,
    /// position compute, then the stencil spill-over pass (§V locality of
    /// reference) — marks the pipeline busy, and returns the service time.
    /// `now_ms` is the dispatch time, used only to stamp observability
    /// events (the engine owns the clock).
    pub fn charge_batch(&mut self, batch: &Batch, now_ms: f64) -> f64 {
        let snapshot = {
            let res = DbResidency(&self.db);
            self.scheduler.utility_snapshot(&res)
        };
        let mut service_ms = self.db.batch_dispatch_ms();
        let mut io_ms = 0.0;
        // First pass: the batch atoms themselves, in Morton order
        // (sequential on disk when contiguous).
        for group in &batch.atoms {
            let r = self.db.read_atom_at(group.atom, &snapshot, now_ms);
            service_ms += r.io_ms;
            io_ms += r.io_ms;
            service_ms += self.db.compute_cost_ms(group.positions());
        }
        // Second pass: stencil spill-over into neighboring atoms. Neighbors
        // co-scheduled in this batch, or still cached, cost nothing extra.
        for group in &batch.atoms {
            for n in self.db.stencil_neighbor_ids(group.atom) {
                let r = self.db.read_atom_at(n, &snapshot, now_ms);
                service_ms += r.io_ms;
                io_ms += r.io_ms;
            }
        }
        // A straggling node (scripted slowdown) serves everything slower —
        // dispatch, I/O and compute alike — so the factor scales the whole
        // charge, and the emitted record reports the degraded times.
        service_ms *= self.service_multiplier;
        io_ms *= self.service_multiplier;
        if self.sink.enabled() {
            self.sink.emit(
                now_ms,
                jaws_obs::Event::BatchExecuted {
                    parts: batch.completing_queries.clone(),
                    atom_groups: batch.atoms.len() as u32,
                    service_ms,
                    io_ms,
                },
            );
        }
        self.busy = true;
        self.busy_ms += service_ms;
        service_ms
    }

    /// Issues one speculative read if the trajectory predictor has a
    /// non-resident candidate: marks the pipeline busy and returns the I/O
    /// time, or `None` when there is nothing to prefetch. `now_ms` stamps the
    /// [`jaws_obs::Event::PrefetchIssued`] record.
    pub fn try_prefetch(&mut self, now_ms: f64) -> Option<f64> {
        let p = self.prefetcher.as_mut()?;
        let atom = p.next_prefetch(|a| self.db.is_resident(a))?;
        // The candidate is non-resident, so the read below always misses —
        // but the miss consults the utility oracle only if it must *evict*.
        // While the pool is still filling, skip the snapshot refresh (it
        // clones the ranking maps); an empty snapshot is bit-equivalent
        // because it is never read.
        let snapshot = if self.db.cache_at_capacity() {
            let res = DbResidency(&self.db);
            self.scheduler.utility_snapshot(&res)
        } else {
            jaws_scheduler::UtilitySnapshot::empty()
        };
        if self.sink.enabled() {
            self.sink.emit(
                now_ms,
                jaws_obs::Event::PrefetchIssued {
                    timestep: atom.timestep,
                    morton: atom.morton.raw(),
                },
            );
        }
        let r = self.db.read_atom_at(atom, &snapshot, now_ms);
        self.prefetch_reads += 1;
        self.busy = true;
        Some(r.io_ms * self.service_multiplier)
    }

    /// Records one completed part: scheduler notification, run-boundary
    /// bookkeeping (§V-A cache runs), and the part counter.
    pub fn complete_part(&mut self, part: QueryId, response_ms: f64, now_ms: f64) {
        self.parts_completed += 1;
        self.scheduler.on_query_complete(part, response_ms, now_ms);
        if self.scheduler.take_run_boundary() {
            self.db.end_run();
        }
    }

    /// Marks the pipeline idle (a batch or speculative read finished).
    pub fn set_idle(&mut self) {
        self.busy = false;
    }

    /// True when the engine should schedule an idle re-poll: the scheduler
    /// holds gated work and no re-poll is pending yet. Marks the re-poll
    /// pending as a side effect.
    pub fn wants_idle_check(&mut self) -> bool {
        if self.scheduler.has_pending() && !self.idle_check_pending {
            self.idle_check_pending = true;
            return true;
        }
        false
    }

    /// Clears the pending idle re-poll (its event fired).
    pub fn clear_idle_check(&mut self) {
        self.idle_check_pending = false;
    }
}
