//! Factories wiring schedulers, cache policies and databases together.

use jaws_cache::{Lru, LruK, ReplacementPolicy, Slru, TwoQ, Urc};
use jaws_morton::AtomId;
use jaws_scheduler::{
    CasJobs, GatingConfig, Jaws, JawsConfig, LifeRaft, MetricParams, NoShare, QosScheduler,
    Scheduler,
};
use jaws_turbdb::{CostModel, DataMode, DbConfig, TurbDb};
use serde::{Deserialize, Serialize};

/// The five schedulers of the paper's evaluation (§VI-B), plus knobs for the
/// ablation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Arrival order, no I/O sharing.
    NoShare,
    /// LifeRaft with age bias α = 1 (arrival order with co-scheduling).
    LifeRaft1,
    /// LifeRaft with age bias α = 0 (pure contention).
    LifeRaft2,
    /// JAWS without job-awareness.
    Jaws1 {
        /// Batch size k.
        batch_k: usize,
    },
    /// Full JAWS.
    Jaws2 {
        /// Batch size k.
        batch_k: usize,
    },
    /// CasJobs-style two-class multi-queue baseline (related work, §II):
    /// short queries preempt, no data sharing.
    CasJobs {
        /// Estimated-service threshold between classes, in ms.
        threshold_ms: u32,
    },
    /// Earliest-deadline-first with deadlines proportional to query size
    /// (the §VII QoS extension); `stretch_x10` is the stretch factor × 10.
    Qos {
        /// Deadline stretch × 10 (e.g. 30 = a query tolerates 3× its own
        /// estimated service time).
        stretch_x10: u32,
    },
}

impl SchedulerKind {
    /// All five evaluation schedulers at the paper's defaults (k = 15).
    pub fn evaluation_set() -> [SchedulerKind; 5] {
        [
            SchedulerKind::NoShare,
            SchedulerKind::LifeRaft1,
            SchedulerKind::LifeRaft2,
            SchedulerKind::Jaws1 { batch_k: 15 },
            SchedulerKind::Jaws2 { batch_k: 15 },
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::NoShare => "NoShare",
            SchedulerKind::LifeRaft1 => "LifeRaft_1",
            SchedulerKind::LifeRaft2 => "LifeRaft_2",
            SchedulerKind::Jaws1 { .. } => "JAWS_1",
            SchedulerKind::Jaws2 { .. } => "JAWS_2",
            SchedulerKind::CasJobs { .. } => "CasJobs",
            SchedulerKind::Qos { .. } => "JAWS-QoS",
        }
    }
}

/// The cache replacement policies of Table I (plus plain LRU as a reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicyKind {
    /// Plain least-recently-used.
    Lru,
    /// LRU-K (K = 2): the SQL Server baseline.
    LruK,
    /// Segmented LRU, 5% protected segment.
    Slru,
    /// Utility Ranked Caching driven by scheduler knowledge.
    Urc,
    /// 2Q (Johnson & Shasha) — the scan-resistant design SLRU is compared
    /// against in the literature the paper cites \[23\].
    TwoQ,
}

impl CachePolicyKind {
    /// The three policies of Table I.
    pub fn table1_set() -> [CachePolicyKind; 3] {
        [
            CachePolicyKind::LruK,
            CachePolicyKind::Slru,
            CachePolicyKind::Urc,
        ]
    }
}

/// Instantiates a cache policy. `cache_atoms` sizes SLRU's protected segment
/// (5% per Table I).
pub fn build_policy(
    kind: CachePolicyKind,
    cache_atoms: usize,
) -> Box<dyn ReplacementPolicy<AtomId>> {
    match kind {
        CachePolicyKind::Lru => Box::new(Lru::new()),
        CachePolicyKind::LruK => Box::new(LruK::new()),
        CachePolicyKind::Slru => Box::new(Slru::for_cache(cache_atoms)),
        CachePolicyKind::Urc => Box::new(Urc::new()),
        CachePolicyKind::TwoQ => Box::new(TwoQ::for_cache(cache_atoms)),
    }
}

/// Instantiates a scheduler. `run_len` is the run length `r` shared by α
/// adaptation and cache run boundaries; `gate_timeout_ms` bounds gated waits.
pub fn build_scheduler(
    kind: SchedulerKind,
    params: MetricParams,
    run_len: usize,
    gate_timeout_ms: f64,
) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::NoShare => Box::new(NoShare::new(run_len)),
        SchedulerKind::LifeRaft1 => Box::new(LifeRaft::arrival_order(params, run_len)),
        SchedulerKind::LifeRaft2 => Box::new(LifeRaft::contention(params, run_len)),
        SchedulerKind::Jaws1 { batch_k } => Box::new(Jaws::new(JawsConfig {
            batch_k,
            run_len,
            ..JawsConfig::jaws1(params)
        })),
        SchedulerKind::Jaws2 { batch_k } => Box::new(Jaws::new(JawsConfig {
            batch_k,
            run_len,
            gating: GatingConfig {
                gate_timeout_ms,
                ..GatingConfig::default()
            },
            ..JawsConfig::jaws2(params)
        })),
        SchedulerKind::CasJobs { threshold_ms } => {
            Box::new(CasJobs::new(params, threshold_ms as f64, run_len))
        }
        SchedulerKind::Qos { stretch_x10 } => Box::new(QosScheduler::new(
            params,
            stretch_x10 as f64 / 10.0,
            run_len,
        )),
    }
}

/// Opens a database with the given cache configuration.
pub fn build_db(
    db: DbConfig,
    cost: CostModel,
    mode: DataMode,
    cache_atoms: usize,
    policy: CachePolicyKind,
) -> TurbDb {
    TurbDb::open(
        db,
        cost,
        mode,
        cache_atoms,
        build_policy(policy, cache_atoms),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_matches_paper_lineup() {
        let names: Vec<&str> = SchedulerKind::evaluation_set()
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(
            names,
            vec!["NoShare", "LifeRaft_1", "LifeRaft_2", "JAWS_1", "JAWS_2"]
        );
    }

    #[test]
    fn factories_produce_matching_names() {
        let params = MetricParams::paper_testbed();
        for kind in SchedulerKind::evaluation_set() {
            let s = build_scheduler(kind, params, 50, 60_000.0);
            assert_eq!(s.name(), kind.name());
        }
    }

    #[test]
    fn policy_factory_produces_each_kind() {
        assert_eq!(build_policy(CachePolicyKind::Lru, 100).name(), "LRU");
        assert_eq!(build_policy(CachePolicyKind::LruK, 100).name(), "LRU-K");
        assert_eq!(build_policy(CachePolicyKind::Slru, 100).name(), "SLRU");
        assert_eq!(build_policy(CachePolicyKind::Urc, 100).name(), "URC");
        assert_eq!(build_policy(CachePolicyKind::TwoQ, 100).name(), "2Q");
    }
}
