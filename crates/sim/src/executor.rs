//! The single-node discrete-event executor.
//!
//! A thin instantiation of the shared engine ([`crate::engine`]): one
//! [`NodePipeline`] driven by the identity route. All event-loop mechanics —
//! arrivals, pacing, think-time chains, prefetching, truncation — live in the
//! engine and are shared with [`crate::ClusterExecutor`].

use crate::engine::{self, Routing};
use crate::node::NodePipeline;
use crate::report::{self, RunReport};
use jaws_obs::ObsSink;
use jaws_scheduler::Scheduler;
use jaws_turbdb::TurbDb;
use jaws_workload::{QueryId, Trace};
use serde::{Deserialize, Serialize};

/// Executor knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated-time cap; runs report `truncated = true` when they hit it.
    pub max_sim_ms: f64,
    /// Re-poll interval while the scheduler is idle but holds gated work.
    pub idle_recheck_ms: f64,
    /// Enable trajectory-based prefetching (§VII): when the pipeline would
    /// otherwise idle, extrapolated next-step atoms of ordered jobs are read
    /// into the cache ahead of demand.
    pub prefetch: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_sim_ms: 1e10,
            idle_recheck_ms: 500.0,
            prefetch: false,
        }
    }
}

/// One simulated cluster node: a database plus a scheduler.
pub struct Executor {
    pipeline: NodePipeline,
    cfg: SimConfig,
    declared_jobs: Option<Vec<jaws_workload::Job>>,
    declarations_overridden: bool,
    response_log: Vec<(QueryId, f64)>,
    sink: ObsSink,
}

impl Executor {
    /// Builds an executor over an opened database and a scheduler.
    pub fn new(db: TurbDb, scheduler: Box<dyn Scheduler>, cfg: SimConfig) -> Self {
        Executor {
            pipeline: NodePipeline::new(db, scheduler, cfg.prefetch),
            cfg,
            declared_jobs: None,
            declarations_overridden: false,
            response_log: Vec::new(),
            sink: ObsSink::null(),
        }
    }

    /// Wires an observability sink through the engine, pipeline, scheduler
    /// and database. The default (no call) is the null sink: emission sites
    /// cost one branch and reports are bit-identical to an unwired build.
    pub fn set_recorder(&mut self, sink: ObsSink) {
        self.pipeline.set_recorder(sink.clone());
        self.sink = sink;
    }

    /// Per-query response times of the last run, in completion order — used
    /// by experiments that slice latency by query class (e.g. the CasJobs
    /// starvation comparison).
    pub fn response_log(&self) -> &[(QueryId, f64)] {
        &self.response_log
    }

    /// Speculative atom reads issued by the prefetcher.
    pub fn prefetch_reads(&self) -> u64 {
        self.pipeline.prefetch_reads()
    }

    /// Overrides the job declarations the scheduler sees: instead of each
    /// trace job at its arrival, these jobs are declared up front. Execution
    /// semantics (arrivals, precedence, think times) still follow the trace —
    /// only the scheduler's *knowledge* of job structure changes. Used to
    /// evaluate heuristic job identification (§IV-A) against ground truth.
    pub fn declare_jobs(&mut self, jobs: Vec<jaws_workload::Job>) {
        self.declared_jobs = Some(jobs);
    }

    /// Access to the database (post-run inspection).
    pub fn db(&self) -> &TurbDb {
        self.pipeline.db()
    }

    /// Access to the scheduler (post-run inspection).
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.pipeline.scheduler()
    }

    /// Replays `trace` to completion (or the simulated-time cap) and reports.
    ///
    /// # Panics
    ///
    /// Panics if the trace geometry does not match the database (timesteps or
    /// atom grid).
    pub fn run(&mut self, trace: &Trace) -> RunReport {
        let cfg = self.pipeline.db().config();
        assert!(
            trace.timesteps <= cfg.timesteps,
            "trace addresses timestep {} beyond the database's {}",
            trace.timesteps,
            cfg.timesteps
        );
        assert_eq!(
            trace.atoms_per_side,
            cfg.atoms_per_side(),
            "trace atom grid does not match the database"
        );
        if let Some(decls) = self.declared_jobs.take() {
            self.declarations_overridden = true;
            for d in &decls {
                self.pipeline.job_declared(d, 0.0);
            }
        }
        let outcome = engine::run_trace(
            std::slice::from_mut(&mut self.pipeline),
            &Routing::Single,
            &self.cfg,
            trace,
            !self.declarations_overridden,
            &crate::FailurePlan::none(),
            &self.sink,
        );
        self.response_log.extend(outcome.response_log);
        report::assemble(
            self.pipeline.scheduler().name().to_string(),
            self.pipeline.db().cache_policy_name().to_string(),
            outcome.totals,
            self.pipeline.db().cache_stats(),
            self.pipeline.db().disk_stats(),
            self.pipeline.scheduler().stats(),
            self.pipeline.scheduler().alpha(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{build_db, build_scheduler, CachePolicyKind, SchedulerKind};
    use jaws_scheduler::MetricParams;
    use jaws_turbdb::{CostModel, DataMode, DbConfig};
    use jaws_workload::{GenConfig, JobKind, TraceGenerator};

    fn small_db_config() -> DbConfig {
        DbConfig {
            grid_side: 32,
            atom_side: 8,
            ghost: 2,
            timesteps: 8,
            dt: 0.002,
            seed: 5,
        }
    }

    fn run_kind(kind: SchedulerKind, seed: u64) -> RunReport {
        let trace = TraceGenerator::new(GenConfig::small(seed)).generate();
        let db = build_db(
            small_db_config(),
            CostModel::paper_testbed(),
            DataMode::Virtual,
            16,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(kind, MetricParams::paper_testbed(), 25, 10_000.0);
        let mut ex = Executor::new(db, sched, SimConfig::default());
        ex.run(&trace)
    }

    #[test]
    fn every_scheduler_drains_the_trace() {
        let trace = TraceGenerator::new(GenConfig::small(5)).generate();
        let total = trace.query_count() as u64;
        for kind in SchedulerKind::evaluation_set() {
            let r = run_kind(kind, 5);
            assert_eq!(
                r.queries_completed,
                total,
                "{} left queries behind",
                kind.name()
            );
            assert!(!r.truncated, "{} truncated", kind.name());
            assert_eq!(r.jobs_completed, trace.jobs.len() as u64);
            assert!(r.throughput_qps > 0.0);
            assert!(r.mean_response_ms > 0.0);
        }
    }

    #[test]
    fn batch_schedulers_beat_noshare_on_contended_traces() {
        let noshare = run_kind(SchedulerKind::NoShare, 7);
        let jaws2 = run_kind(SchedulerKind::Jaws2 { batch_k: 10 }, 7);
        assert!(
            jaws2.throughput_qps > noshare.throughput_qps,
            "JAWS {:.3} q/s vs NoShare {:.3} q/s",
            jaws2.throughput_qps,
            noshare.throughput_qps
        );
    }

    #[test]
    fn shared_scans_reduce_disk_reads() {
        let noshare = run_kind(SchedulerKind::NoShare, 9);
        let liferaft2 = run_kind(SchedulerKind::LifeRaft2, 9);
        assert!(
            liferaft2.disk.reads < noshare.disk.reads,
            "LifeRaft {} reads vs NoShare {}",
            liferaft2.disk.reads,
            noshare.disk.reads
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = run_kind(SchedulerKind::Jaws2 { batch_k: 10 }, 3);
        let b = run_kind(SchedulerKind::Jaws2 { batch_k: 10 }, 3);
        assert_eq!(a.queries_completed, b.queries_completed);
        assert_eq!(a.disk.reads, b.disk.reads);
        assert!((a.makespan_ms - b.makespan_ms).abs() < 1e-6);
        assert!((a.throughput_qps - b.throughput_qps).abs() < 1e-9);
    }

    #[test]
    fn response_times_are_measured_from_submission() {
        // A single one-query job arriving at t=1000 must have response time
        // roughly its own service time, not counted from t=0.
        use jaws_morton::MortonKey;
        use jaws_workload::{Footprint, Job, Query, QueryOp, Trace};
        let q = Query {
            id: 1,
            user: 0,
            op: QueryOp::Velocity,
            timestep: 0,
            footprint: Footprint::from_pairs([(MortonKey(0), 100u32)]),
        };
        let trace = Trace::new(
            8,
            4,
            vec![Job {
                id: 1,
                user: 0,
                kind: JobKind::Batched,
                campaign: 1,
                queries: vec![q],
                arrival_ms: 1000.0,
                think_ms: 0.0,
            }],
        );
        let db = build_db(
            small_db_config(),
            CostModel {
                seek_ms: 10.0,
                atom_read_ms: 100.0,
                position_compute_ms: 1.0,
                batch_dispatch_ms: 0.0,
                stencil_neighbors: 0,
            },
            DataMode::Virtual,
            16,
            CachePolicyKind::Lru,
        );
        let sched = build_scheduler(
            SchedulerKind::LifeRaft2,
            MetricParams {
                atom_read_ms: 100.0,
                position_compute_ms: 1.0,
                atoms_per_timestep: 64,
            },
            25,
            10_000.0,
        );
        let mut ex = Executor::new(db, sched, SimConfig::default());
        let r = ex.run(&trace);
        // Service: seek 10 + read 100 + compute 100 = 210 ms.
        assert!(
            (r.mean_response_ms - 210.0).abs() < 1e-6,
            "{}",
            r.mean_response_ms
        );
    }

    #[test]
    fn time_cap_truncates_gracefully() {
        let trace = TraceGenerator::new(GenConfig::small(11)).generate();
        let db = build_db(
            small_db_config(),
            CostModel::paper_testbed(),
            DataMode::Virtual,
            16,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(
            SchedulerKind::NoShare,
            MetricParams::paper_testbed(),
            25,
            10_000.0,
        );
        let mut ex = Executor::new(
            db,
            sched,
            SimConfig {
                max_sim_ms: 10_000.0,
                ..SimConfig::default()
            },
        );
        let r = ex.run(&trace);
        assert!(r.truncated);
        assert!(r.queries_completed < trace.query_count() as u64);
    }

    #[test]
    fn urc_cache_gets_scheduler_knowledge() {
        let trace = TraceGenerator::new(GenConfig::small(13)).generate();
        let db = build_db(
            small_db_config(),
            CostModel::paper_testbed(),
            DataMode::Virtual,
            8,
            CachePolicyKind::Urc,
        );
        let sched = build_scheduler(
            SchedulerKind::Jaws2 { batch_k: 8 },
            MetricParams::paper_testbed(),
            25,
            10_000.0,
        );
        let mut ex = Executor::new(db, sched, SimConfig::default());
        let r = ex.run(&trace);
        assert_eq!(r.cache_policy, "URC");
        assert!(r.cache.hits > 0, "URC never hit");
        assert!(!r.truncated);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use crate::setup::{build_db, build_scheduler, CachePolicyKind, SchedulerKind};
    use jaws_morton::MortonKey;
    use jaws_scheduler::MetricParams;
    use jaws_turbdb::{CostModel, DataMode, DbConfig};
    use jaws_workload::{Footprint, Job, JobKind, Query, QueryOp, Trace};

    /// A slow single tracking chain: plenty of idle time for the prefetcher.
    fn chain_trace() -> Trace {
        let q = |id: u64, ts: u32, x: u32| Query {
            id,
            user: 0,
            op: QueryOp::ParticleTrack,
            timestep: ts,
            footprint: Footprint::from_pairs([(MortonKey::from_coords(x, 1, 1), 200u32)]),
        };
        Trace::new(
            8,
            4,
            vec![Job {
                id: 1,
                user: 0,
                kind: JobKind::Ordered,
                campaign: 1,
                // Steady +1 drift in x, one timestep per query.
                queries: (0..6).map(|i| q(i + 1, i as u32, (i as u32) % 4)).collect(),
                arrival_ms: 0.0,
                think_ms: 5_000.0,
            }],
        )
    }

    fn run_chain(prefetch: bool) -> (RunReport, u64) {
        let db = build_db(
            DbConfig {
                grid_side: 32,
                atom_side: 8,
                ghost: 2,
                timesteps: 8,
                dt: 0.002,
                seed: 9,
            },
            CostModel::paper_testbed(),
            DataMode::Virtual,
            16,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(
            SchedulerKind::Jaws2 { batch_k: 8 },
            MetricParams::paper_testbed(),
            25,
            10_000.0,
        );
        let mut ex = Executor::new(
            db,
            sched,
            SimConfig {
                prefetch,
                ..SimConfig::default()
            },
        );
        let r = ex.run(&chain_trace());
        (r, ex.prefetch_reads())
    }

    #[test]
    fn prefetching_issues_speculative_reads_and_cuts_latency() {
        let (base, base_pf) = run_chain(false);
        let (pf, pf_reads) = run_chain(true);
        assert_eq!(base_pf, 0);
        assert!(pf_reads > 0, "predictor never fired");
        assert_eq!(pf.queries_completed, base.queries_completed);
        // Later chain queries hit prefetched atoms: cache hits rise and mean
        // response time drops.
        assert!(
            pf.cache.hits > base.cache.hits,
            "prefetch hits {} vs {}",
            pf.cache.hits,
            base.cache.hits
        );
        assert!(
            pf.mean_response_ms < base.mean_response_ms,
            "prefetch rt {:.1} vs base {:.1}",
            pf.mean_response_ms,
            base.mean_response_ms
        );
    }

    #[test]
    fn prefetching_never_loses_queries() {
        let (pf, _) = run_chain(true);
        assert!(!pf.truncated);
        assert_eq!(pf.jobs_completed, 1);
    }
}
