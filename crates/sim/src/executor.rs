//! The discrete-event executor.

use crate::report::{Percentiles, RunReport};
use jaws_morton::AtomId;
use jaws_scheduler::{Batch, Prefetcher, Residency, Scheduler};
use jaws_turbdb::TurbDb;
use jaws_workload::{JobKind, QueryId, Trace};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Executor knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated-time cap; runs report `truncated = true` when they hit it.
    pub max_sim_ms: f64,
    /// Re-poll interval while the scheduler is idle but holds gated work.
    pub idle_recheck_ms: f64,
    /// Enable trajectory-based prefetching (§VII): when the pipeline would
    /// otherwise idle, extrapolated next-step atoms of ordered jobs are read
    /// into the cache ahead of demand.
    pub prefetch: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_sim_ms: 1e10,
            idle_recheck_ms: 500.0,
            prefetch: false,
        }
    }
}

#[derive(Debug)]
enum Event {
    JobArrival(usize),
    QuerySubmit(usize, usize),
    BatchDone(Batch),
    /// A speculative read issued during idle time finished.
    PrefetchDone,
    IdleCheck,
}

/// Wrapper giving f64 event times a total order in the heap.
#[derive(Debug, PartialEq)]
struct Key(f64, u64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Adapter exposing buffer-pool residency (φ of Eq. 1) to the scheduler.
struct DbResidency<'a>(&'a TurbDb);

impl Residency for DbResidency<'_> {
    fn is_resident(&self, atom: &AtomId) -> bool {
        self.0.is_resident(atom)
    }

    fn residency_epoch(&self) -> Option<u64> {
        Some(self.0.residency_epoch())
    }

    fn residency_changes_since(&self, since: u64) -> Option<Vec<(AtomId, bool)>> {
        self.0.residency_changes_since(since)
    }
}

/// One simulated cluster node: a database plus a scheduler.
pub struct Executor {
    db: TurbDb,
    scheduler: Box<dyn Scheduler>,
    cfg: SimConfig,
    heap: BinaryHeap<Reverse<(Key, u64)>>,
    events: HashMap<u64, Event>,
    next_event: u64,
    now_ms: f64,
    busy: bool,
    idle_check_pending: bool,
    prefetcher: Option<Prefetcher>,
    prefetch_reads: u64,
    declared_jobs: Option<Vec<jaws_workload::Job>>,
    declarations_overridden: bool,
    response_log: Vec<(QueryId, f64)>,
}

impl Executor {
    /// Builds an executor over an opened database and a scheduler.
    pub fn new(db: TurbDb, scheduler: Box<dyn Scheduler>, cfg: SimConfig) -> Self {
        let prefetcher = cfg
            .prefetch
            .then(|| Prefetcher::new(db.config().atoms_per_side(), db.config().timesteps));
        Executor {
            db,
            scheduler,
            cfg,
            heap: BinaryHeap::new(),
            events: HashMap::new(),
            next_event: 0,
            now_ms: 0.0,
            busy: false,
            idle_check_pending: false,
            prefetcher,
            prefetch_reads: 0,
            declared_jobs: None,
            declarations_overridden: false,
            response_log: Vec::new(),
        }
    }

    /// Per-query response times of the last run, in completion order — used
    /// by experiments that slice latency by query class (e.g. the CasJobs
    /// starvation comparison).
    pub fn response_log(&self) -> &[(QueryId, f64)] {
        &self.response_log
    }

    /// Speculative atom reads issued by the prefetcher.
    pub fn prefetch_reads(&self) -> u64 {
        self.prefetch_reads
    }

    /// Overrides the job declarations the scheduler sees: instead of each
    /// trace job at its arrival, these jobs are declared up front. Execution
    /// semantics (arrivals, precedence, think times) still follow the trace —
    /// only the scheduler's *knowledge* of job structure changes. Used to
    /// evaluate heuristic job identification (§IV-A) against ground truth.
    pub fn declare_jobs(&mut self, jobs: Vec<jaws_workload::Job>) {
        self.declared_jobs = Some(jobs);
    }

    /// Access to the database (post-run inspection).
    pub fn db(&self) -> &TurbDb {
        &self.db
    }

    /// Access to the scheduler (post-run inspection).
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }

    fn push(&mut self, at_ms: f64, ev: Event) {
        let id = self.next_event;
        self.next_event += 1;
        self.events.insert(id, ev);
        self.heap.push(Reverse((Key(at_ms, id), id)));
    }

    /// Replays `trace` to completion (or the simulated-time cap) and reports.
    ///
    /// # Panics
    ///
    /// Panics if the trace geometry does not match the database (timesteps or
    /// atom grid).
    pub fn run(&mut self, trace: &Trace) -> RunReport {
        let cfg = self.db.config();
        assert!(
            trace.timesteps <= cfg.timesteps,
            "trace addresses timestep {} beyond the database's {}",
            trace.timesteps,
            cfg.timesteps
        );
        assert_eq!(
            trace.atoms_per_side,
            cfg.atoms_per_side(),
            "trace atom grid does not match the database"
        );
        // Query → (job index, query index) for completion routing.
        let mut locate: HashMap<QueryId, (usize, usize)> = HashMap::new();
        for (ji, job) in trace.jobs.iter().enumerate() {
            for (qi, q) in job.queries.iter().enumerate() {
                locate.insert(q.id, (ji, qi));
            }
        }
        let total_queries: usize = trace.query_count();
        let mut submit_ms: HashMap<QueryId, f64> = HashMap::new();
        let mut responses: Vec<f64> = Vec::with_capacity(total_queries);
        let mut jobs_completed = 0u64;
        let mut remaining_per_job: Vec<usize> =
            trace.jobs.iter().map(|j| j.queries.len()).collect();
        let first_arrival = trace.jobs.first().map_or(0.0, |j| j.arrival_ms);
        let mut last_completion = first_arrival;
        let mut truncated = false;

        if let Some(decls) = self.declared_jobs.take() {
            self.declarations_overridden = true;
            for d in &decls {
                self.scheduler.job_declared(d, 0.0);
            }
        }
        for (ji, job) in trace.jobs.iter().enumerate() {
            self.push(job.arrival_ms, Event::JobArrival(ji));
        }

        while let Some(Reverse((Key(at, _), id))) = self.heap.pop() {
            if at > self.cfg.max_sim_ms {
                truncated = true;
                break;
            }
            self.now_ms = self.now_ms.max(at);
            // lint: invariant — push() stores a payload under every heap id
            let ev = self.events.remove(&id).expect("event payload");
            match ev {
                Event::JobArrival(ji) => {
                    let job = &trace.jobs[ji];
                    if !self.declarations_overridden {
                        self.scheduler.job_declared(job, self.now_ms);
                    }
                    match job.kind {
                        JobKind::Batched => {
                            // The client loop streams order-independent
                            // queries at its pacing cadence.
                            for (qi, _) in job.queries.iter().enumerate() {
                                self.push(
                                    self.now_ms + qi as f64 * job.think_ms,
                                    Event::QuerySubmit(ji, qi),
                                );
                            }
                        }
                        JobKind::Ordered => {
                            // lint: invariant — trace generators never emit a
                            // job with zero queries
                            let q = job.queries.first().expect("ordered job has a first query");
                            submit_ms.insert(q.id, self.now_ms);
                            self.scheduler.query_available(q, self.now_ms);
                        }
                    }
                }
                Event::QuerySubmit(ji, qi) => {
                    let q = &trace.jobs[ji].queries[qi];
                    submit_ms.insert(q.id, self.now_ms);
                    if let Some(p) = &mut self.prefetcher {
                        if trace.jobs[ji].kind == JobKind::Ordered {
                            p.observe(trace.jobs[ji].id, q);
                        }
                    }
                    self.scheduler.query_available(q, self.now_ms);
                }
                Event::BatchDone(batch) => {
                    self.busy = false;
                    for &qid in &batch.completing_queries {
                        // lint: invariant — schedulers only complete queries
                        // previously handed to query_available
                        let submitted = submit_ms
                            .get(&qid)
                            .copied()
                            .expect("completed query was submitted");
                        let rt = self.now_ms - submitted;
                        responses.push(rt);
                        self.response_log.push((qid, rt));
                        last_completion = self.now_ms;
                        self.scheduler.on_query_complete(qid, rt, self.now_ms);
                        if self.scheduler.take_run_boundary() {
                            self.db.end_run();
                        }
                        let (ji, qi) = locate[&qid];
                        let job = &trace.jobs[ji];
                        remaining_per_job[ji] -= 1;
                        if remaining_per_job[ji] == 0 {
                            jobs_completed += 1;
                        }
                        if job.kind == JobKind::Ordered && qi + 1 < job.queries.len() {
                            self.push(self.now_ms + job.think_ms, Event::QuerySubmit(ji, qi + 1));
                        }
                    }
                }
                Event::PrefetchDone => {
                    self.busy = false;
                }
                Event::IdleCheck => {
                    self.idle_check_pending = false;
                }
            }
            self.dispatch();
        }

        let completed = responses.len() as u64;
        if completed < total_queries as u64 {
            truncated = true;
        }
        let makespan_ms = (last_completion - first_arrival).max(1e-9);
        let mean_response_ms = if responses.is_empty() {
            0.0
        } else {
            responses.iter().sum::<f64>() / responses.len() as f64
        };
        let cache = self.db.cache_stats();
        RunReport {
            scheduler: self.scheduler.name().to_string(),
            cache_policy: self.db.cache_policy_name().to_string(),
            queries_completed: completed,
            jobs_completed,
            makespan_ms,
            throughput_qps: completed as f64 / (makespan_ms / 1000.0),
            mean_response_ms,
            response: Percentiles::from_samples(&mut responses),
            cache,
            disk: self.db.disk_stats(),
            scheduler_stats: self.scheduler.stats(),
            cache_overhead_ms_per_query: if completed == 0 {
                0.0
            } else {
                cache.policy_overhead_ns as f64 / completed as f64 / 1e6
            },
            seconds_per_query: if completed == 0 {
                0.0
            } else {
                makespan_ms / 1000.0 / completed as f64
            },
            alpha_final: self.scheduler.alpha(),
            truncated,
        }
    }

    /// Starts the next batch if the pipeline is free and work is schedulable;
    /// otherwise arranges a wake-up if gated work exists.
    fn dispatch(&mut self) {
        if self.busy {
            return;
        }
        let batch = {
            let res = DbResidency(&self.db);
            self.scheduler.next_batch(self.now_ms, &res)
        };
        match batch {
            Some(batch) => {
                debug_assert!(!batch.is_empty(), "scheduler produced an empty batch");
                let snapshot = {
                    let res = DbResidency(&self.db);
                    self.scheduler.utility_snapshot(&res)
                };
                let mut service_ms = self.db.batch_dispatch_ms();
                // First pass: the batch atoms themselves, in Morton order
                // (sequential on disk when contiguous).
                for group in &batch.atoms {
                    let r = self.db.read_atom(group.atom, &snapshot);
                    service_ms += r.io_ms;
                    service_ms += self.db.compute_cost_ms(group.positions());
                }
                // Second pass: stencil spill-over into neighboring atoms
                // (§V locality of reference). Neighbors co-scheduled in this
                // batch, or still cached, cost nothing extra.
                for group in &batch.atoms {
                    for n in self.db.stencil_neighbor_ids(group.atom) {
                        let r = self.db.read_atom(n, &snapshot);
                        service_ms += r.io_ms;
                    }
                }
                self.busy = true;
                self.push(self.now_ms + service_ms, Event::BatchDone(batch));
            }
            None => {
                // Nothing schedulable: spend the idle capacity on a
                // speculative read, if the trajectory predictor has one.
                if let Some(p) = &mut self.prefetcher {
                    let candidate = p.next_prefetch(|a| self.db.is_resident(a));
                    if let Some(atom) = candidate {
                        let snapshot = {
                            let res = DbResidency(&self.db);
                            self.scheduler.utility_snapshot(&res)
                        };
                        let r = self.db.read_atom(atom, &snapshot);
                        self.prefetch_reads += 1;
                        self.busy = true;
                        self.push(self.now_ms + r.io_ms, Event::PrefetchDone);
                        return;
                    }
                }
                // If gated work exists, poll again soon so the starvation
                // valve can fire even with no other events.
                if self.scheduler.has_pending() && !self.idle_check_pending {
                    self.idle_check_pending = true;
                    let at = self.now_ms + self.cfg.idle_recheck_ms;
                    self.push(at, Event::IdleCheck);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{build_db, build_scheduler, CachePolicyKind, SchedulerKind};
    use jaws_scheduler::MetricParams;
    use jaws_turbdb::{CostModel, DataMode, DbConfig};
    use jaws_workload::{GenConfig, TraceGenerator};

    fn small_db_config() -> DbConfig {
        DbConfig {
            grid_side: 32,
            atom_side: 8,
            ghost: 2,
            timesteps: 8,
            dt: 0.002,
            seed: 5,
        }
    }

    fn run_kind(kind: SchedulerKind, seed: u64) -> RunReport {
        let trace = TraceGenerator::new(GenConfig::small(seed)).generate();
        let db = build_db(
            small_db_config(),
            CostModel::paper_testbed(),
            DataMode::Virtual,
            16,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(kind, MetricParams::paper_testbed(), 25, 10_000.0);
        let mut ex = Executor::new(db, sched, SimConfig::default());
        ex.run(&trace)
    }

    #[test]
    fn every_scheduler_drains_the_trace() {
        let trace = TraceGenerator::new(GenConfig::small(5)).generate();
        let total = trace.query_count() as u64;
        for kind in SchedulerKind::evaluation_set() {
            let r = run_kind(kind, 5);
            assert_eq!(
                r.queries_completed,
                total,
                "{} left queries behind",
                kind.name()
            );
            assert!(!r.truncated, "{} truncated", kind.name());
            assert_eq!(r.jobs_completed, trace.jobs.len() as u64);
            assert!(r.throughput_qps > 0.0);
            assert!(r.mean_response_ms > 0.0);
        }
    }

    #[test]
    fn batch_schedulers_beat_noshare_on_contended_traces() {
        let noshare = run_kind(SchedulerKind::NoShare, 7);
        let jaws2 = run_kind(SchedulerKind::Jaws2 { batch_k: 10 }, 7);
        assert!(
            jaws2.throughput_qps > noshare.throughput_qps,
            "JAWS {:.3} q/s vs NoShare {:.3} q/s",
            jaws2.throughput_qps,
            noshare.throughput_qps
        );
    }

    #[test]
    fn shared_scans_reduce_disk_reads() {
        let noshare = run_kind(SchedulerKind::NoShare, 9);
        let liferaft2 = run_kind(SchedulerKind::LifeRaft2, 9);
        assert!(
            liferaft2.disk.reads < noshare.disk.reads,
            "LifeRaft {} reads vs NoShare {}",
            liferaft2.disk.reads,
            noshare.disk.reads
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = run_kind(SchedulerKind::Jaws2 { batch_k: 10 }, 3);
        let b = run_kind(SchedulerKind::Jaws2 { batch_k: 10 }, 3);
        assert_eq!(a.queries_completed, b.queries_completed);
        assert_eq!(a.disk.reads, b.disk.reads);
        assert!((a.makespan_ms - b.makespan_ms).abs() < 1e-6);
        assert!((a.throughput_qps - b.throughput_qps).abs() < 1e-9);
    }

    #[test]
    fn response_times_are_measured_from_submission() {
        // A single one-query job arriving at t=1000 must have response time
        // roughly its own service time, not counted from t=0.
        use jaws_morton::MortonKey;
        use jaws_workload::{Footprint, Job, Query, QueryOp, Trace};
        let q = Query {
            id: 1,
            user: 0,
            op: QueryOp::Velocity,
            timestep: 0,
            footprint: Footprint::from_pairs([(MortonKey(0), 100u32)]),
        };
        let trace = Trace::new(
            8,
            4,
            vec![Job {
                id: 1,
                user: 0,
                kind: JobKind::Batched,
                campaign: 1,
                queries: vec![q],
                arrival_ms: 1000.0,
                think_ms: 0.0,
            }],
        );
        let db = build_db(
            small_db_config(),
            CostModel {
                seek_ms: 10.0,
                atom_read_ms: 100.0,
                position_compute_ms: 1.0,
                batch_dispatch_ms: 0.0,
                stencil_neighbors: 0,
            },
            DataMode::Virtual,
            16,
            CachePolicyKind::Lru,
        );
        let sched = build_scheduler(
            SchedulerKind::LifeRaft2,
            MetricParams {
                atom_read_ms: 100.0,
                position_compute_ms: 1.0,
                atoms_per_timestep: 64,
            },
            25,
            10_000.0,
        );
        let mut ex = Executor::new(db, sched, SimConfig::default());
        let r = ex.run(&trace);
        // Service: seek 10 + read 100 + compute 100 = 210 ms.
        assert!(
            (r.mean_response_ms - 210.0).abs() < 1e-6,
            "{}",
            r.mean_response_ms
        );
    }

    #[test]
    fn time_cap_truncates_gracefully() {
        let trace = TraceGenerator::new(GenConfig::small(11)).generate();
        let db = build_db(
            small_db_config(),
            CostModel::paper_testbed(),
            DataMode::Virtual,
            16,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(
            SchedulerKind::NoShare,
            MetricParams::paper_testbed(),
            25,
            10_000.0,
        );
        let mut ex = Executor::new(
            db,
            sched,
            SimConfig {
                max_sim_ms: 10_000.0,
                ..SimConfig::default()
            },
        );
        let r = ex.run(&trace);
        assert!(r.truncated);
        assert!(r.queries_completed < trace.query_count() as u64);
    }

    #[test]
    fn urc_cache_gets_scheduler_knowledge() {
        let trace = TraceGenerator::new(GenConfig::small(13)).generate();
        let db = build_db(
            small_db_config(),
            CostModel::paper_testbed(),
            DataMode::Virtual,
            8,
            CachePolicyKind::Urc,
        );
        let sched = build_scheduler(
            SchedulerKind::Jaws2 { batch_k: 8 },
            MetricParams::paper_testbed(),
            25,
            10_000.0,
        );
        let mut ex = Executor::new(db, sched, SimConfig::default());
        let r = ex.run(&trace);
        assert_eq!(r.cache_policy, "URC");
        assert!(r.cache.hits > 0, "URC never hit");
        assert!(!r.truncated);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use crate::setup::{build_db, build_scheduler, CachePolicyKind, SchedulerKind};
    use jaws_morton::MortonKey;
    use jaws_scheduler::MetricParams;
    use jaws_turbdb::{CostModel, DataMode, DbConfig};
    use jaws_workload::{Footprint, Job, Query, QueryOp, Trace};

    /// A slow single tracking chain: plenty of idle time for the prefetcher.
    fn chain_trace() -> Trace {
        let q = |id: u64, ts: u32, x: u32| Query {
            id,
            user: 0,
            op: QueryOp::ParticleTrack,
            timestep: ts,
            footprint: Footprint::from_pairs([(MortonKey::from_coords(x, 1, 1), 200u32)]),
        };
        Trace::new(
            8,
            4,
            vec![Job {
                id: 1,
                user: 0,
                kind: JobKind::Ordered,
                campaign: 1,
                // Steady +1 drift in x, one timestep per query.
                queries: (0..6).map(|i| q(i + 1, i as u32, (i as u32) % 4)).collect(),
                arrival_ms: 0.0,
                think_ms: 5_000.0,
            }],
        )
    }

    fn run_chain(prefetch: bool) -> (RunReport, u64) {
        let db = build_db(
            DbConfig {
                grid_side: 32,
                atom_side: 8,
                ghost: 2,
                timesteps: 8,
                dt: 0.002,
                seed: 9,
            },
            CostModel::paper_testbed(),
            DataMode::Virtual,
            16,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(
            SchedulerKind::Jaws2 { batch_k: 8 },
            MetricParams::paper_testbed(),
            25,
            10_000.0,
        );
        let mut ex = Executor::new(
            db,
            sched,
            SimConfig {
                prefetch,
                ..SimConfig::default()
            },
        );
        let r = ex.run(&chain_trace());
        (r, ex.prefetch_reads())
    }

    #[test]
    fn prefetching_issues_speculative_reads_and_cuts_latency() {
        let (base, base_pf) = run_chain(false);
        let (pf, pf_reads) = run_chain(true);
        assert_eq!(base_pf, 0);
        assert!(pf_reads > 0, "predictor never fired");
        assert_eq!(pf.queries_completed, base.queries_completed);
        // Later chain queries hit prefetched atoms: cache hits rise and mean
        // response time drops.
        assert!(
            pf.cache.hits > base.cache.hits,
            "prefetch hits {} vs {}",
            pf.cache.hits,
            base.cache.hits
        );
        assert!(
            pf.mean_response_ms < base.mean_response_ms,
            "prefetch rt {:.1} vs base {:.1}",
            pf.mean_response_ms,
            base.mean_response_ms
        );
    }

    #[test]
    fn prefetching_never_loses_queries() {
        let (pf, _) = run_chain(true);
        assert!(!pf.truncated);
        assert_eq!(pf.jobs_completed, 1);
    }
}
