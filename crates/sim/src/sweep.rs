//! Parallel parameter sweeps for Figs. 11 and 12.

use crate::executor::{Executor, SimConfig};
use crate::report::RunReport;
use crate::setup::{build_db, build_scheduler, CachePolicyKind, SchedulerKind};
use jaws_scheduler::MetricParams;
use jaws_turbdb::{CostModel, DataMode, DbConfig};
use jaws_workload::Trace;
use serde::{Deserialize, Serialize};

/// One point of a sweep: a fully specified run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSpec {
    /// Run label carried into the output (e.g. `"speedup=2"`).
    pub label: String,
    /// Database geometry.
    pub db: DbConfig,
    /// Cost model.
    pub cost: CostModel,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Cache policy.
    pub cache_policy: CachePolicyKind,
    /// Cache capacity in atoms (256 ≙ the paper's 2 GB).
    pub cache_atoms: usize,
    /// Run length `r`.
    pub run_len: usize,
    /// Gate timeout, ms.
    pub gate_timeout_ms: f64,
    /// Arrival-rate speed-up applied to the trace (Fig. 11).
    pub speedup: f64,
}

impl RunSpec {
    /// Executes this spec against `trace` (the speed-up is applied here).
    pub fn execute(&self, trace: &Trace) -> RunReport {
        let scaled;
        let trace = if (self.speedup - 1.0).abs() > 1e-12 {
            scaled = trace.speedup(self.speedup);
            &scaled
        } else {
            trace
        };
        let db = build_db(
            self.db,
            self.cost,
            DataMode::Virtual,
            self.cache_atoms,
            self.cache_policy,
        );
        let params = MetricParams {
            atom_read_ms: self.cost.atom_read_ms,
            position_compute_ms: self.cost.position_compute_ms,
            atoms_per_timestep: self.db.atoms_per_timestep(),
        };
        let sched = build_scheduler(self.scheduler, params, self.run_len, self.gate_timeout_ms);
        let mut ex = Executor::new(db, sched, SimConfig::default());
        ex.run(trace)
    }
}

/// Runs every spec against `trace` on the [`jaws_par`] worker pool
/// (`JAWS_THREADS` workers, default `available_parallelism`), preserving
/// input order in the output. Each run is fully independent — its own
/// database, cache and scheduler — so the reports are identical to serial
/// execution at any thread count.
pub fn run_parallel(specs: &[RunSpec], trace: &Trace) -> Vec<(RunSpec, RunReport)> {
    jaws_par::map(specs, |s| (s.clone(), s.execute(trace)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaws_workload::{GenConfig, TraceGenerator};

    fn spec(label: &str, scheduler: SchedulerKind, speedup: f64) -> RunSpec {
        RunSpec {
            label: label.to_string(),
            db: DbConfig {
                grid_side: 32,
                atom_side: 8,
                ghost: 2,
                timesteps: 8,
                dt: 0.002,
                seed: 5,
            },
            cost: CostModel::paper_testbed(),
            scheduler,
            cache_policy: CachePolicyKind::LruK,
            cache_atoms: 16,
            run_len: 25,
            gate_timeout_ms: 10_000.0,
            speedup,
        }
    }

    #[test]
    fn parallel_sweep_preserves_order_and_matches_serial() {
        let trace = TraceGenerator::new(GenConfig::small(21)).generate();
        let specs = vec![
            spec("a", SchedulerKind::NoShare, 1.0),
            spec("b", SchedulerKind::LifeRaft2, 1.0),
            spec("c", SchedulerKind::Jaws2 { batch_k: 8 }, 1.0),
        ];
        let par = run_parallel(&specs, &trace);
        assert_eq!(par.len(), 3);
        assert_eq!(par[0].0.label, "a");
        assert_eq!(par[2].0.label, "c");
        for (s, r) in &par {
            let serial = s.execute(&trace);
            assert_eq!(r.queries_completed, serial.queries_completed, "{}", s.label);
            assert!((r.throughput_qps - serial.throughput_qps).abs() < 1e-9);
        }
    }

    #[test]
    fn speedup_compresses_the_makespan_for_arrival_bound_runs() {
        let trace = TraceGenerator::new(GenConfig::small(22)).generate();
        let slow = spec("1x", SchedulerKind::Jaws2 { batch_k: 8 }, 1.0).execute(&trace);
        let fast = spec("4x", SchedulerKind::Jaws2 { batch_k: 8 }, 4.0).execute(&trace);
        assert!(
            fast.makespan_ms < slow.makespan_ms,
            "speed-up should compress an arrival-bound run: {} vs {}",
            fast.makespan_ms,
            slow.makespan_ms
        );
    }
}
