//! Allocation-reuse primitives for the JAWS hot paths.
//!
//! The discrete-event engine and the scheduler's dispatch path run once per
//! simulated event — millions of times per experiment — and every transient
//! `Vec` they allocate there is pure allocator traffic: the buffers have the
//! same shape every round and could simply be reused. This crate provides the
//! three shapes those paths need:
//!
//! * [`VecPool`] — a free-list of cleared `Vec<T>`s. `take` hands out a
//!   buffer with its old capacity intact; `put` clears and shelves it.
//!   Buffers that escape into long-lived structures simply never come back —
//!   the pool is a cache, not an owner.
//! * [`Lanes`] — a fixed set of reusable buckets (one per cluster node) for
//!   group-by-node scatters, replacing a fresh `BTreeMap<u32, Vec<T>>` per
//!   query fan-out. Iteration is always in ascending lane order, so the
//!   deterministic-order obligations of the engine hold by construction.
//! * [`Slab`] — an index-keyed arena with an intrusive free-list: O(1)
//!   insert/remove with stable keys and no per-entry allocation after
//!   warm-up.
//!
//! Everything here is plain safe Rust over `Vec`; the win is reuse, not
//! custom memory management. None of these types are thread-safe — each hot
//! path owns its scratch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A free-list of cleared `Vec<T>` buffers.
///
/// `take` pops a recycled buffer (empty, capacity preserved) or allocates a
/// fresh one; `put` clears a buffer and shelves it for the next `take`. The
/// pool holds at most [`VecPool::MAX_SHELVED`] buffers — beyond that, `put`
/// simply drops, so a one-off burst cannot pin memory forever.
#[derive(Debug)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        VecPool { free: Vec::new() }
    }
}

impl<T> VecPool<T> {
    /// Buffers shelved at most; `put` beyond this drops the buffer.
    pub const MAX_SHELVED: usize = 64;

    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out an empty buffer, reusing a shelved one when available.
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Clears `v` and shelves it for reuse (or drops it if the shelf is
    /// full). Clearing drops the elements now, so `put` is safe for element
    /// types with meaningful destructors.
    pub fn put(&mut self, mut v: Vec<T>) {
        if self.free.len() < Self::MAX_SHELVED && v.capacity() > 0 {
            v.clear();
            self.free.push(v);
        }
    }

    /// Buffers currently shelved (diagnostics).
    pub fn shelved(&self) -> usize {
        self.free.len()
    }
}

/// A fixed set of reusable buckets for group-by-lane scatters.
///
/// The cluster fan-out path groups a query's footprint atoms by owning node.
/// With a `BTreeMap<u32, Vec<_>>` that is one map allocation plus one `Vec`
/// per touched node *per query*; `Lanes` keeps one bucket per node alive
/// across queries instead. [`Lanes::drain`] visits the non-empty buckets in
/// ascending lane order — the same order the `BTreeMap` iteration produced —
/// and leaves every bucket empty (capacity retained) for the next query.
#[derive(Debug, Default)]
pub struct Lanes<T> {
    lanes: Vec<Vec<T>>,
}

impl<T> Lanes<T> {
    /// Creates `n` empty lanes.
    pub fn new(n: usize) -> Self {
        Lanes {
            lanes: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when there are no lanes at all.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Items currently in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_len(&self, lane: usize) -> usize {
        self.lanes[lane].len()
    }

    /// Appends `item` to lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn push(&mut self, lane: usize, item: T) {
        self.lanes[lane].push(item);
    }

    /// Visits every non-empty lane in ascending order, handing each bucket's
    /// contents out by `mem::take` (the callee owns the `Vec`). A taken
    /// bucket's capacity leaves with it; buckets the callee gives back via
    /// [`Lanes::restore`] keep their capacity for the next round.
    pub fn drain(&mut self, mut f: impl FnMut(usize, Vec<T>)) {
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            if !lane.is_empty() {
                f(i, std::mem::take(lane));
            }
        }
    }

    /// Takes lane `lane`'s bucket out by `mem::take`, leaving an empty slot.
    ///
    /// This is the borrow-friendly sibling of [`Lanes::drain`] for loops that
    /// need `&mut self` access between visiting lanes (take the bucket, use
    /// it, [`Lanes::restore`] it).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn take_lane(&mut self, lane: usize) -> Vec<T> {
        std::mem::take(&mut self.lanes[lane])
    }

    /// Returns a drained bucket's `Vec` to lane `lane` so its capacity is
    /// reused. The buffer is cleared here; empty or out-of-range restores are
    /// dropped silently.
    pub fn restore(&mut self, lane: usize, mut v: Vec<T>) {
        if let Some(slot) = self.lanes.get_mut(lane) {
            if slot.capacity() < v.capacity() {
                v.clear();
                *slot = v;
            }
        }
    }
}

/// An index-keyed arena with an intrusive free-list.
///
/// `insert` returns a stable `usize` key; `remove` frees the slot for reuse.
/// After warm-up, insert/remove cycles perform no allocation. Keys are only
/// meaningful to the slab that issued them; accessing a vacant key returns
/// `None` (or panics on `remove`, which is a caller bug).
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Entry<T>>,
    /// Head of the free-list (index into `slots`), or `usize::MAX`.
    free_head: usize,
    len: usize,
}

#[derive(Debug)]
enum Entry<T> {
    Occupied(T),
    /// Next free slot index, or `usize::MAX` for the list tail.
    Vacant(usize),
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: usize::MAX,
            len: 0,
        }
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, reusing a vacant slot when one exists.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        if self.free_head != usize::MAX {
            let key = self.free_head;
            match self.slots[key] {
                Entry::Vacant(next) => {
                    self.free_head = next;
                    self.slots[key] = Entry::Occupied(value);
                    key
                }
                // free_head only ever points at Vacant entries, so this arm
                // is unreachable by construction.
                Entry::Occupied(_) => unreachable!("free-list points at an occupied slot"),
            }
        } else {
            self.slots.push(Entry::Occupied(value));
            self.slots.len() - 1
        }
    }

    /// Removes and returns the entry under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of range — callers own their keys.
    pub fn remove(&mut self, key: usize) -> T {
        let entry = std::mem::replace(&mut self.slots[key], Entry::Vacant(self.free_head));
        match entry {
            Entry::Occupied(v) => {
                self.free_head = key;
                self.len -= 1;
                v
            }
            Entry::Vacant(prev) => {
                // Undo the replace so the free-list is not corrupted, then
                // report the caller bug.
                self.slots[key] = Entry::Vacant(prev);
                panic!("slab key {key} is vacant");
            }
        }
    }

    /// Borrows the entry under `key`, if occupied.
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.slots.get(key) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutably borrows the entry under `key`, if occupied.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        match self.slots.get_mut(key) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_pool_recycles_capacity() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut v = pool.take();
        v.extend(0..100);
        let cap = v.capacity();
        assert!(cap >= 100);
        pool.put(v);
        assert_eq!(pool.shelved(), 1);
        let v2 = pool.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap, "capacity survives the round-trip");
        assert_eq!(pool.shelved(), 0);
    }

    #[test]
    fn vec_pool_bounds_its_shelf() {
        let mut pool: VecPool<u8> = VecPool::new();
        for _ in 0..(VecPool::<u8>::MAX_SHELVED + 10) {
            pool.put(Vec::with_capacity(4));
        }
        assert_eq!(pool.shelved(), VecPool::<u8>::MAX_SHELVED);
        // Capacity-less buffers are not worth shelving.
        pool.put(Vec::new());
        assert_eq!(pool.shelved(), VecPool::<u8>::MAX_SHELVED);
    }

    #[test]
    fn lanes_drain_in_ascending_order_and_reuse_capacity() {
        let mut lanes: Lanes<u32> = Lanes::new(4);
        lanes.push(2, 20);
        lanes.push(0, 1);
        lanes.push(2, 21);
        let mut seen = Vec::new();
        let mut returned = Vec::new();
        lanes.drain(|lane, bucket| {
            seen.push((lane, bucket.clone()));
            returned.push((lane, bucket));
        });
        assert_eq!(seen, vec![(0, vec![1]), (2, vec![20, 21])]);
        for (lane, bucket) in returned {
            lanes.restore(lane, bucket);
        }
        // Buckets are empty again and a second round sees fresh contents.
        lanes.push(1, 7);
        let mut second = Vec::new();
        lanes.drain(|lane, bucket| second.push((lane, bucket)));
        assert_eq!(second, vec![(1, vec![7])]);
    }

    #[test]
    fn slab_reuses_slots_without_growing() {
        let mut slab: Slab<String> = Slab::new();
        let a = slab.insert("a".into());
        let b = slab.insert("b".into());
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), "a");
        let c = slab.insert("c".into());
        assert_eq!(c, a, "vacant slot is reused");
        assert_eq!(slab.get(b).map(String::as_str), Some("b"));
        assert_eq!(slab.get_mut(c).map(|s| s.as_str()), Some("c"));
        assert_eq!(slab.get(99), None);
        assert_eq!(slab.remove(b), "b");
        assert_eq!(slab.remove(c), "c");
        assert!(slab.is_empty());
    }

    #[test]
    #[should_panic(expected = "slab key 0 is vacant")]
    fn slab_remove_of_vacant_key_panics() {
        let mut slab: Slab<u32> = Slab::new();
        let k = slab.insert(5);
        slab.remove(k);
        slab.remove(k);
    }
}
