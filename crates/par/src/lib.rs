//! Deterministic ordered parallel map on `std::thread::scope`.
//!
//! The repo's determinism contract (DESIGN.md, lint rules D001/D002) demands
//! that every simulated quantity be a function of the seeded inputs only —
//! never of thread count, scheduling jitter, or completion order. This crate
//! provides the one sanctioned way to use multiple cores under that contract:
//!
//! * **Fixed worker count.** [`thread_count`] resolves, in order: a
//!   thread-local [`override_threads`] guard (for in-process tests), the
//!   `JAWS_THREADS` environment variable, and finally
//!   [`std::thread::available_parallelism`]. The count only affects *wall
//!   clock*, never results.
//! * **Index-sharded work queue.** Workers claim input indices from a shared
//!   atomic counter ([`map`]/[`map_indexed`]) or a static round-robin shard
//!   ([`map_mut`]); which worker computes which index is racy and irrelevant.
//! * **Ordered results.** Every map returns its outputs in *input order*, so
//!   for a pure `f` the output vector is byte-identical at any thread count —
//!   including the inline serial path taken when one worker (or one item)
//!   makes spawning pointless.
//!
//! Callers are responsible for `f` being pure with respect to shared state
//! (the `Fn + Sync` bounds make mutation of captured state a compile error,
//! not a runtime race). A panicking `f` propagates to the caller after all
//! workers have been joined.
//!
//! The crate is dependency-free and `forbid(unsafe_code)`: `map_mut` hands
//! out disjoint `&mut` borrows via `iter_mut`, not pointer arithmetic.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

thread_local! {
    /// Thread-local worker-count override (see [`override_threads`]).
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// RAII guard restoring the previous thread-count override on drop.
///
/// Returned by [`override_threads`]; hold it for the scope of the runs whose
/// parallelism you are pinning.
#[must_use = "the override is reverted when the guard drops"]
#[derive(Debug)]
pub struct ThreadGuard {
    prev: Option<usize>,
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Pins [`thread_count`] to `n` (clamped to ≥ 1) for the current thread until
/// the returned guard drops. Nestable; each guard restores its predecessor.
///
/// This is the in-process equivalent of setting `JAWS_THREADS`, usable from
/// tests without the unsafety of `std::env::set_var`.
pub fn override_threads(n: usize) -> ThreadGuard {
    let prev = OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    ThreadGuard { prev }
}

/// The fixed worker count: thread-local override, then the `JAWS_THREADS`
/// environment variable, then [`std::thread::available_parallelism`]
/// (minimum 1). Purely a throughput knob — results never depend on it.
pub fn thread_count() -> usize {
    if let Some(n) = OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    if let Some(n) = std::env::var("JAWS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// The host's available parallelism, ignoring overrides — a reporting aid.
///
/// Bench reports record this next to the *configured* [`thread_count`] so a
/// reader can tell "ran serial because asked to" apart from "ran serial
/// because the box has one core". Never used to size work: that is
/// [`thread_count`]'s job.
pub fn hardware_parallelism() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Scatters per-worker `(index, result)` runs back into input order.
fn reassemble<R>(n: usize, parts: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for part in parts {
        for (i, r) in part {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every input index produced exactly one result"))
        .collect()
}

/// Evaluates `f(0..n)` on the worker pool and returns the results in index
/// order. Inline (no threads) when `n <= 1` or one worker is configured.
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_indexed_with_workers(n, thread_count().min(n.max(1)), f)
}

/// Like [`map_indexed`], but caps the worker count so every spawned worker
/// has at least `grain` indices to claim: `workers = min(thread_count,
/// n / grain)`. Runs inline (no spawns at all) when `n < 2 * grain`.
///
/// `std::thread::scope` spawns fresh OS threads on every call, which costs
/// tens of microseconds per worker — more than a small shard of work is
/// worth. Hot paths that map over a handful of cheap items (per-atom z-slice
/// fills, per-slab gradient sweeps) pick a bench-chosen `grain` so the spawn
/// overhead is amortized or skipped entirely. Purely a wall-clock knob:
/// results are in input order and bitwise independent of `grain`.
pub fn map_indexed_grained<R, F>(n: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = thread_count().min(n / grain.max(1)).max(1);
    map_indexed_with_workers(n, workers, f)
}

/// Shared body of the indexed maps: `workers` threads claim indices from an
/// atomic counter; results are reassembled in index order.
fn map_indexed_with_workers<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let parts: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("jaws-par worker panicked"))
            .collect()
    });
    reassemble(n, parts)
}

/// Ordered parallel map over a shared slice: `map(items, f)[i] == f(&items[i])`
/// bitwise, at any thread count.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(items.len(), |i| f(&items[i]))
}

/// Ordered parallel map with *mutable* access to each item:
/// `map_mut(items, f)[i] == f(i, &mut items[i])`.
///
/// Items are dealt round-robin to workers up front (static sharding), so the
/// borrow checker can prove the `&mut` borrows disjoint without unsafe code.
pub fn map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let workers = thread_count().min(n.max(1));
    if workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut shards: Vec<Vec<(usize, &mut T)>> = Vec::with_capacity(workers);
    shards.resize_with(workers, Vec::new);
    for (i, t) in items.iter_mut().enumerate() {
        shards[i % workers].push((i, t));
    }
    let f = &f;
    let parts: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                s.spawn(move || {
                    shard
                        .into_iter()
                        .map(|(i, t)| (i, f(i, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("jaws-par worker panicked"))
            .collect()
    });
    reassemble(n, parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 8, 32] {
            let _g = override_threads(threads);
            assert_eq!(map(&items, |&x| x * x + 1), expect, "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        let _g = override_threads(4);
        assert_eq!(map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn grained_map_matches_ungrained_at_any_thread_count() {
        let expect: Vec<usize> = (0..100).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 4, 16] {
            let _g = override_threads(threads);
            for grain in [0usize, 1, 7, 50, 99, 100, 1000] {
                assert_eq!(
                    map_indexed_grained(100, grain, |i| i * 3 + 1),
                    expect,
                    "threads={threads} grain={grain}"
                );
            }
        }
    }

    #[test]
    fn grained_map_runs_inline_below_two_grains() {
        // With n < 2*grain every index runs on the calling thread — proof no
        // worker was spawned despite the 8-thread override.
        let _g = override_threads(8);
        let main_id = std::thread::current().id();
        let ids = map_indexed_grained(9, 5, |_| std::thread::current().id());
        assert_eq!(ids.len(), 9);
        assert!(
            ids.iter().all(|&id| id == main_id),
            "all work ran on the calling thread"
        );
    }

    #[test]
    fn map_mut_mutates_every_item_exactly_once() {
        for threads in [1usize, 2, 5] {
            let _g = override_threads(threads);
            let mut items: Vec<u32> = (0..100).collect();
            let seen = map_mut(&mut items, |i, t| {
                *t += 1;
                (i, *t)
            });
            assert_eq!(items, (1..=100).collect::<Vec<u32>>(), "threads={threads}");
            let idx: Vec<usize> = seen.iter().map(|&(i, _)| i).collect();
            assert_eq!(idx, (0..100).collect::<Vec<usize>>());
            for (i, v) in seen {
                assert_eq!(v, i as u32 + 1);
            }
        }
    }

    #[test]
    fn float_fold_is_bitwise_identical_across_thread_counts() {
        // The property the whole repo leans on: chunked reductions reassembled
        // in order are *bit-for-bit* equal to the serial result.
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e-3).collect();
        let chunks: Vec<&[f64]> = xs.chunks(64).collect();
        let serial: Vec<u64> = chunks
            .iter()
            .map(|c| c.iter().sum::<f64>().to_bits())
            .collect();
        for threads in [2usize, 7, 16] {
            let _g = override_threads(threads);
            let par: Vec<u64> = map(&chunks, |c| c.iter().sum::<f64>().to_bits());
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn override_guard_nests_and_restores() {
        let outer = override_threads(3);
        assert_eq!(thread_count(), 3);
        {
            let _inner = override_threads(1);
            assert_eq!(thread_count(), 1);
        }
        assert_eq!(thread_count(), 3);
        drop(outer);
        // Whatever the environment default is, it is at least 1.
        assert!(thread_count() >= 1);
    }

    #[test]
    fn zero_override_clamps_to_one() {
        let _g = override_threads(0);
        assert_eq!(thread_count(), 1);
        assert_eq!(map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "jaws-par worker panicked")]
    fn worker_panic_propagates() {
        let _g = override_threads(4);
        let _ = map_indexed(16, |i| {
            assert!(i != 11, "boom");
            i
        });
    }
}
