//! Morton-ordered versus unsorted batch execution — the design choice §V
//! justifies ("the k atoms are sorted in Morton order and the corresponding
//! sub-queries from each atom are evaluated in that order") and DESIGN.md
//! cites: Morton order makes consecutive atom reads physically sequential on
//! disk, so a batch pays one seek instead of one per atom.
//!
//! The simulated disk charges `seek_ms` whenever a read is not contiguous
//! with the previous extent, so the *simulated* service time is the paper's
//! figure of merit; the bench reports both wall-clock per batch and, once per
//! configuration, the simulated I/O totals.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jaws_cache::{Lru, NullOracle};
use jaws_morton::{AtomId, MortonKey};
use jaws_turbdb::{CostModel, DataMode, DbConfig, TurbDb};

fn open_db(cache_atoms: usize) -> TurbDb {
    TurbDb::open(
        DbConfig::paper_sample(),
        CostModel::paper_testbed(),
        DataMode::Virtual,
        cache_atoms,
        Box::new(Lru::new()),
    )
}

/// A batch of `n` atom ids from one timestep, deterministically shuffled.
fn shuffled_batch(n: u64) -> Vec<AtomId> {
    let mut ids: Vec<AtomId> = (0..n).map(|m| AtomId::new(0, MortonKey(m))).collect();
    // Fisher–Yates with a splitmix64 stream: unsorted but reproducible.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..ids.len()).rev() {
        ids.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    ids
}

/// Reads every atom of the batch through a cold cache, returning the
/// simulated I/O time the batch was charged.
fn run_batch(db: &mut TurbDb, batch: &[AtomId]) -> f64 {
    let mut io_ms = 0.0;
    for &id in batch {
        io_ms += db.read_atom(id, &NullOracle).io_ms;
    }
    io_ms
}

fn bench_batch_order(c: &mut Criterion) {
    let n = 512u64;
    let sorted = {
        let mut ids = shuffled_batch(n);
        ids.sort_unstable();
        ids
    };
    let unsorted = shuffled_batch(n);

    // Report the simulated disk cost once — the quantity the scheduler's
    // Morton ordering actually optimizes (wall-clock below only reflects the
    // simulator's bookkeeping overhead).
    let mut db = open_db(n as usize);
    let io_sorted = run_batch(&mut db, &sorted);
    let seeks_sorted = db.disk_stats().seeks;
    let mut db = open_db(n as usize);
    let io_unsorted = run_batch(&mut db, &unsorted);
    let seeks_unsorted = db.disk_stats().seeks;
    println!(
        "morton_order/simulated_io: sorted {io_sorted:.1} ms ({seeks_sorted} seeks) vs \
         unsorted {io_unsorted:.1} ms ({seeks_unsorted} seeks) for {n} atoms"
    );

    let mut group = c.benchmark_group("morton_order/batch_512_atoms");
    group.bench_function("sorted", |b| {
        b.iter_batched(
            || open_db(n as usize),
            |mut db| black_box(run_batch(&mut db, &sorted)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("unsorted", |b| {
        b.iter_batched(
            || open_db(n as usize),
            |mut db| black_box(run_batch(&mut db, &unsorted)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_batch_order);
criterion_main!(benches);
