//! Scheduling-decision latency: how long one `next_batch` takes with
//! thousands of pending atoms — the cost the two-level framework and metric
//! evaluation add per pass. Includes an ablation of Morton-ordered versus
//! utility-ordered batch execution (the design choice DESIGN.md calls out).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jaws_morton::{AtomId, MortonKey};
use jaws_scheduler::delta::reference;
use jaws_scheduler::{
    Jaws, JawsConfig, LifeRaft, MetricParams, Residency, Scheduler, SubQuery, WorkloadManager,
};
use jaws_workload::{Footprint, Query, QueryOp};

struct NoneResident;

impl Residency for NoneResident {
    fn is_resident(&self, _atom: &AtomId) -> bool {
        false
    }

    fn residency_epoch(&self) -> Option<u64> {
        Some(0) // nothing ever becomes resident
    }

    fn residency_changes_since(&self, _since: u64) -> Option<Vec<(AtomId, bool)>> {
        Some(Vec::new())
    }
}

/// Loads a scheduler with `n` queries over a 16³ atom grid, 31 timesteps.
fn load<S: Scheduler>(s: &mut S, n: u64) {
    for i in 0..n {
        let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let q = Query {
            id: i + 1,
            user: (h % 16) as u32,
            op: QueryOp::Velocity,
            timestep: (h % 31) as u32,
            footprint: Footprint::from_pairs(
                (0..6u64).map(|d| (MortonKey((h >> 8) % 4090 + d), 100u32)),
            ),
        };
        s.query_available(&q, i as f64);
    }
}

fn bench_next_batch(c: &mut Criterion) {
    let params = MetricParams::paper_testbed();
    c.bench_function("scheduler/jaws_next_batch_2k_queries", |b| {
        b.iter_batched(
            || {
                let mut s = Jaws::new(JawsConfig::jaws1(params));
                load(&mut s, 2000);
                s
            },
            |mut s| {
                // Drain ten batches against a fully loaded queue state.
                for t in 0..10 {
                    black_box(s.next_batch(t as f64, &NoneResident));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("scheduler/liferaft_next_batch_2k_queries", |b| {
        b.iter_batched(
            || {
                let mut s = LifeRaft::contention(params, 50);
                load(&mut s, 2000);
                s
            },
            |mut s| {
                for t in 0..10 {
                    black_box(s.next_batch(t as f64, &NoneResident));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("scheduler/jaws_drain_500_queries", |b| {
        b.iter_batched(
            || {
                let mut s = Jaws::new(JawsConfig::jaws1(params));
                load(&mut s, 500);
                s
            },
            |mut s| {
                let mut t = 0.0;
                while let Some(batch) = s.next_batch(t, &NoneResident) {
                    t += 1.0;
                    black_box(batch.atom_count());
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

/// A workload manager with exactly `n` pending atoms spread over 32
/// timesteps, one sub-query each.
fn loaded_wm(n: u64) -> WorkloadManager {
    let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
    for i in 0..n {
        let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        wm.enqueue([SubQuery {
            query: i + 1,
            atom: AtomId::new((i % 32) as u32, MortonKey(i / 32)),
            positions: (h % 900 + 10) as u32,
            enqueued_ms: (h % 1000) as f64,
        }]);
    }
    wm
}

/// One steady-state scheduling step against the full-scan reference oracle
/// (`jaws_scheduler::delta::reference`): argmax over a fresh
/// `aged_utilities` scan, take the atom, enqueue a replacement sub-query,
/// rebuild the URC snapshot from scratch.
fn full_step(wm: &mut WorkloadManager, i: u64, now_ms: f64) {
    let res = NoneResident;
    let (atom, _) = reference::aged_utilities(wm, now_ms, 0.3, &res)
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .unwrap();
    let (batch, _) = wm.take_atom(&atom);
    black_box(batch.positions());
    wm.enqueue([SubQuery {
        query: 1_000_000 + i,
        atom,
        positions: 100,
        enqueued_ms: now_ms,
    }]);
    black_box(reference::utility_snapshot(wm, &res));
}

/// The same step through the delta-propagation core: O(#timesteps) argmax,
/// O(Δ) integration, O(1) snapshot clone.
fn incremental_step(wm: &mut WorkloadManager, i: u64, now_ms: f64) {
    let res = NoneResident;
    let (atom, _) = wm.best_atom(now_ms, 0.3, &res).unwrap();
    let (batch, _) = wm.take_atom(&atom);
    black_box(batch.positions());
    wm.enqueue([SubQuery {
        query: 1_000_000 + i,
        atom,
        positions: 100,
        enqueued_ms: now_ms,
    }]);
    black_box(wm.utility_snapshot(&res));
}

/// Full-recompute versus incremental metric maintenance at 1k / 10k / 100k
/// pending atoms — the tentpole comparison: the full path rescans every
/// pending atom per dispatch, the incremental path only touches what changed.
fn bench_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/metric_maintenance");
    for &n in &[1_000u64, 10_000, 100_000] {
        group.bench_function(&format!("full_scan_{n}_atoms"), |b| {
            let mut wm = loaded_wm(n);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                full_step(&mut wm, i, 2000.0 + i as f64);
            })
        });
        group.bench_function(&format!("incremental_{n}_atoms"), |b| {
            let mut wm = loaded_wm(n);
            let res = NoneResident;
            black_box(wm.utility_snapshot(&res)); // prime the arrangements
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                incremental_step(&mut wm, i, 2000.0 + i as f64);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_next_batch, bench_incremental_vs_full);
criterion_main!(benches);
