//! Scheduling-decision latency: how long one `next_batch` takes with
//! thousands of pending atoms — the cost the two-level framework and metric
//! evaluation add per pass. Includes an ablation of Morton-ordered versus
//! utility-ordered batch execution (the design choice DESIGN.md calls out).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jaws_morton::{AtomId, MortonKey};
use jaws_scheduler::{
    Jaws, JawsConfig, LifeRaft, MetricParams, Residency, Scheduler,
};
use jaws_workload::{Footprint, Query, QueryOp};

struct NoneResident;

impl Residency for NoneResident {
    fn is_resident(&self, _atom: &AtomId) -> bool {
        false
    }
}

/// Loads a scheduler with `n` queries over a 16³ atom grid, 31 timesteps.
fn load<S: Scheduler>(s: &mut S, n: u64) {
    for i in 0..n {
        let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let q = Query {
            id: i + 1,
            user: (h % 16) as u32,
            op: QueryOp::Velocity,
            timestep: (h % 31) as u32,
            footprint: Footprint::from_pairs(
                (0..6u64).map(|d| (MortonKey((h >> 8) % 4090 + d), 100u32)),
            ),
        };
        s.query_available(&q, i as f64);
    }
}

fn bench_next_batch(c: &mut Criterion) {
    let params = MetricParams::paper_testbed();
    c.bench_function("scheduler/jaws_next_batch_2k_queries", |b| {
        b.iter_batched(
            || {
                let mut s = Jaws::new(JawsConfig::jaws1(params));
                load(&mut s, 2000);
                s
            },
            |mut s| {
                // Drain ten batches against a fully loaded queue state.
                for t in 0..10 {
                    black_box(s.next_batch(t as f64, &NoneResident));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("scheduler/liferaft_next_batch_2k_queries", |b| {
        b.iter_batched(
            || {
                let mut s = LifeRaft::contention(params, 50);
                load(&mut s, 2000);
                s
            },
            |mut s| {
                for t in 0..10 {
                    black_box(s.next_batch(t as f64, &NoneResident));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("scheduler/jaws_drain_500_queries", |b| {
        b.iter_batched(
            || {
                let mut s = Jaws::new(JawsConfig::jaws1(params));
                load(&mut s, 500);
                s
            },
            |mut s| {
                let mut t = 0.0;
                while let Some(batch) = s.next_batch(t, &NoneResident) {
                    t += 1.0;
                    black_box(batch.atom_count());
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_next_batch);
criterion_main!(benches);
