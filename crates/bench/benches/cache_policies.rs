//! Cache-policy maintenance cost — the mechanism behind Table I's
//! "Overhead/Qry" column: SLRU is nearly free, URC pays a ranking pass per
//! eviction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jaws_cache::{BufferPool, Lru, LruK, ReplacementPolicy, Slru, Urc};
use jaws_cache::{UtilityOracle, UtilityRank};
use jaws_morton::{AtomId, MortonKey};

/// A deterministic oracle standing in for the scheduler's workload queues.
struct SynthOracle;

impl UtilityOracle<AtomId> for SynthOracle {
    fn rank(&self, key: &AtomId) -> UtilityRank {
        UtilityRank {
            timestep_mean: (key.timestep % 7) as f64,
            atom_utility: (key.morton.raw() % 13) as f64,
        }
    }
}

/// Zipf-ish access stream over 31 × 4096 atoms.
fn access_stream(n: usize) -> Vec<AtomId> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            // Skew: half the accesses hit a 64-atom hot set.
            let m = if h & 1 == 0 { h % 64 } else { h % 4096 };
            AtomId::new((h % 31) as u32, MortonKey(m))
        })
        .collect()
}

fn run_policy(policy: Box<dyn ReplacementPolicy<AtomId>>, stream: &[AtomId]) -> u64 {
    let mut pool: BufferPool<AtomId, ()> = BufferPool::new(256, policy);
    for (i, &a) in stream.iter().enumerate() {
        pool.access_with(a, || (), &SynthOracle);
        if i % 50 == 0 {
            pool.end_run();
        }
    }
    pool.stats().hits
}

fn bench_policies(c: &mut Criterion) {
    let stream = access_stream(20_000);
    let mut g = c.benchmark_group("cache/20k_accesses_256_atoms");
    g.bench_function("LRU", |b| {
        b.iter(|| black_box(run_policy(Box::new(Lru::new()), &stream)))
    });
    g.bench_function("LRU-K", |b| {
        b.iter(|| black_box(run_policy(Box::new(LruK::new()), &stream)))
    });
    g.bench_function("SLRU", |b| {
        b.iter(|| black_box(run_policy(Box::new(Slru::for_cache(256)), &stream)))
    });
    g.bench_function("URC", |b| {
        b.iter(|| black_box(run_policy(Box::new(Urc::new()), &stream)))
    });
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
