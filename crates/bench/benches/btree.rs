//! Microbenchmarks for the clustered B+ tree access path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jaws_morton::{AtomId, MortonKey};
use jaws_turbdb::BPlusTree;

fn production_index() -> BPlusTree<AtomId, u64> {
    // 31 timesteps × 4096 atoms, the paper's experimental sample.
    let pairs = (0..31u32).flat_map(|t| {
        (0..4096u64).map(move |m| (AtomId::new(t, MortonKey(m)), t as u64 * 4096 + m))
    });
    BPlusTree::bulk_load(64, pairs)
}

fn bench_btree(c: &mut Criterion) {
    let tree = production_index();
    c.bench_function("btree/bulk_load_127k", |b| {
        b.iter(|| black_box(production_index().len()))
    });
    c.bench_function("btree/point_get", |b| {
        let mut m = 0u64;
        b.iter(|| {
            m = (m + 2_654_435_761) % 4096;
            black_box(tree.get(&AtomId::new((m % 31) as u32, MortonKey(m))))
        })
    });
    c.bench_function("btree/range_scan_one_timestep", |b| {
        b.iter(|| {
            let lo = AtomId::new(7, MortonKey(0));
            let hi = AtomId::new(8, MortonKey(0));
            black_box(tree.range(&lo, &hi).len())
        })
    });
    c.bench_function("btree/incremental_insert_4k", |b| {
        b.iter(|| {
            let mut t: BPlusTree<u64, u64> = BPlusTree::new(64);
            for k in 0..4096u64 {
                t.insert(k.wrapping_mul(2_654_435_761) % 65_536, k);
            }
            black_box(t.len())
        })
    });
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
