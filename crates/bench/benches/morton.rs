//! Microbenchmarks for Morton encoding and box covers — the operations on
//! the pre-processing hot path (every queried position is mapped to an atom
//! and sorted in Morton order).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jaws_morton::{cover_box, decode, encode, MortonKey};

fn bench_encode(c: &mut Criterion) {
    c.bench_function("morton/encode", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(97) & 0xffff;
            black_box(encode(i, i ^ 0x5a5a, i.rotate_left(7) & 0xffff))
        })
    });
    c.bench_function("morton/decode", |b| {
        let mut code = 0u64;
        b.iter(|| {
            code = code.wrapping_add(0x9e37_79b9);
            black_box(decode(code & ((1 << 48) - 1)))
        })
    });
}

fn bench_sort_positions(c: &mut Criterion) {
    // Morton-sorting 10k positions — the per-query pre-processing step.
    let positions: Vec<(u32, u32, u32)> = (0..10_000u32)
        .map(|i| {
            let h = i.wrapping_mul(2_654_435_761);
            (h & 1023, (h >> 10) & 1023, (h >> 20) & 1023)
        })
        .collect();
    c.bench_function("morton/sort_10k_positions", |b| {
        b.iter(|| {
            let mut keys: Vec<MortonKey> = positions
                .iter()
                .map(|&(x, y, z)| MortonKey::from_coords(x, y, z))
                .collect();
            keys.sort_unstable();
            black_box(keys.len())
        })
    });
}

fn bench_cover(c: &mut Criterion) {
    c.bench_function("morton/cover_unaligned_box", |b| {
        b.iter(|| black_box(cover_box((3, 5, 2), (12, 13, 9))))
    });
    c.bench_function("morton/cover_full_grid", |b| {
        b.iter(|| black_box(cover_box((0, 0, 0), (15, 15, 15))))
    });
}

criterion_group!(benches, bench_encode, bench_sort_positions, bench_cover);
criterion_main!(benches);
