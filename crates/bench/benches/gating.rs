//! Cost of job admission into the gating graph — the Needleman–Wunsch
//! alignment phase of §IV-B. DESIGN.md bounds the O(n²m²) dynamic-program
//! phase with `GatingConfig::max_align_jobs` (align each arriving job against
//! the most recent candidates only); this bench quantifies what that bound
//! buys by comparing it against naive all-pairs admission.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jaws_morton::MortonKey;
use jaws_scheduler::{align_jobs, GatingConfig, GatingGraph};
use jaws_workload::{Footprint, Job, JobKind, Query, QueryOp};

/// An ordered job of `len` queries walking a region sequence. Jobs share
/// regions with a quarter of their peers (same campaign residue), so the
/// alignments actually find edges.
fn mk_job(id: u64, len: usize) -> Job {
    let campaign = id % 4;
    let queries = (0..len)
        .map(|i| Query {
            id: id * 1000 + i as u64,
            user: id as u32,
            op: QueryOp::ParticleTrack,
            timestep: i as u32,
            footprint: Footprint::from_pairs([(MortonKey(campaign * 100 + i as u64), 20u32)]),
        })
        .collect();
    Job {
        id,
        user: id as u32,
        kind: JobKind::Ordered,
        campaign,
        queries,
        arrival_ms: id as f64,
        think_ms: 0.0,
    }
}

/// Admitting a stream of jobs through the gating graph: bounded candidate
/// selection versus aligning every new job against every existing one.
fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("gating/admission");
    for &(jobs, len) in &[(64usize, 12usize), (256, 12)] {
        let stream: Vec<Job> = (0..jobs as u64).map(|id| mk_job(id, len)).collect();
        group.bench_function(&format!("naive_all_pairs_{jobs}_jobs"), |b| {
            b.iter_batched(
                || stream.clone(),
                |stream| {
                    let mut g = GatingGraph::new(GatingConfig {
                        max_align_jobs: usize::MAX,
                        ..GatingConfig::default()
                    });
                    for job in &stream {
                        g.add_job(job);
                    }
                    black_box((g.admitted_edges(), g.refused_edges()))
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(&format!("nw_bounded_16_{jobs}_jobs"), |b| {
            b.iter_batched(
                || stream.clone(),
                |stream| {
                    let mut g = GatingGraph::new(GatingConfig {
                        max_align_jobs: 16,
                        ..GatingConfig::default()
                    });
                    for job in &stream {
                        g.add_job(job);
                    }
                    black_box((g.admitted_edges(), g.refused_edges()))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The raw dynamic program: one pairwise alignment at several job lengths —
/// the O(n·m) inner kernel the admission bound multiplies.
fn bench_pairwise_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("gating/align_pair");
    for &len in &[8usize, 32, 128] {
        let a = mk_job(0, len);
        let b_ = mk_job(4, len); // same campaign residue → real matches
        group.bench_function(&format!("{len}_queries"), |b| {
            b.iter(|| black_box(align_jobs(&a.queries, &b_.queries)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admission, bench_pairwise_alignment);
criterion_main!(benches);
