//! Needleman–Wunsch job alignment and gating admission — the paper's
//! `(n 2) m²` dynamic-program phase and `O(n³m²)` merge phase, which must
//! stay cheap because every arriving job triggers them ("this overhead is
//! low in practice given that the graph is sparse").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jaws_morton::MortonKey;
use jaws_scheduler::{align_jobs, GatingConfig, GatingGraph};
use jaws_workload::{Footprint, Job, JobKind, Query, QueryOp};

fn tracking_job(id: u64, steps: u32, region: u64) -> Job {
    Job {
        id,
        user: (id % 8) as u32,
        kind: JobKind::Ordered,
        campaign: id,
        queries: (0..steps)
            .map(|s| Query {
                id: id * 1000 + s as u64,
                user: (id % 8) as u32,
                op: QueryOp::ParticleTrack,
                timestep: s,
                footprint: Footprint::from_pairs((0..8u64).map(|d| (MortonKey(region + d), 50u32))),
            })
            .collect(),
        arrival_ms: id as f64,
        think_ms: 1000.0,
    }
}

fn bench_alignment(c: &mut Criterion) {
    let a = tracking_job(1, 30, 0);
    let b = tracking_job(2, 30, 4); // half-overlapping footprints
    c.bench_function("gating/nw_align_30x30", |b2| {
        b2.iter(|| black_box(align_jobs(&a.queries, &b.queries).score))
    });

    c.bench_function("gating/admit_30_jobs", |bch| {
        bch.iter(|| {
            let mut g = GatingGraph::new(GatingConfig::default());
            for j in 0..30u64 {
                g.add_job(&tracking_job(j + 1, 15, (j % 5) * 3));
            }
            black_box(g.admitted_edges())
        })
    });

    c.bench_function("gating/full_lifecycle_10_jobs", |bch| {
        let jobs: Vec<Job> = (0..10u64)
            .map(|j| tracking_job(j + 1, 10, (j % 3) * 4))
            .collect();
        bch.iter(|| {
            let mut g = GatingGraph::new(GatingConfig {
                gate_timeout_ms: 100.0,
                max_align_jobs: 64,
            });
            for j in &jobs {
                g.add_job(j);
            }
            let mut now = 0.0;
            let mut cursor = vec![0usize; jobs.len()];
            for j in &jobs {
                g.query_available(j.queries[0].id, now);
            }
            let mut remaining: usize = jobs.iter().map(|j| j.queries.len()).sum();
            while remaining > 0 {
                let mut progressed = false;
                for (ji, j) in jobs.iter().enumerate() {
                    let qi = cursor[ji];
                    if qi >= j.queries.len() {
                        continue;
                    }
                    let qid = j.queries[qi].id;
                    if matches!(g.state(qid), jaws_scheduler::QueryState::Queue) {
                        g.query_done(qid);
                        remaining -= 1;
                        cursor[ji] += 1;
                        if cursor[ji] < j.queries.len() {
                            g.query_available(j.queries[cursor[ji]].id, now);
                        }
                        progressed = true;
                    }
                }
                if !progressed {
                    now += 200.0;
                    g.release_stale(now);
                }
            }
            black_box(g.forced_releases())
        })
    });
}

criterion_group!(benches, bench_alignment);
criterion_main!(benches);
