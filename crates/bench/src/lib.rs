//! Shared experiment harness for the JAWS paper reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of §VI; this
//! library holds the common configuration so every experiment runs against
//! the same database geometry, cost model and calibrated trace — mirroring
//! the paper's single experimental setup (800 GB sample, 31 timesteps,
//! 4096 atoms/timestep, 2 GB external cache, 50k-query trace of ~1k jobs).

pub mod alloc_counter {
    //! A counting global allocator for the allocation-discipline benches.
    //!
    //! Wraps [`std::alloc::System`] and counts every `alloc`/`alloc_zeroed`/
    //! `realloc` call in a relaxed [`AtomicU64`]. Bench binaries register it
    //! with `#[global_allocator]` and report allocations-per-query next to
    //! wall-clock, turning "the hot path is alloc-free" from a claim into a
    //! measured column. Frees are not counted: the discipline under test is
    //! *acquiring* memory per event, and every counted acquisition has at
    //! most one matching free.
    //!
    //! The counter is process-global, so concurrent measurements interleave;
    //! the bench binaries are single-measurement-at-a-time by construction.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// System allocator wrapper that counts allocation calls.
    ///
    /// Register in a binary with:
    /// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`
    pub struct CountingAlloc;

    // SAFETY: pure pass-through to `System`; the only addition is a relaxed
    // counter increment, which cannot violate allocator invariants.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    /// Allocation calls counted since process start (or the last [`reset`]).
    pub fn count() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Zeroes the counter. Call immediately before the measured region.
    pub fn reset() {
        ALLOCATIONS.store(0, Ordering::Relaxed);
    }
}

pub mod exp {
    use jaws_sim::sweep::RunSpec;
    use jaws_sim::{CachePolicyKind, SchedulerKind};
    use jaws_turbdb::{CostModel, DbConfig};
    use jaws_workload::{GenConfig, Trace, TraceGenerator};

    /// Trace seed shared by all experiments (deterministic reproduction).
    pub const TRACE_SEED: u64 = 2009_0720; // the paper's week-of-July-20th trace

    /// The paper's 2 GB cache in 8 MB atoms.
    pub const CACHE_ATOMS: usize = 256;

    /// Run length `r` for α adaptation and SLRU promotion.
    pub const RUN_LEN: usize = 50;

    /// Gate timeout for JAWS₂'s starvation valve, ms.
    pub const GATE_TIMEOUT_MS: f64 = 180_000.0;

    /// The experimental database geometry (§VI): 31 timesteps of the 1024³
    /// grid — 4096 atoms per timestep.
    pub fn paper_db() -> DbConfig {
        DbConfig::paper_sample()
    }

    /// The cost model (T_b, T_m, seek) used everywhere.
    pub fn paper_cost() -> CostModel {
        CostModel::paper_testbed()
    }

    /// The evaluation trace: ~1k jobs, tens of thousands of queries,
    /// calibrated to §VI-A.
    pub fn paper_trace() -> Trace {
        TraceGenerator::new(GenConfig::paper_like(TRACE_SEED)).generate()
    }

    /// A smaller trace for quick smoke runs (`--quick` flag on binaries).
    pub fn quick_trace() -> Trace {
        let cfg = GenConfig {
            jobs: 150,
            ..GenConfig::paper_like(TRACE_SEED)
        };
        TraceGenerator::new(cfg).generate()
    }

    /// A fully specified run at the paper's defaults.
    pub fn base_spec(label: &str, scheduler: SchedulerKind, policy: CachePolicyKind) -> RunSpec {
        RunSpec {
            label: label.to_string(),
            db: paper_db(),
            cost: paper_cost(),
            scheduler,
            cache_policy: policy,
            cache_atoms: CACHE_ATOMS,
            run_len: RUN_LEN,
            gate_timeout_ms: GATE_TIMEOUT_MS,
            speedup: 1.0,
        }
    }

    /// True if the process was invoked with `--quick`.
    pub fn quick_mode() -> bool {
        std::env::args().any(|a| a == "--quick")
    }

    /// True if the process was invoked with `--smoke`: a reduced-size run for
    /// CI, exercising the same code paths on a tiny geometry and trace.
    pub fn smoke_mode() -> bool {
        std::env::args().any(|a| a == "--smoke")
    }

    /// The tiny database geometry used by `--smoke` runs (64 atoms per
    /// timestep — still divisible across 1/2/4 nodes).
    pub fn smoke_db() -> DbConfig {
        DbConfig {
            grid_side: 32,
            atom_side: 8,
            ghost: 2,
            timesteps: 8,
            dt: 0.002,
            seed: TRACE_SEED,
        }
    }

    /// The tiny trace used by `--smoke` runs.
    pub fn smoke_trace() -> Trace {
        TraceGenerator::new(GenConfig::small(TRACE_SEED)).generate()
    }

    /// Picks the trace per the `--quick` flag and announces it.
    pub fn select_trace() -> Trace {
        let quick = quick_mode();
        let t = if quick { quick_trace() } else { paper_trace() };
        eprintln!(
            "# trace: {} jobs, {} queries, {} positions{}",
            t.jobs.len(),
            t.query_count(),
            t.position_count(),
            if quick { " [--quick]" } else { "" }
        );
        t
    }

    /// Prints a rule line for experiment tables.
    pub fn rule() {
        println!("{}", "-".repeat(100));
    }

    /// Same masking as the determinism suite: the only report fields measured
    /// in host wall-clock time are zeroed before byte comparison, so two runs
    /// of the same seeded scenario can be compared for bit-identity.
    pub fn mask_wallclock_fields(json: &str) -> String {
        let mut out = json.to_string();
        for key in ["policy_overhead_ns", "cache_overhead_ms_per_query"] {
            let pat = format!("\"{key}\":");
            assert!(out.contains(&pat), "field {key} absent from report JSON");
            let mut masked = String::with_capacity(out.len());
            let mut rest = out.as_str();
            while let Some(i) = rest.find(&pat) {
                let start = i + pat.len();
                let end = start
                    + rest[start..]
                        .find([',', '}'])
                        .expect("number is followed by a delimiter");
                masked.push_str(&rest[..start]);
                masked.push('0');
                rest = &rest[end..];
            }
            masked.push_str(rest);
            out = masked;
        }
        out
    }
}
