//! Calibration sweep (not a paper figure): finds the saturation regime where
//! the schedulers' capacity differences are visible as throughput, i.e.
//! offered load sits at or just above JAWS's capacity. Prints throughput,
//! response time, reads and gating diagnostics per (burst-gap, scheduler).

use jaws_sim::sweep::RunSpec;
use jaws_sim::{run_parallel, CachePolicyKind, SchedulerKind};
use jaws_turbdb::{CostModel, DbConfig};
use jaws_workload::{GenConfig, TraceGenerator};

fn main() {
    let gaps: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let gaps = if gaps.is_empty() {
        vec![2000.0, 1200.0, 800.0]
    } else {
        gaps
    };
    for gap in gaps {
        let cfg = GenConfig {
            jobs: 1000,
            mean_burst_gap_ms: gap,
            ..GenConfig::paper_like(7)
        };
        let trace = TraceGenerator::new(cfg).generate();
        let mut kinds = vec![
            (SchedulerKind::Jaws1 { batch_k: 15 }, 20_000.0),
            (SchedulerKind::Jaws2 { batch_k: 15 }, 90_000.0),
            (SchedulerKind::Jaws2 { batch_k: 15 }, 180_000.0),
            (SchedulerKind::Jaws2 { batch_k: 15 }, 360_000.0),
            (SchedulerKind::Jaws2 { batch_k: 15 }, 720_000.0),
        ];
        if std::env::var("CALIB_ALL").is_ok() {
            kinds = vec![
                (SchedulerKind::NoShare, 20_000.0),
                (SchedulerKind::LifeRaft1, 20_000.0),
                (SchedulerKind::LifeRaft2, 20_000.0),
                (SchedulerKind::Jaws1 { batch_k: 15 }, 20_000.0),
                (SchedulerKind::Jaws2 { batch_k: 15 }, 20_000.0),
            ];
        }
        let specs: Vec<RunSpec> = kinds
            .iter()
            .map(|&(k, gate)| RunSpec {
                label: k.name().to_string(),
                db: DbConfig::paper_sample(),
                cost: CostModel::paper_testbed(),
                scheduler: k,
                cache_policy: CachePolicyKind::LruK,
                cache_atoms: 256,
                run_len: 50,
                gate_timeout_ms: gate,
                speedup: 1.0,
            })
            .collect();
        println!(
            "\n== burst gap {gap} ms: {} queries over {:.2} h of arrivals ==",
            trace.query_count(),
            (trace.jobs.last().unwrap().arrival_ms - trace.jobs[0].arrival_ms) / 3.6e6
        );
        for (spec, r) in run_parallel(&specs, &trace) {
            println!(
                "{:<11} gate {:>6.0}  qps {:>6.3}  rt {:>8.1}s  mkspan {:>5.2}h  reads {:>6}  hit {:>5.1}%  forced {:>4}  alpha {:.2}",
                spec.label,
                spec.gate_timeout_ms,
                r.throughput_qps,
                r.mean_response_ms / 1000.0,
                r.makespan_ms / 3.6e6,
                r.disk.reads,
                r.cache.hit_ratio() * 100.0,
                r.scheduler_stats.forced_releases,
                r.alpha_final
            );
        }
    }
}
