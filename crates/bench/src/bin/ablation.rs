//! Ablation study: which substrate mechanisms give each scheduler its edge.
//!
//! DESIGN.md calls out the design choices this probes. Each row disables (or
//! stresses) one cost-model mechanism and reruns JAWS₂ against LifeRaft₂ and
//! NoShare:
//!
//! * `baseline`      — the calibrated testbed model;
//! * `free-dispatch` — per-pass submission cost zeroed: two-level batching
//!   loses its amortization edge;
//! * `free-seeks`    — seek charge zeroed: Morton-ordered execution loses its
//!   sequential-I/O edge;
//! * `stencil-2`     — kernel evaluations also read 2 neighbor atoms
//!   (§V locality of reference stress): schedulers that co-schedule nearby
//!   atoms absorb the spill-over in cache.

use jaws_bench::exp;
use jaws_sim::sweep::RunSpec;
use jaws_sim::{run_parallel, CachePolicyKind, SchedulerKind};
use jaws_turbdb::CostModel;

fn main() {
    let trace = exp::select_trace();
    let base = exp::paper_cost();
    let variants: Vec<(&str, CostModel)> = vec![
        ("baseline", base),
        (
            "free-dispatch",
            CostModel {
                batch_dispatch_ms: 0.0,
                ..base
            },
        ),
        (
            "free-seeks",
            CostModel {
                seek_ms: 0.0,
                ..base
            },
        ),
        (
            "stencil-2",
            CostModel {
                stencil_neighbors: 2,
                ..base
            },
        ),
    ];
    let schedulers = [
        SchedulerKind::NoShare,
        SchedulerKind::LifeRaft2,
        SchedulerKind::Jaws2 { batch_k: 15 },
    ];
    let mut specs = Vec::new();
    for (name, cost) in &variants {
        for &k in &schedulers {
            let mut s = exp::base_spec(&format!("{name}/{}", k.name()), k, CachePolicyKind::LruK);
            s.cost = *cost;
            specs.push(s);
        }
    }
    let results = run_parallel(&specs, &trace);

    println!("\nAblation — substrate mechanisms vs scheduler advantage");
    exp::rule();
    println!(
        "{:<26} {:>9} {:>12} {:>9} {:>9}",
        "variant/scheduler", "qps", "mean rt (s)", "reads", "seeks"
    );
    exp::rule();
    let mut qps: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for (spec, r) in &results {
        qps.insert(spec.label.clone(), r.throughput_qps);
        println!(
            "{:<26} {:>9.3} {:>12.1} {:>9} {:>9}",
            spec.label,
            r.throughput_qps,
            r.mean_response_ms / 1000.0,
            r.disk.reads,
            r.disk.seeks
        );
    }
    exp::rule();
    println!("JAWS_2 / LifeRaft_2 advantage per variant:");
    for (name, _) in &variants {
        let j = qps[&format!("{name}/JAWS_2")];
        let l = qps[&format!("{name}/LifeRaft_2")];
        println!("  {:<14} {:.2}x", name, j / l);
    }
}

/// The `RunSpec` import is used through `exp::base_spec`'s return type.
#[allow(dead_code)]
fn _type_anchor(_: RunSpec) {}
