//! Fig. 11 — Sensitivity of performance to varying workload saturation.
//!
//! Saturation is the arrival-rate *speed-up* of §VI-B: a speed-up of two
//! halves every inter-job gap. Paper shape: (a) JAWS₂ and LifeRaft₂ scale
//! with saturation while NoShare and LifeRaft₁ plateau around 0.3 q/s;
//! (b) response-time gaps stay fairly insensitive — NoShare worst, LifeRaft₂
//! poor even at low saturation (it can delay queries indefinitely), and JAWS
//! trades between the regimes: near LifeRaft₂'s throughput when saturated,
//! beating LifeRaft₁'s response time at the lowest saturation.

use jaws_bench::exp;
use jaws_sim::{run_parallel, CachePolicyKind, SchedulerKind};

fn main() {
    let trace = exp::select_trace();
    let speedups: &[f64] = if exp::quick_mode() {
        &[0.25, 1.0, 4.0]
    } else {
        &[0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let mut specs = Vec::new();
    for &su in speedups {
        for kind in SchedulerKind::evaluation_set() {
            let mut s = exp::base_spec(
                &format!("{}@{su}", kind.name()),
                kind,
                CachePolicyKind::LruK,
            );
            s.speedup = su;
            specs.push(s);
        }
    }
    let results = run_parallel(&specs, &trace);

    println!("\nFig. 11(a) — Query throughput vs workload saturation (q/s)");
    exp::rule();
    print!("{:<10}", "speed-up");
    for kind in SchedulerKind::evaluation_set() {
        print!(" {:>11}", kind.name());
    }
    println!();
    exp::rule();
    let mut idx = 0;
    let mut tp: Vec<Vec<f64>> = Vec::new();
    let mut rt: Vec<Vec<f64>> = Vec::new();
    for &su in speedups {
        print!("{:<10}", su);
        let mut tp_row = Vec::new();
        let mut rt_row = Vec::new();
        for _ in 0..5 {
            let (_, r) = &results[idx];
            idx += 1;
            print!(" {:>11.3}", r.throughput_qps);
            tp_row.push(r.throughput_qps);
            rt_row.push(r.mean_response_ms / 1000.0);
        }
        println!();
        tp.push(tp_row);
        rt.push(rt_row);
    }

    println!("\nFig. 11(b) — Mean response time vs workload saturation (s)");
    exp::rule();
    print!("{:<10}", "speed-up");
    for kind in SchedulerKind::evaluation_set() {
        print!(" {:>11}", kind.name());
    }
    println!();
    exp::rule();
    for (i, &su) in speedups.iter().enumerate() {
        print!("{:<10}", su);
        for v in &rt[i] {
            print!(" {:>11.2}", v);
        }
        println!();
    }

    exp::rule();
    println!("paper shape checks (indices: 0 NoShare, 1 LR1, 2 LR2, 3 JAWS1, 4 JAWS2):");
    let last = tp.len() - 1;
    println!(
        "  NoShare plateaus: tp(max speed-up)/tp(speed-up 1) = {:.2} (paper: ~1, plateau ~0.3 q/s)",
        tp[last][0] / tp[speedups.iter().position(|&s| s == 1.0).unwrap_or(0)][0]
    );
    println!(
        "  JAWS_2 scales:    tp(max)/tp(min) = {:.2} (paper: keeps rising)",
        tp[last][4] / tp[0][4]
    );
    println!(
        "  low saturation:   JAWS_2 rt {:.1}s vs LifeRaft_2 rt {:.1}s (paper: JAWS much lower)",
        rt[0][4], rt[0][2]
    );
    println!(
        "  high saturation:  JAWS_2 tp {:.2} vs LifeRaft_2 tp {:.2} q/s (paper: comparable-or-better)",
        tp[last][4], tp[last][2]
    );
}
