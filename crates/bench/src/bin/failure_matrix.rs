//! Degraded-mode matrix (failure injection, PR 6) — writes `BENCH_6.json`.
//!
//! Replays one capacity-bound trace on a JAWS₂ cluster under a grid of
//! scripted [`FailurePlan`] scenarios and reports how much of the healthy
//! run's performance survives each:
//!
//! * **healthy** — the baseline; its makespan anchors the crash times.
//! * **crash@10% / 50% / 90%** — node 1 dies at that fraction of the
//!   healthy makespan; its Morton slab, queued parts and in-flight work are
//!   re-routed to node 0. Every query must still complete.
//! * **straggle 2x / 8x** — the last node serves every batch 2× / 8× slower
//!   from t = 0 (disk *and* compute stretched), the paper's slow-disk node.
//!
//! Every scenario is run twice and the two serialized [`ClusterReport`]s are
//! byte-compared: the `deterministic` column is asserted, not advisory.
//! Arrivals are compressed so the cluster is capacity-bound — a crash into
//! an idle cluster would re-dispatch nothing and measure nothing.
//!
//! `--smoke` shrinks geometry and trace for CI; `--out=PATH` overrides the
//! output path; `--trace-out=PATH` additionally records the crash@50%
//! scenario through a [`jaws_obs::JsonlRecorder`] and writes the JSONL
//! observability trace there (feed it to `trace_explain` for the
//! failure-recovery attribution).

use jaws_bench::exp;
use jaws_obs::{JsonlRecorder, ObsSink};
use jaws_sim::{
    CachePolicyKind, ClusterConfig, ClusterExecutor, ClusterReport, FailurePlan, SchedulerKind,
    SimConfig,
};
use jaws_turbdb::DbConfig;
use jaws_workload::Trace;
use serde::Serialize;
use std::sync::{Arc, Mutex};

/// Node the crash scenarios kill and the survivor that inherits its slab.
const CRASHED_NODE: u32 = 1;
const SURVIVOR: u32 = 0;

#[derive(Serialize)]
struct ScenarioRow {
    scenario: String,
    makespan_ms: f64,
    makespan_vs_healthy: f64,
    mean_response_ms: f64,
    throughput_qps: f64,
    queries_completed: u64,
    drained: bool,
    redispatched_parts: u64,
    first_failure_ms: Option<f64>,
    deterministic: bool,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    smoke: bool,
    nodes: u32,
    queries: u64,
    plan_seed: u64,
    rows: Vec<ScenarioRow>,
}

fn config(db: DbConfig, nodes: u32, failures: FailurePlan) -> ClusterConfig {
    ClusterConfig {
        nodes,
        db,
        cost: exp::paper_cost(),
        scheduler: SchedulerKind::Jaws2 { batch_k: 15 },
        cache_policy: CachePolicyKind::LruK,
        cache_atoms_per_node: (exp::CACHE_ATOMS as u32 / nodes).max(16) as usize,
        run_len: exp::RUN_LEN,
        gate_timeout_ms: exp::GATE_TIMEOUT_MS,
        sim: SimConfig::default(),
        failures,
        replication: jaws_sim::ReplicationConfig::disabled(),
    }
}

/// Runs the scenario twice; returns the report and whether the two
/// serialized reports were byte-identical (they must be).
fn run_twice(db: DbConfig, nodes: u32, trace: &Trace, plan: &FailurePlan) -> (ClusterReport, bool) {
    let serialized = |r: &ClusterReport| {
        exp::mask_wallclock_fields(&serde_json::to_string(r).expect("report serializes"))
    };
    let report = ClusterExecutor::new(config(db, nodes, plan.clone())).run(trace);
    let again = ClusterExecutor::new(config(db, nodes, plan.clone())).run(trace);
    let identical = serialized(&report) == serialized(&again);
    assert!(identical, "scenario replay diverged between two runs");
    (report, identical)
}

fn row(
    name: &str,
    report: &ClusterReport,
    identical: bool,
    healthy_ms: f64,
    queries: u64,
) -> ScenarioRow {
    let a = &report.aggregate;
    ScenarioRow {
        scenario: name.to_string(),
        makespan_ms: a.makespan_ms,
        makespan_vs_healthy: a.makespan_ms / healthy_ms,
        mean_response_ms: a.mean_response_ms,
        throughput_qps: a.throughput_qps,
        queries_completed: a.queries_completed,
        drained: a.queries_completed == queries && !a.truncated,
        redispatched_parts: report.degraded.as_ref().map_or(0, |d| d.redispatched_parts),
        first_failure_ms: report.degraded.as_ref().and_then(|d| d.first_failure_ms),
        deterministic: identical,
    }
}

fn main() {
    let smoke = exp::smoke_mode();
    let out_path = std::env::args()
        .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        .unwrap_or_else(|| "BENCH_6.json".to_string());
    let trace_out =
        std::env::args().find_map(|a| a.strip_prefix("--trace-out=").map(str::to_string));

    let (db, trace, nodes) = if smoke {
        eprintln!("# --smoke: tiny geometry, 3 nodes");
        (exp::smoke_db(), exp::smoke_trace().speedup(20.0), 3u32)
    } else {
        (exp::paper_db(), exp::select_trace().speedup(20.0), 4u32)
    };
    let queries = trace.query_count() as u64;
    let plan_seed = exp::TRACE_SEED;

    let (healthy, healthy_ok) = run_twice(db, nodes, &trace, &FailurePlan::none());
    let healthy_ms = healthy.aggregate.makespan_ms;
    let mut rows = vec![row("healthy", &healthy, healthy_ok, healthy_ms, queries)];

    for pct in [10u32, 50, 90] {
        let at_ms = healthy_ms * pct as f64 / 100.0;
        let plan = FailurePlan::new(plan_seed).crash_with_survivor(at_ms, CRASHED_NODE, SURVIVOR);
        let (report, identical) = run_twice(db, nodes, &trace, &plan);
        assert_eq!(
            report.aggregate.queries_completed, queries,
            "crash@{pct}% dropped queries"
        );
        if pct == 50 {
            if let Some(path) = &trace_out {
                let rc = Arc::new(Mutex::new(JsonlRecorder::new()));
                let mut ex = ClusterExecutor::new(config(db, nodes, plan.clone()));
                ex.set_recorder(ObsSink::new(rc.clone()));
                ex.run(&trace);
                // lint: invariant — the run above completed; a poisoned
                // mutex would already have panicked the emitting thread
                let jsonl = rc.lock().expect("recorder lock").take();
                std::fs::write(path, jsonl).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("# wrote observability trace of the crash@50% run to {path}");
            }
        }
        rows.push(row(
            &format!("crash@{pct}%"),
            &report,
            identical,
            healthy_ms,
            queries,
        ));
    }

    for factor in [2.0f64, 8.0] {
        let plan = FailurePlan::new(plan_seed).slowdown_at(0.0, nodes - 1, factor);
        let (report, identical) = run_twice(db, nodes, &trace, &plan);
        rows.push(row(
            &format!("straggle {factor:.0}x"),
            &report,
            identical,
            healthy_ms,
            queries,
        ));
    }

    println!("\nDegraded-mode matrix — JAWS_2 per node, {nodes} nodes, {queries} queries");
    exp::rule();
    println!(
        "{:<12} {:>14} {:>9} {:>14} {:>9} {:>8} {:>12} {:>6}",
        "scenario",
        "makespan (s)",
        "vs base",
        "mean rt (s)",
        "qps",
        "drained",
        "redispatched",
        "det"
    );
    exp::rule();
    for r in &rows {
        println!(
            "{:<12} {:>14.1} {:>8.2}x {:>14.1} {:>9.3} {:>8} {:>12} {:>6}",
            r.scenario,
            r.makespan_ms / 1000.0,
            r.makespan_vs_healthy,
            r.mean_response_ms / 1000.0,
            r.throughput_qps,
            r.drained,
            r.redispatched_parts,
            r.deterministic
        );
    }
    exp::rule();
    println!(
        "crash times are fractions of the healthy makespan; node {CRASHED_NODE} dies and node \
         {SURVIVOR} inherits its slab. Stragglers slow the last node from t = 0."
    );

    let report = BenchReport {
        bench: "failure_matrix",
        smoke,
        nodes,
        queries,
        plan_seed,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench output");
    eprintln!("# wrote {out_path}");
}
