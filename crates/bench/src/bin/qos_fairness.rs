//! QoS fairness: completion times proportional to query size (§VII).
//!
//! Measures per-query *stretch* — response time divided by the query's own
//! estimated service time — under each scheduler. A proportional scheduler
//! keeps the stretch distribution tight (its p95/p50 ratio small): small
//! queries wait little, large queries wait proportionally more, nobody
//! starves. JAWS-QoS (EDF with size-proportional deadlines) implements the
//! paper's future-work proposal while keeping per-pass data sharing.

use jaws_bench::exp;
use jaws_scheduler::MetricParams;
use jaws_sim::Percentiles;
use jaws_sim::{build_db, build_scheduler, CachePolicyKind, Executor, SchedulerKind, SimConfig};
use jaws_turbdb::DataMode;
use std::collections::HashMap;

fn main() {
    let trace = exp::select_trace();
    let cost = exp::paper_cost();
    let params = MetricParams {
        atom_read_ms: cost.atom_read_ms,
        position_compute_ms: cost.position_compute_ms,
        atoms_per_timestep: exp::paper_db().atoms_per_timestep(),
    };
    let mut estimate: HashMap<u64, f64> = HashMap::new();
    for (_, q) in trace.queries() {
        let est = q.footprint.atom_count() as f64 * cost.atom_read_ms
            + q.positions() as f64 * cost.position_compute_ms;
        estimate.insert(q.id, est.max(1.0));
    }

    println!(
        "\n{:<11} {:>9} {:>12} {:>12} {:>12} {:>14}",
        "scheduler", "qps", "stretch p50", "stretch p95", "stretch max", "p95/p50 ratio"
    );
    exp::rule();
    for kind in [
        SchedulerKind::NoShare,
        SchedulerKind::LifeRaft2,
        SchedulerKind::Jaws2 { batch_k: 15 },
        SchedulerKind::Qos { stretch_x10: 30 },
    ] {
        let db = build_db(
            exp::paper_db(),
            cost,
            DataMode::Virtual,
            exp::CACHE_ATOMS,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(kind, params, exp::RUN_LEN, exp::GATE_TIMEOUT_MS);
        let mut ex = Executor::new(db, sched, SimConfig::default());
        let r = ex.run(&trace);
        let mut stretches: Vec<f64> = ex
            .response_log()
            .iter()
            .map(|&(qid, rt)| rt / estimate[&qid])
            .collect();
        let p = Percentiles::from_samples(&mut stretches);
        println!(
            "{:<11} {:>9.3} {:>12.1} {:>12.1} {:>12.0} {:>14.1}",
            r.scheduler,
            r.throughput_qps,
            p.p50,
            p.p95,
            p.max,
            p.p95 / p.p50.max(1e-9)
        );
    }
    exp::rule();
    println!("expected shape: JAWS-QoS has the lowest tail stretch (p95 and max) — every");
    println!("query's delay is bounded proportionally to its size, the \"predictable and");
    println!("fair completion time guarantees\" of §VII — while retaining shared-scan");
    println!("throughput far above NoShare.");
}
