//! Queue-depth scaling bench (delta-propagation core, PR 8) — writes
//! `BENCH_8.json`.
//!
//! Two sections:
//!
//! 1. **depth_sweep** — per-dispatch scheduling cost at 10k / 100k / 1M
//!    queued sub-queries, old path vs new. The *reference* path is the
//!    pre-refactor full scan (`jaws_scheduler::delta::reference`): every
//!    dispatch rescans all pending atoms for the argmax and rebuilds the URC
//!    snapshot from scratch, so its cost grows with queue depth. The *delta*
//!    path reads the maintained arrangements (`best_atom` +
//!    `utility_snapshot`), whose per-dispatch cost is O(Δ + timesteps), not
//!    O(queue). Both paths are asserted to choose the same atom (bit-equal
//!    utility) before any timing. Reference reps are capped at large depths
//!    (the full scan at 1M atoms is exactly the cost being demonstrated);
//!    the cap is recorded in the row, never silent.
//! 2. **identity** — the masked-report / JSONL-trace identity columns: one
//!    seeded end-to-end run per worker count (1/2/8), byte-compared against
//!    the serial baseline after masking the two measured-wall-clock overhead
//!    fields (same masking as the determinism suite).
//!
//! The acceptance criterion for the delta-propagation refactor is
//! `within_5x`: per-dispatch delta-path cost at the deepest queue must stay
//! within 5× of the shallowest (~O(Δ), not O(queue)).
//!
//! `--smoke` shrinks queue depths and rep counts for CI; `--out=PATH`
//! overrides the output path.

use jaws_bench::exp;
use jaws_morton::{AtomId, MortonKey};
use jaws_obs::{JsonlRecorder, ObsSink};
use jaws_scheduler::delta::reference;
use jaws_scheduler::{MetricParams, Residency, SubQuery, WorkloadManager};
use jaws_sim::{build_db, build_scheduler, CachePolicyKind, Executor, SchedulerKind, SimConfig};
use jaws_turbdb::{CostModel, DataMode};
use serde::Serialize;
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Age bias used for every utility evaluation in the sweep.
const ALPHA: f64 = 0.3;

/// Simulated clock at the first dispatch, ms.
const BASE_NOW: f64 = 10_000.0;

/// Hot atoms at timestep 0: large position counts and the oldest enqueue
/// times, so the dispatch argmax always lands here and the backlog below
/// stays untouched (pure queue-depth ballast).
const HOT_ATOMS: u64 = 256;
const HOT_POSITIONS: u32 = 5_000;

/// Timesteps the cold backlog is spread over.
const COLD_TIMESTEPS: u64 = 30;

struct NoneResident;

impl Residency for NoneResident {
    fn is_resident(&self, _atom: &AtomId) -> bool {
        false
    }

    fn residency_epoch(&self) -> Option<u64> {
        Some(0) // nothing ever becomes resident
    }

    fn residency_changes_since(&self, _since: u64) -> Option<Vec<(AtomId, bool)>> {
        Some(Vec::new())
    }
}

#[derive(Serialize)]
struct DepthRow {
    queued_subqueries: u64,
    hot_atoms: u64,
    cold_timesteps: u64,
    dispatches: usize,
    reference_reps: usize,
    reference_us_per_dispatch: f64,
    delta_us_per_dispatch: f64,
    speedup: f64,
    eq1_recomputes_per_dispatch: f64,
    ts_refolds_per_dispatch: f64,
    paths_agree: bool,
}

#[derive(Serialize)]
struct IdentityRow {
    threads: usize,
    queries_completed: u64,
    report_identical_to_serial: bool,
    trace_identical_to_serial: bool,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    smoke: bool,
    threads_reported: usize,
    alpha: f64,
    depth_sweep: Vec<DepthRow>,
    /// Delta-path per-dispatch cost, deepest queue over shallowest — the
    /// `1M / 10k` ratio in full runs, smaller depths under `--smoke`.
    ratio_1m_over_10k: f64,
    within_5x: bool,
    identity: Vec<IdentityRow>,
}

/// A workload manager with `n` total queued sub-queries: the hot set at
/// timestep 0 plus an `n - HOT_ATOMS` sub-query backlog spread over
/// `COLD_TIMESTEPS` timesteps, 10 positions each, recently enqueued.
fn loaded_wm(n: u64) -> WorkloadManager {
    assert!(n > HOT_ATOMS, "queue depth must exceed the hot set");
    let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
    for i in 0..HOT_ATOMS {
        wm.enqueue([SubQuery {
            query: i + 1,
            atom: AtomId::new(0, MortonKey(i)),
            positions: HOT_POSITIONS,
            enqueued_ms: i as f64,
        }]);
    }
    for i in 0..n - HOT_ATOMS {
        wm.enqueue([SubQuery {
            query: 1_000 + i,
            atom: AtomId::new(
                1 + (i % COLD_TIMESTEPS) as u32,
                MortonKey(i / COLD_TIMESTEPS),
            ),
            positions: 10,
            enqueued_ms: 1_000.0 + (i % 997) as f64,
        }]);
    }
    wm
}

/// The dispatch total order: utility descending, `AtomId` ascending on
/// exact ties (same order `WorkloadManager::best_atom` implements).
fn argmax(utilities: Vec<(AtomId, f64)>) -> (AtomId, f64) {
    utilities
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .expect("non-empty queue")
}

fn bench_depth(n: u64, dispatches: usize, reference_reps: usize) -> DepthRow {
    let res = NoneResident;
    let mut wm = loaded_wm(n);
    black_box(wm.utility_snapshot(&res)); // prime the arrangements

    // Both paths must pick the same atom with bit-equal utility before any
    // timing is trusted.
    let (ref_atom, ref_u) = argmax(reference::aged_utilities(&wm, BASE_NOW, ALPHA, &res));
    let (delta_atom, delta_u) = wm
        .best_atom(BASE_NOW, ALPHA, &res)
        .expect("non-empty queue");
    assert_eq!(ref_atom, delta_atom, "n={n}: paths disagree on the atom");
    assert_eq!(
        ref_u.to_bits(),
        delta_u.to_bits(),
        "n={n}: utility bits differ"
    );

    // Reference path: read-only (no state change), so reps are free to be
    // capped without perturbing the steady state measured below.
    let start = Instant::now();
    for r in 0..reference_reps {
        let now = BASE_NOW + r as f64;
        black_box(argmax(reference::aged_utilities(&wm, now, ALPHA, &res)));
        black_box(reference::utility_snapshot(&wm, &res));
    }
    let reference_us_per_dispatch = start.elapsed().as_secs_f64() * 1e6 / reference_reps as f64;

    // Delta path: full steady-state dispatch loop — select, take, re-enqueue
    // an equivalent sub-query, rebuild the snapshot view.
    let before = wm.delta_stats();
    let start = Instant::now();
    for i in 0..dispatches {
        let now = BASE_NOW + i as f64;
        let (atom, _) = wm.best_atom(now, ALPHA, &res).expect("non-empty queue");
        let (group, _) = wm.take_atom(&atom);
        black_box(group.positions());
        wm.enqueue([SubQuery {
            query: 10_000_000 + i as u64,
            atom,
            positions: HOT_POSITIONS,
            enqueued_ms: now,
        }]);
        black_box(wm.utility_snapshot(&res));
    }
    let delta_us_per_dispatch = start.elapsed().as_secs_f64() * 1e6 / dispatches as f64;
    let stats = wm.delta_stats();

    DepthRow {
        queued_subqueries: n,
        hot_atoms: HOT_ATOMS,
        cold_timesteps: COLD_TIMESTEPS,
        dispatches,
        reference_reps,
        reference_us_per_dispatch,
        delta_us_per_dispatch,
        speedup: reference_us_per_dispatch / delta_us_per_dispatch,
        eq1_recomputes_per_dispatch: (stats.eq1_recomputes - before.eq1_recomputes) as f64
            / dispatches as f64,
        ts_refolds_per_dispatch: (stats.ts_refolds - before.ts_refolds) as f64 / dispatches as f64,
        paths_agree: true,
    }
}

/// One seeded end-to-end run; returns the masked report JSON, the JSONL
/// trace, and the completed-query count.
fn identity_run() -> (String, String, u64) {
    let db = build_db(
        exp::smoke_db(),
        CostModel::paper_testbed(),
        DataMode::Virtual,
        32,
        CachePolicyKind::Urc,
    );
    let sched = build_scheduler(
        SchedulerKind::Jaws2 { batch_k: 15 },
        MetricParams::paper_testbed(),
        exp::RUN_LEN,
        10_000.0,
    );
    let mut ex = Executor::new(db, sched, SimConfig::default());
    let rec = Arc::new(Mutex::new(JsonlRecorder::new()));
    ex.set_recorder(ObsSink::new(rec.clone()));
    let report = ex.run(&exp::smoke_trace());
    let masked =
        exp::mask_wallclock_fields(&serde_json::to_string(&report).expect("report serializes"));
    // lint: invariant — the run above completed; a poisoned mutex would
    // already have panicked the emitting thread
    let trace = rec.lock().expect("recorder mutex unpoisoned").take();
    (masked, trace, report.queries_completed)
}

fn bench_identity(threads: &[usize]) -> Vec<IdentityRow> {
    let mut rows: Vec<IdentityRow> = Vec::new();
    let mut serial: Option<(String, String)> = None;
    for &t in threads {
        let _guard = jaws_par::override_threads(t);
        let (masked, trace, queries) = identity_run();
        let (serial_masked, serial_trace) = serial.get_or_insert((masked.clone(), trace.clone()));
        let report_ok = masked == *serial_masked;
        let trace_ok = trace == *serial_trace;
        assert!(report_ok, "masked report differs at {t} workers");
        assert!(trace_ok, "JSONL trace differs at {t} workers");
        rows.push(IdentityRow {
            threads: t,
            queries_completed: queries,
            report_identical_to_serial: report_ok,
            trace_identical_to_serial: trace_ok,
        });
    }
    rows
}

fn main() {
    let smoke = exp::smoke_mode();
    let out_path = std::env::args()
        .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        .unwrap_or_else(|| "BENCH_8.json".to_string());
    let threads_reported = jaws_par::thread_count();

    let (depths, dispatches, full_scan_reps): (&[u64], usize, usize) = if smoke {
        (&[1_000, 4_000, 16_000], 16, 4)
    } else {
        (&[10_000, 100_000, 1_000_000], 64, 8)
    };

    println!("\nSection 1 — per-dispatch cost vs queue depth (alpha = {ALPHA})");
    exp::rule();
    println!(
        "{:<12} {:>10} {:>8} {:>16} {:>14} {:>9} {:>10} {:>10}",
        "queued",
        "dispatches",
        "ref_reps",
        "reference_us",
        "delta_us",
        "speedup",
        "eq1/disp",
        "fold/disp"
    );
    let mut depth_sweep = Vec::new();
    for &n in depths {
        // The full scan at 1M atoms is the cost being demonstrated — cap its
        // reps rather than spend minutes re-measuring it.
        let reps = if n > 100_000 {
            full_scan_reps
        } else {
            dispatches.min(16)
        };
        let row = bench_depth(n, dispatches, reps);
        println!(
            "{:<12} {:>10} {:>8} {:>16.2} {:>14.2} {:>8.1}x {:>10.2} {:>10.2}",
            row.queued_subqueries,
            row.dispatches,
            row.reference_reps,
            row.reference_us_per_dispatch,
            row.delta_us_per_dispatch,
            row.speedup,
            row.eq1_recomputes_per_dispatch,
            row.ts_refolds_per_dispatch
        );
        depth_sweep.push(row);
    }
    // `depths` above is a non-empty constant array, so the sweep has rows.
    let shallow = depth_sweep.first().expect("non-empty sweep");
    let deep = depth_sweep.last().expect("non-empty sweep");
    let ratio_1m_over_10k = deep.delta_us_per_dispatch / shallow.delta_us_per_dispatch;
    let within_5x = ratio_1m_over_10k < 5.0;
    println!(
        "\ndelta-path cost ratio {} / {} queued: {:.2}x (within 5x: {})",
        deep.queued_subqueries, shallow.queued_subqueries, ratio_1m_over_10k, within_5x
    );

    println!("\nSection 2 — masked-report / trace identity (JAWS_2, URC, seeded)");
    exp::rule();
    let identity = bench_identity(&[1, 2, 8]);
    println!(
        "{:<8} {:>10} {:>18} {:>18}",
        "threads", "queries", "report_identical", "trace_identical"
    );
    for r in &identity {
        println!(
            "{:<8} {:>10} {:>18} {:>18}",
            r.threads,
            r.queries_completed,
            r.report_identical_to_serial,
            r.trace_identical_to_serial
        );
    }

    let report = BenchReport {
        bench: "dispatch_scaling",
        smoke,
        threads_reported,
        alpha: ALPHA,
        depth_sweep,
        ratio_1m_over_10k,
        within_5x,
        identity,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench output");
    eprintln!("# wrote {out_path}");
}
