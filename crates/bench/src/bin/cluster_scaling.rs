//! Cluster scale-out (§V-C / Fig. 7 deployment; not a paper figure).
//!
//! The production Turbulence cluster partitions the 27 TB archive spatially
//! across nodes, "each running a separate JAWS instance". This experiment
//! replays the evaluation trace on 1–8 such nodes and reports aggregate
//! throughput, per-query latency and load imbalance — the scalability story
//! behind the deployment choice.

use jaws_bench::exp;
use jaws_sim::{CachePolicyKind, ClusterConfig, ClusterExecutor, SchedulerKind};

fn main() {
    let trace = exp::select_trace();
    println!("\nCluster scale-out — JAWS_2 per node, Morton-slab partitioning");
    exp::rule();
    println!(
        "{:<7} {:>9} {:>12} {:>10} {:>10} {:>11} {:>10}",
        "nodes", "qps", "mean rt (s)", "reads", "cache hit", "imbalance", "speedup"
    );
    exp::rule();
    let mut base_qps = None;
    for nodes in [1u32, 2, 4, 8] {
        let mut ex = ClusterExecutor::new(ClusterConfig {
            nodes,
            db: exp::paper_db(),
            cost: exp::paper_cost(),
            scheduler: SchedulerKind::Jaws2 { batch_k: 15 },
            cache_policy: CachePolicyKind::LruK,
            cache_atoms_per_node: (exp::CACHE_ATOMS as u32 / nodes).max(16) as usize,
            run_len: exp::RUN_LEN,
            gate_timeout_ms: exp::GATE_TIMEOUT_MS,
        });
        let r = ex.run(&trace);
        let base = *base_qps.get_or_insert(r.aggregate.throughput_qps);
        println!(
            "{:<7} {:>9.3} {:>12.1} {:>10} {:>9.1}% {:>10.2}x {:>9.2}x{}",
            nodes,
            r.aggregate.throughput_qps,
            r.aggregate.mean_response_ms / 1000.0,
            r.aggregate.disk.reads,
            r.aggregate.cache.hit_ratio() * 100.0,
            r.imbalance(),
            r.aggregate.throughput_qps / base,
            if r.aggregate.truncated {
                "  [TRUNCATED]"
            } else {
                ""
            }
        );
    }
    exp::rule();
    println!(
        "cache is split across nodes (total stays at {} atoms ≙ 2 GB).",
        exp::CACHE_ATOMS
    );
}
