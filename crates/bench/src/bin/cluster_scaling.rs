//! Cluster scale-out (§V-C / Fig. 7 deployment; not a paper figure).
//!
//! The production Turbulence cluster partitions the 27 TB archive spatially
//! across nodes, "each running a separate JAWS instance". This experiment
//! replays the evaluation trace on 1–8 such nodes — with trajectory
//! prefetching off and on, now that the unified engine drives the cluster —
//! and reports aggregate throughput, per-query latency, prefetch volume and
//! load imbalance: the scalability story behind the deployment choice.
//!
//! Flags:
//! * `--quick`  — smaller trace, full geometry;
//! * `--smoke`  — tiny geometry and trace (CI exercise of the multi-node
//!   path), 1/2/4 nodes only;
//! * `--cap-ms=<float>` — simulated-time cap per run (`max_sim_ms`),
//!   demonstrating cluster truncation;
//! * `--trace-out=<path>` — record the last configuration's run through a
//!   [`jaws_obs::JsonlRecorder`] and write the JSONL trace there (feed it to
//!   `trace_explain`).

use jaws_bench::exp;
use jaws_obs::{JsonlRecorder, ObsSink};
use jaws_sim::{
    CachePolicyKind, ClusterConfig, ClusterExecutor, FailurePlan, SchedulerKind, SimConfig,
};
use std::sync::{Arc, Mutex};

fn cap_ms() -> f64 {
    std::env::args()
        .find_map(|a| a.strip_prefix("--cap-ms=").map(str::to_string))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1e10)
}

fn trace_out() -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix("--trace-out=").map(str::to_string))
}

fn main() {
    let smoke = exp::smoke_mode();
    let (trace, db, node_counts): (_, _, &[u32]) = if smoke {
        eprintln!("# --smoke: tiny geometry, 1/2/4 nodes");
        (exp::smoke_trace(), exp::smoke_db(), &[1, 2, 4])
    } else {
        (exp::select_trace(), exp::paper_db(), &[1, 2, 4, 8])
    };
    let max_sim_ms = cap_ms();
    println!("\nCluster scale-out — JAWS_2 per node, Morton-slab partitioning");
    exp::rule();
    println!(
        "{:<7} {:<9} {:>9} {:>12} {:>10} {:>10} {:>10} {:>11} {:>9}",
        "nodes",
        "prefetch",
        "qps",
        "mean rt (s)",
        "reads",
        "prefetches",
        "cache hit",
        "imbalance",
        "speedup"
    );
    exp::rule();
    let trace_path = trace_out();
    let mut last_trace: Option<String> = None;
    let mut base_qps = None;
    for &nodes in node_counts {
        for prefetch in [false, true] {
            let mut ex = ClusterExecutor::new(ClusterConfig {
                nodes,
                db,
                cost: exp::paper_cost(),
                scheduler: SchedulerKind::Jaws2 { batch_k: 15 },
                cache_policy: CachePolicyKind::LruK,
                cache_atoms_per_node: (exp::CACHE_ATOMS as u32 / nodes).max(16) as usize,
                run_len: exp::RUN_LEN,
                gate_timeout_ms: exp::GATE_TIMEOUT_MS,
                sim: SimConfig {
                    prefetch,
                    max_sim_ms,
                    ..SimConfig::default()
                },
                failures: FailurePlan::none(),
                replication: jaws_sim::ReplicationConfig::disabled(),
            });
            let recorder = trace_path.as_ref().map(|_| {
                let rc = Arc::new(Mutex::new(JsonlRecorder::new()));
                ex.set_recorder(ObsSink::new(rc.clone()));
                rc
            });
            let r = ex.run(&trace);
            if let Some(rc) = recorder {
                // lint: invariant — the run above completed; a poisoned mutex
                // would already have panicked the emitting thread
                last_trace = Some(rc.lock().expect("recorder lock").take());
            }
            let base = *base_qps.get_or_insert(r.aggregate.throughput_qps);
            println!(
                "{:<7} {:<9} {:>9.3} {:>12.1} {:>10} {:>10} {:>9.1}% {:>10.2}x {:>8.2}x{}",
                nodes,
                if prefetch { "on" } else { "off" },
                r.aggregate.throughput_qps,
                r.aggregate.mean_response_ms / 1000.0,
                r.aggregate.disk.reads,
                r.prefetch_reads(),
                r.aggregate.cache.hit_ratio() * 100.0,
                r.imbalance(),
                r.aggregate.throughput_qps / base,
                if r.aggregate.truncated {
                    "  [TRUNCATED]"
                } else {
                    ""
                }
            );
        }
    }
    exp::rule();
    println!(
        "cache is split across nodes (total stays at {} atoms ≙ 2 GB); speedup is vs the \
         1-node prefetch-off row.",
        exp::CACHE_ATOMS
    );
    if let (Some(path), Some(jsonl)) = (trace_path, last_trace) {
        std::fs::write(&path, jsonl).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote observability trace of the last run to {path}");
    }
}
