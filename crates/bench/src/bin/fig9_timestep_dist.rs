//! Fig. 9 — Distribution of queries by timestep accessed.
//!
//! The paper: "70% of queries reuse data from a dozen time steps that are
//! mostly clustered at the start and end of simulation time", a secondary
//! spike mid-range, and a downward access trend from jobs that terminate
//! midway.

use jaws_bench::exp;
use jaws_workload::stats::{timestep_histogram, top_atom_share, top_timestep_share};

fn main() {
    let trace = exp::select_trace();
    let hist = timestep_histogram(&trace);
    let total: u64 = hist.iter().sum();
    let peak = *hist.iter().max().expect("non-empty") as f64;

    println!("\nFig. 9 — Distribution of queries by timestep accessed");
    exp::rule();
    println!(
        "{:>8} {:>9} {:>9}  access frequency",
        "timestep", "queries", "share"
    );
    exp::rule();
    for (t, &n) in hist.iter().enumerate() {
        let bar = "#".repeat(((n as f64 / peak) * 60.0).round() as usize);
        println!(
            "{:>8} {:>9} {:>8.1}%  {}",
            t,
            n,
            n as f64 / total as f64 * 100.0,
            bar
        );
    }
    exp::rule();
    println!(
        "share of queries in the top 12 timesteps: paper ~70%, measured {:.0}%",
        top_timestep_share(&trace, 12) * 100.0
    );
    let single = jaws_workload::stats::single_timestep_job_share(&trace);
    println!(
        "jobs touching a single timestep: paper 88%, measured {:.0}%",
        single * 100.0
    );
    println!(
        "spatial reuse (top 5% of atoms): {:.0}% of positions — \"similar reuse along the\"",
        top_atom_share(&trace, 4096 / 20) * 100.0
    );
    println!("\"spatial dimension, although the skew is less pronounced\" (§VI-A)");
}
