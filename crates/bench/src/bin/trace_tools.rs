//! Trace utility: generate, inspect and rescale workload traces on disk.
//!
//! ```text
//! trace_tools generate <out.json> [--jobs N] [--seed S] [--small]
//! trace_tools info     <trace.json>
//! trace_tools speedup  <in.json> <factor> <out.json>
//! ```
//!
//! Traces are the JSON serialization of `jaws_workload::Trace`; anything this
//! tool writes can be replayed by the experiment binaries' machinery or the
//! library's `Executor`.

use jaws_workload::stats::{job_duration_histogram, timestep_histogram, top_timestep_share};
use jaws_workload::{GenConfig, Trace, TraceGenerator};
use std::fs::File;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  trace_tools generate <out.json> [--jobs N] [--seed S] [--small]");
    eprintln!("  trace_tools info     <trace.json>");
    eprintln!("  trace_tools speedup  <in.json> <factor> <out.json>");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Trace, String> {
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    Trace::load_json(f).map_err(|e| format!("parse {path}: {e}"))
}

fn save(trace: &Trace, path: &str) -> Result<(), String> {
    let f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    trace.save_json(f).map_err(|e| format!("write {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "generate" => generate(&args[1..]),
        "info" => info(&args[1..]),
        "speedup" => speedup(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let out = args.first().ok_or("missing output path")?;
    let mut small = false;
    let mut jobs: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => small = true,
            "--jobs" => {
                jobs = Some(
                    it.next()
                        .ok_or("--jobs needs a value")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?,
                )
            }
            "--seed" => {
                seed = Some(
                    it.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let mut cfg = if small {
        GenConfig::small(seed.unwrap_or(42))
    } else {
        GenConfig::paper_like(seed.unwrap_or(2009_0720))
    };
    if let Some(j) = jobs {
        cfg.jobs = j;
    }
    let trace = TraceGenerator::new(cfg).generate();
    save(&trace, out)?;
    println!(
        "wrote {out}: {} jobs / {} queries / {} positions",
        trace.jobs.len(),
        trace.query_count(),
        trace.position_count()
    );
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing trace path")?;
    let t = load(path)?;
    t.validate();
    println!("trace {path}");
    println!(
        "  geometry        {} timesteps x {}^3 atoms",
        t.timesteps, t.atoms_per_side
    );
    println!(
        "  jobs            {} ({} ordered)",
        t.jobs.len(),
        t.ordered_job_count()
    );
    println!("  queries         {}", t.query_count());
    println!("  positions       {}", t.position_count());
    println!("  in-job queries  {:.1}%", t.fraction_in_jobs() * 100.0);
    let span_ms =
        t.jobs.last().map_or(0.0, |j| j.arrival_ms) - t.jobs.first().map_or(0.0, |j| j.arrival_ms);
    println!("  arrival span    {:.2} h", span_ms / 3.6e6);
    println!(
        "  top-12 ts share {:.1}%",
        top_timestep_share(&t, 12) * 100.0
    );
    println!("  duration histogram (nominal, paper cost model):");
    for b in job_duration_histogram(&t, 80.0, 0.05) {
        println!(
            "    {:<10} {:>6} jobs {:>5.1}%",
            b.label,
            b.count,
            b.fraction * 100.0
        );
    }
    let hist = timestep_histogram(&t);
    let peak = *hist.iter().max().unwrap_or(&1) as f64;
    println!("  queries per timestep:");
    for (ts, n) in hist.iter().enumerate() {
        println!(
            "    t{ts:<3} {:>7} {}",
            n,
            "#".repeat((*n as f64 / peak * 40.0).round() as usize)
        );
    }
    Ok(())
}

fn speedup(args: &[String]) -> Result<(), String> {
    let [input, factor, output] = args else {
        return Err("speedup needs <in.json> <factor> <out.json>".into());
    };
    let f: f64 = factor.parse().map_err(|e| format!("factor: {e}"))?;
    if f <= 0.0 {
        return Err("factor must be positive".into());
    }
    let t = load(input)?.speedup(f);
    save(&t, output)?;
    println!("wrote {output} at {f}x arrival rate");
    Ok(())
}
