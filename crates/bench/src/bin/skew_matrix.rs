//! Dynamic-placement matrix (hot-atom replication, PR 9) — writes
//! `BENCH_9.json`.
//!
//! Replays one Zipf-skewed trace — most queries hammer the lowest-ranked
//! Morton keys, which all live in node 0's slab — on JAWS₂ clusters of 1, 2,
//! 4 and 8 nodes, with dynamic placement off (the paper's static Morton
//! slabs) and on (hot-atom replication with least-loaded replica routing).
//! Reported per cell:
//!
//! * makespan / mean response / throughput;
//! * the busy-time load imbalance ([`ClusterReport::imbalance`]) — the
//!   number replication exists to push down;
//! * the replica directory's counters: promotions, demotions, diverted
//!   sub-queries.
//!
//! Every cell is run twice and the two serialized [`ClusterReport`]s are
//! byte-compared (wall-clock telemetry masked); on the 4-node cells the
//! whole replay is additionally repeated at 1, 2 and 8 `jaws-par` workers —
//! reports *and* JSONL observability traces must be byte-identical, with
//! replication on and off alike. Both determinism columns are asserted, not
//! advisory, as is the headline claim: at 4 and 8 nodes the replicated
//! imbalance must come in strictly below the static one.
//!
//! `--smoke` shrinks geometry and trace for CI; `--out=PATH` overrides the
//! output path; `--trace-out=PATH` additionally records the 4-node
//! replicated cell through a [`jaws_obs::JsonlRecorder`] and writes the
//! JSONL observability trace there (feed it to `trace_explain` for the
//! dynamic-placement attribution).

use jaws_bench::exp;
use jaws_morton::MortonKey;
use jaws_obs::{JsonlRecorder, ObsSink};
use jaws_sim::{
    CachePolicyKind, ClusterConfig, ClusterExecutor, ClusterReport, FailurePlan, ReplicationConfig,
    SchedulerKind, SimConfig,
};
use jaws_turbdb::DbConfig;
use jaws_workload::{Footprint, Job, JobKind, Query, QueryOp, Trace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::sync::{Arc, Mutex};

#[derive(Serialize)]
struct ScenarioRow {
    nodes: u32,
    replication: bool,
    makespan_ms: f64,
    mean_response_ms: f64,
    throughput_qps: f64,
    imbalance: f64,
    promotions: u64,
    demotions: u64,
    replica_routed: u64,
    deterministic: bool,
    /// Byte-identity of reports and JSONL traces at 1/2/8 workers; only the
    /// 4-node cells run the sweep, the others inherit `true` vacuously.
    thread_deterministic: bool,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    smoke: bool,
    queries: u64,
    zipf_exponent: f64,
    rows: Vec<ScenarioRow>,
}

/// The replication knobs the matrix runs with: a generous window so the
/// Zipf head stays hot for the whole replay, a low promotion threshold so
/// smoke-sized traces still promote, single replicas, and a hot-atom budget
/// far above what the trace can fill.
fn replication_on() -> ReplicationConfig {
    ReplicationConfig {
        enabled: true,
        window_ms: 600_000.0,
        promote_accesses: 6,
        demote_accesses: 1,
        max_replicas_per_atom: 1,
        max_hot_atoms: 64,
    }
}

/// A Zipf-skewed batched workload: footprint keys are drawn from a Zipf
/// distribution over Morton rank (exponent `s`), so rank 0 — the first key
/// of node 0's slab — absorbs the head of the distribution no matter how
/// many nodes the grid is split across. Seeded ChaCha8, fully deterministic.
fn zipf_trace(db: DbConfig, jobs: u64, queries_per_job: u64, s: f64) -> Trace {
    let per_ts = db.atoms_per_timestep();
    let timesteps = db.timesteps;
    // Inverse-CDF table for the Zipf ranks.
    let weights: Vec<f64> = (0..per_ts)
        .map(|r| 1.0 / ((r + 1) as f64).powf(s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(exp::TRACE_SEED);
    let draw = |rng: &mut ChaCha8Rng| -> u64 {
        let u: f64 = rng.gen();
        cdf.partition_point(|&c| c < u) as u64
    };
    let mut qid = 0u64;
    let jobs = (0..jobs)
        .map(|j| Job {
            id: j + 1,
            user: (j % 16) as u32,
            kind: JobKind::Batched,
            campaign: 1 + j % 4,
            queries: (0..queries_per_job)
                .map(|_| {
                    qid += 1;
                    let atoms = 1 + rng.gen_range(0..2u32);
                    Query {
                        id: qid,
                        user: (j % 16) as u32,
                        op: QueryOp::Velocity,
                        timestep: rng.gen_range(0..timesteps),
                        footprint: Footprint::from_pairs(
                            (0..atoms).map(|_| (MortonKey(draw(&mut rng)), 40u32)),
                        ),
                    }
                })
                .collect(),
            arrival_ms: j as f64 * 25.0,
            think_ms: 0.0,
        })
        .collect();
    Trace::new(timesteps, db.atoms_per_side(), jobs)
}

fn config(db: DbConfig, nodes: u32, replication: ReplicationConfig) -> ClusterConfig {
    ClusterConfig {
        nodes,
        db,
        cost: exp::paper_cost(),
        scheduler: SchedulerKind::Jaws2 { batch_k: 15 },
        cache_policy: CachePolicyKind::LruK,
        cache_atoms_per_node: (exp::CACHE_ATOMS as u32 / nodes).max(16) as usize,
        run_len: exp::RUN_LEN,
        gate_timeout_ms: exp::GATE_TIMEOUT_MS,
        sim: SimConfig::default(),
        failures: FailurePlan::none(),
        replication,
    }
}

fn serialized(r: &ClusterReport) -> String {
    exp::mask_wallclock_fields(&serde_json::to_string(r).expect("report serializes"))
}

/// Runs the cell twice; returns the report and whether the two serialized
/// reports were byte-identical (they must be).
fn run_twice(cfg: &ClusterConfig, trace: &Trace) -> (ClusterReport, bool) {
    let report = ClusterExecutor::new(cfg.clone()).run(trace);
    let again = ClusterExecutor::new(cfg.clone()).run(trace);
    let identical = serialized(&report) == serialized(&again);
    assert!(identical, "cell replay diverged between two runs");
    (report, identical)
}

/// One instrumented replay; returns (masked report JSON, JSONL trace).
fn instrumented_run(cfg: &ClusterConfig, trace: &Trace) -> (String, String) {
    let rc = Arc::new(Mutex::new(JsonlRecorder::new()));
    let mut ex = ClusterExecutor::new(cfg.clone());
    ex.set_recorder(ObsSink::new(rc.clone()));
    let report = ex.run(trace);
    // lint: invariant — the run above completed; a poisoned mutex would
    // already have panicked the emitting thread
    let jsonl = rc.lock().expect("recorder lock").take();
    (serialized(&report), jsonl)
}

/// Byte-identity of reports and JSONL traces at 1, 2 and 8 workers.
fn thread_sweep(cfg: &ClusterConfig, trace: &Trace) -> bool {
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let _guard = jaws_par::override_threads(threads);
        runs.push(instrumented_run(cfg, trace));
    }
    let identical = runs[0] == runs[1] && runs[0] == runs[2];
    assert!(identical, "replay diverged across 1/2/8 workers");
    identical
}

fn main() {
    let smoke = exp::smoke_mode();
    let out_path = std::env::args()
        .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        .unwrap_or_else(|| "BENCH_9.json".to_string());
    let trace_out =
        std::env::args().find_map(|a| a.strip_prefix("--trace-out=").map(str::to_string));
    let zipf_s = 1.1;

    let (db, trace) = if smoke {
        eprintln!("# --smoke: tiny geometry, 24x8 Zipf trace");
        (exp::smoke_db(), zipf_trace(exp::smoke_db(), 24, 8, zipf_s))
    } else {
        (
            exp::paper_db(),
            zipf_trace(exp::paper_db(), 120, 16, zipf_s),
        )
    };
    let queries = trace.query_count() as u64;

    let mut rows: Vec<ScenarioRow> = Vec::new();
    for nodes in [1u32, 2, 4, 8] {
        for replicated in [false, true] {
            let rep = if replicated {
                replication_on()
            } else {
                ReplicationConfig::disabled()
            };
            let cfg = config(db, nodes, rep);
            let (report, identical) = run_twice(&cfg, &trace);
            assert_eq!(
                report.aggregate.queries_completed, queries,
                "{nodes}-node replicated={replicated} cell dropped queries"
            );
            let thread_deterministic = if nodes == 4 {
                thread_sweep(&cfg, &trace)
            } else {
                true
            };
            if nodes == 4 && replicated {
                if let Some(path) = &trace_out {
                    let (_, jsonl) = instrumented_run(&cfg, &trace);
                    std::fs::write(path, jsonl)
                        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                    eprintln!("# wrote observability trace of the 4-node replicated run to {path}");
                }
            }
            let summary = report.replication.as_ref();
            rows.push(ScenarioRow {
                nodes,
                replication: replicated,
                makespan_ms: report.aggregate.makespan_ms,
                mean_response_ms: report.aggregate.mean_response_ms,
                throughput_qps: report.aggregate.throughput_qps,
                imbalance: report.imbalance(),
                promotions: summary.map_or(0, |s| s.promotions),
                demotions: summary.map_or(0, |s| s.demotions),
                replica_routed: summary.map_or(0, |s| s.replica_routed),
                deterministic: identical,
                thread_deterministic,
            });
        }
    }

    // The headline claim: on clusters wide enough for the skew to hurt,
    // replication must strictly reduce the busy-time imbalance.
    for nodes in [4u32, 8] {
        let cell = |replicated: bool| {
            rows.iter()
                .find(|r| r.nodes == nodes && r.replication == replicated)
                .expect("matrix cell present")
        };
        let (off, on) = (cell(false), cell(true));
        assert!(
            on.imbalance < off.imbalance,
            "{nodes} nodes: replication did not reduce imbalance \
             ({:.3} vs static {:.3})",
            on.imbalance,
            off.imbalance
        );
        assert!(on.promotions > 0, "{nodes} nodes: nothing promoted");
        assert!(on.replica_routed > 0, "{nodes} nodes: nothing diverted");
    }

    println!("\nSkew matrix — JAWS_2 per node, Zipf s={zipf_s}, {queries} queries");
    exp::rule();
    println!(
        "{:<6} {:<5} {:>13} {:>13} {:>8} {:>10} {:>6} {:>6} {:>9} {:>5} {:>7}",
        "nodes",
        "repl",
        "makespan (s)",
        "mean rt (s)",
        "qps",
        "imbalance",
        "promo",
        "demo",
        "diverted",
        "det",
        "thr-det"
    );
    exp::rule();
    for r in &rows {
        println!(
            "{:<6} {:<5} {:>13.1} {:>13.1} {:>8.3} {:>10.3} {:>6} {:>6} {:>9} {:>5} {:>7}",
            r.nodes,
            r.replication,
            r.makespan_ms / 1000.0,
            r.mean_response_ms / 1000.0,
            r.throughput_qps,
            r.imbalance,
            r.promotions,
            r.demotions,
            r.replica_routed,
            r.deterministic,
            r.thread_deterministic
        );
    }
    exp::rule();
    println!(
        "Zipf head keys live in node 0's slab; replication promotes them onto least-loaded \
         peers. imbalance = max/mean node busy time (1.0 = balanced)."
    );

    let report = BenchReport {
        bench: "skew_matrix",
        smoke,
        queries,
        zipf_exponent: zipf_s,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench output");
    eprintln!("# wrote {out_path}");
}
