//! Explains a JSONL observability trace (tentpole tooling for `jaws-obs`).
//!
//! Reads a trace produced by wiring a [`jaws_obs::JsonlRecorder`] into an
//! executor (e.g. `cluster_scaling --smoke --trace-out=trace.jsonl`) and
//! prints:
//!
//! * a per-query latency breakdown — queue wait vs. charged service vs. the
//!   I/O share of that service — reconstructed from `QuerySubmit`,
//!   `BatchExecuted` and `QueryComplete` events;
//! * "why chosen" explanations for a sample of `BatchSelected` records: the
//!   timestep, the α/threshold in force, and each chosen atom's Eq. 1
//!   (workload throughput) and Eq. 2 (aged utility) terms;
//! * aggregate means plus cache/prefetch counters;
//! * a failure-recovery section when the run carried a scripted
//!   [`jaws_sim::FailurePlan`]: each crash with its survivor and re-dispatch
//!   volume, each straggler with its factor, and how many distinct queries
//!   had a part moved;
//! * a dynamic-placement section when the run replicated hot atoms
//!   ([`jaws_sim::ReplicationConfig`]): promotions/demotions/crash drops,
//!   how many sub-queries were diverted to replicas, and the hottest
//!   replicated Morton keys by diverted volume.
//!
//! Batch-level costs are split evenly over the parts completing in the batch
//! and folded onto the original trace query id via
//! [`jaws_sim::engine::orig_id`], so cluster traces (packed part ids) and
//! single-node traces (raw query ids) both work.
//!
//! Usage: `trace_explain <trace.jsonl> [--queries=N] [--batches=N]`

use jaws_obs::{Event, Record};
use jaws_sim::engine;
use std::collections::BTreeMap;

#[derive(Default)]
struct QueryStat {
    submit_ms: Option<f64>,
    service_ms: f64,
    io_ms: f64,
    response_ms: Option<f64>,
}

struct Crash {
    t_ms: f64,
    node: u32,
    survivor: u32,
    redispatched: u64,
}

struct Slowdown {
    t_ms: f64,
    node: u32,
    factor: f64,
}

struct Selection {
    t_ms: f64,
    node: Option<u32>,
    timestep: u32,
    alpha: f64,
    threshold: f64,
    atoms: Vec<jaws_obs::AtomChoice>,
}

fn flag(name: &str, default: usize) -> usize {
    std::env::args()
        .find_map(|a| a.strip_prefix(name).map(str::to_string))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .expect("usage: trace_explain <trace.jsonl> [--queries=N] [--batches=N]");
    let max_queries = flag("--queries=", 20);
    let max_batches = flag("--batches=", 5);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));

    let mut queries: BTreeMap<u64, QueryStat> = BTreeMap::new();
    let mut selections: Vec<Selection> = Vec::new();
    let mut batches = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut prefetches = 0u64;
    let mut evictions = 0u64;
    let mut records = 0u64;
    let mut crashes: Vec<Crash> = Vec::new();
    let mut slowdowns: Vec<Slowdown> = Vec::new();
    let mut moved_parts = 0u64;
    let mut moved_queries: std::collections::BTreeSet<u64> = Default::default();
    let mut promotions = 0u64;
    let mut demotions = 0u64;
    let mut crash_drops = 0u64;
    let mut routed_by_atom: BTreeMap<u64, u64> = BTreeMap::new();

    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let rec: Record = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("malformed trace record: {e}\n  {line}"));
        records += 1;
        match rec.event {
            Event::QuerySubmit { query, .. } => {
                queries.entry(query).or_default().submit_ms = Some(rec.t_ms);
            }
            Event::BatchExecuted {
                parts,
                service_ms,
                io_ms,
                ..
            } => {
                batches += 1;
                let share = parts.len().max(1) as f64;
                for part in parts {
                    let q = queries.entry(engine::orig_id(part)).or_default();
                    q.service_ms += service_ms / share;
                    q.io_ms += io_ms / share;
                }
            }
            Event::QueryComplete { query, response_ms } => {
                queries.entry(query).or_default().response_ms = Some(response_ms);
            }
            Event::BatchSelected {
                timestep,
                alpha,
                threshold,
                atoms,
            } => selections.push(Selection {
                t_ms: rec.t_ms,
                node: rec.node,
                timestep,
                alpha,
                threshold,
                atoms,
            }),
            Event::AtomRead { hit, .. } => {
                if hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            Event::PrefetchIssued { .. } => prefetches += 1,
            Event::CacheEvict { .. } => evictions += 1,
            Event::NodeFailed {
                node,
                survivor,
                redispatched,
            } => crashes.push(Crash {
                t_ms: rec.t_ms,
                node,
                survivor,
                redispatched,
            }),
            Event::PartRedispatched { part, .. } => {
                moved_parts += 1;
                moved_queries.insert(engine::orig_id(part));
            }
            Event::NodeSlowdown { node, factor } => slowdowns.push(Slowdown {
                t_ms: rec.t_ms,
                node,
                factor,
            }),
            Event::ReplicaPromoted { .. } => promotions += 1,
            Event::ReplicaDropped { crashed, .. } => {
                if crashed {
                    crash_drops += 1;
                } else {
                    demotions += 1;
                }
            }
            Event::ReplicaRouted { morton, .. } => {
                *routed_by_atom.entry(morton).or_default() += 1;
            }
            _ => {}
        }
    }

    let completed: Vec<(u64, &QueryStat)> = queries
        .iter()
        .filter(|(_, s)| s.response_ms.is_some())
        .map(|(&id, s)| (id, s))
        .collect();

    println!(
        "trace {path}: {records} records, {} queries ({} completed), {batches} batches",
        queries.len(),
        completed.len()
    );

    println!("\nPer-query latency breakdown (first {max_queries} by id)");
    println!(
        "{:>8} {:>12} {:>13} {:>13} {:>12} {:>10}",
        "query", "submit (ms)", "response (ms)", "wait (ms)", "service (ms)", "io (ms)"
    );
    for (id, s) in completed.iter().take(max_queries) {
        // Safe: `completed` filters on response_ms.is_some().
        let response = s.response_ms.expect("filtered on response");
        let wait = (response - s.service_ms).max(0.0);
        println!(
            "{id:>8} {:>12.1} {response:>13.1} {wait:>13.1} {:>12.1} {:>10.1}",
            s.submit_ms.unwrap_or(f64::NAN),
            s.service_ms,
            s.io_ms
        );
    }

    if !selections.is_empty() {
        println!(
            "\nBatch selections — why chosen (first {max_batches} of {})",
            selections.len()
        );
        for sel in selections.iter().take(max_batches) {
            let node = sel.node.map_or(String::new(), |n| format!(" node={n}"));
            println!(
                "  t={:.1}{node} ts={} alpha={:.3} threshold={:.4}: {} atoms",
                sel.t_ms,
                sel.timestep,
                sel.alpha,
                sel.threshold,
                sel.atoms.len()
            );
            for a in sel.atoms.iter().take(4) {
                println!(
                    "    morton={:<6} eq1={:<10.4} aged={:.4}{}",
                    a.morton,
                    a.eq1,
                    a.aged,
                    if a.aged >= sel.threshold {
                        "  (>= threshold)"
                    } else {
                        "  (rode along with the batch timestep)"
                    }
                );
            }
        }
    }

    if !completed.is_empty() {
        let n = completed.len() as f64;
        let mean =
            |f: &dyn Fn(&QueryStat) -> f64| completed.iter().map(|(_, s)| f(s)).sum::<f64>() / n;
        let mean_resp = mean(&|s| s.response_ms.unwrap_or(0.0));
        let mean_service = mean(&|s| s.service_ms);
        let mean_io = mean(&|s| s.io_ms);
        println!("\nAggregates over {} completed queries", completed.len());
        println!(
            "  mean response {mean_resp:.1} ms = queue wait {:.1} ms + service {mean_service:.1} ms \
             (of which I/O {mean_io:.1} ms)",
            (mean_resp - mean_service).max(0.0)
        );
    }
    let reads = hits + misses;
    if reads > 0 {
        println!(
            "  atom reads {reads} (cache hit {:.1}%), prefetches {prefetches}, evictions {evictions}",
            100.0 * hits as f64 / reads as f64
        );
    }

    if !crashes.is_empty() || !slowdowns.is_empty() {
        println!("\nFailure recovery");
        for c in &crashes {
            println!(
                "  t={:.1}: node {} crashed; node {} inherited its slab and {} queued/in-flight \
                 part(s)",
                c.t_ms, c.node, c.survivor, c.redispatched
            );
        }
        for s in &slowdowns {
            println!(
                "  t={:.1}: node {} degraded to a {:.1}x straggler",
                s.t_ms, s.node, s.factor
            );
        }
        if moved_parts > 0 {
            println!(
                "  {} part(s) across {} distinct quer{} were re-dispatched through survivors",
                moved_parts,
                moved_queries.len(),
                if moved_queries.len() == 1 { "y" } else { "ies" }
            );
        }
    }

    if promotions + demotions + crash_drops > 0 || !routed_by_atom.is_empty() {
        let diverted: u64 = routed_by_atom.values().sum();
        println!("\nDynamic placement");
        println!(
            "  {promotions} promotion(s), {demotions} demotion(s), {crash_drops} crash drop(s); \
             {diverted} sub-quer{} diverted to replicas",
            if diverted == 1 { "y" } else { "ies" }
        );
        let mut hottest: Vec<(u64, u64)> = routed_by_atom.into_iter().collect();
        hottest.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (morton, count) in hottest.iter().take(5) {
            println!("  morton={morton:<6} {count} diverted sub-queries");
        }
    }
}
