//! Fig. 10 — Query throughput by scheduling algorithm.
//!
//! The paper reports, on the 50k-query trace: JAWS₂ ≈ 2.6× NoShare; removing
//! job-awareness (JAWS₂ → JAWS₁) costs ~30%; two-level scheduling
//! (JAWS₁ vs LifeRaft₂) is worth ~12%; contention vs arrival order
//! (LifeRaft₂ vs LifeRaft₁) is worth ~22%.
//!
//! Run with `--quick` for a 150-job smoke trace.

use jaws_bench::exp;
use jaws_sim::{run_parallel, CachePolicyKind, SchedulerKind};

fn main() {
    let trace = exp::select_trace();
    let specs: Vec<_> = SchedulerKind::evaluation_set()
        .iter()
        .map(|&k| exp::base_spec(k.name(), k, CachePolicyKind::LruK))
        .collect();
    let results = run_parallel(&specs, &trace);

    println!("\nFig. 10 — Query throughput by scheduling algorithm");
    exp::rule();
    println!(
        "{:<11} {:>9} {:>12} {:>10} {:>8} {:>8} {:>8} {:>9} {:>8} {:>6}",
        "scheduler",
        "qps",
        "mean rt (s)",
        "mkspan(h)",
        "reads",
        "seeks",
        "batches",
        "cache hit",
        "forced",
        "alpha"
    );
    exp::rule();
    let mut qps = std::collections::HashMap::new();
    for (spec, r) in &results {
        qps.insert(spec.label.clone(), r.throughput_qps);
        println!(
            "{:<11} {:>9.3} {:>12.2} {:>10.2} {:>8} {:>8} {:>8} {:>8.1}% {:>8} {:>6.2}{}",
            r.scheduler,
            r.throughput_qps,
            r.mean_response_ms / 1000.0,
            r.makespan_ms / 3.6e6,
            r.disk.reads,
            r.disk.seeks,
            r.scheduler_stats.batches,
            r.cache.hit_ratio() * 100.0,
            r.scheduler_stats.forced_releases,
            r.alpha_final,
            if r.truncated { "  [TRUNCATED]" } else { "" }
        );
    }
    exp::rule();
    let ratio = |a: &str, b: &str| qps[a] / qps[b];
    println!("paper expectations vs measured:");
    println!(
        "  JAWS_2 / NoShare      paper ~2.6x   measured {:.2}x",
        ratio("JAWS_2", "NoShare")
    );
    println!(
        "  JAWS_2 / JAWS_1       paper ~1.43x  measured {:.2}x  (30% drop without job-awareness)",
        ratio("JAWS_2", "JAWS_1")
    );
    println!(
        "  JAWS_1 / LifeRaft_2   paper ~1.12x  measured {:.2}x  (two-level scheduling)",
        ratio("JAWS_1", "LifeRaft_2")
    );
    println!(
        "  LifeRaft_2/LifeRaft_1 paper ~1.22x  measured {:.2}x  (contention vs arrival order)",
        ratio("LifeRaft_2", "LifeRaft_1")
    );
    println!(
        "  JAWS_2 / LifeRaft_2   paper ~1.6x   measured {:.2}x  (overall vs LifeRaft)",
        ratio("JAWS_2", "LifeRaft_2")
    );
}
