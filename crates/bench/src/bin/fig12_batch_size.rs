//! Fig. 12 — Performance impact of varying batch size k in JAWS.
//!
//! Paper shape: optimal k between 10 and 15; at k = 1 JAWS still beats
//! LifeRaft₂ thanks to job-awareness; beyond ~20 performance degrades
//! (cache eviction, less contention-conforming order); beyond ~50 the impact
//! is marginal because only above-mean atoms are ever selected.

use jaws_bench::exp;
use jaws_sim::{run_parallel, CachePolicyKind, SchedulerKind};

fn main() {
    let trace = exp::select_trace();
    let ks: &[usize] = if exp::quick_mode() {
        &[1, 10, 30]
    } else {
        &[1, 2, 5, 10, 15, 20, 30, 50, 75, 100]
    };
    let mut specs: Vec<_> = ks
        .iter()
        .map(|&k| {
            exp::base_spec(
                &format!("k={k}"),
                SchedulerKind::Jaws2 { batch_k: k },
                CachePolicyKind::LruK,
            )
        })
        .collect();
    // LifeRaft_2 reference line (the paper's "even at k = 1, JAWS outperforms
    // LifeRaft_2 due to job-awareness").
    specs.push(exp::base_spec(
        "LifeRaft_2",
        SchedulerKind::LifeRaft2,
        CachePolicyKind::LruK,
    ));
    let results = run_parallel(&specs, &trace);

    println!("\nFig. 12 — Performance impact of batch size k (JAWS_2)");
    exp::rule();
    println!(
        "{:<12} {:>9} {:>12} {:>9} {:>9} {:>10}",
        "k", "qps", "mean rt (s)", "reads", "seeks", "cache hit"
    );
    exp::rule();
    for (spec, r) in &results {
        println!(
            "{:<12} {:>9.3} {:>12.2} {:>9} {:>9} {:>9.1}%",
            spec.label,
            r.throughput_qps,
            r.mean_response_ms / 1000.0,
            r.disk.reads,
            r.disk.seeks,
            r.cache.hit_ratio() * 100.0
        );
    }
    exp::rule();
    let qps: Vec<f64> = results.iter().map(|(_, r)| r.throughput_qps).collect();
    let lr2 = qps[qps.len() - 1];
    let best = qps[..qps.len() - 1]
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);
    let best_k = ks[qps[..qps.len() - 1]
        .iter()
        .position(|&q| q == best)
        .unwrap_or(0)];
    println!("best k measured: {best_k} (paper: 10-15)");
    println!(
        "JAWS at k=1 vs LifeRaft_2: {:.2}x (paper: >1 due to job-awareness)",
        qps[0] / lr2
    );
}
