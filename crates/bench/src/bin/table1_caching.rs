//! Table I — Performance and overhead of caching algorithms.
//!
//! The paper, running JAWS with a 2 GB externally managed cache:
//!
//! | policy | cache hit | seconds/qry | overhead/qry |
//! |--------|-----------|-------------|--------------|
//! | LRU-K  | 47%       | 1.62        | —            |
//! | SLRU   | 49%       | 1.56        | < 1 ms       |
//! | URC    | 54%       | 1.39        | 7 ms         |
//!
//! Exploiting workload knowledge buys URC +7 points of hit ratio and 16%
//! better query performance; SLRU gets a modest +2 points for almost no
//! overhead. Overhead here is *measured wall-clock time inside the policy*,
//! exactly as the paper measures it against its implementation.

use jaws_bench::exp;
use jaws_sim::{run_parallel, CachePolicyKind, SchedulerKind};

fn main() {
    let trace = exp::select_trace();
    let specs: Vec<_> = CachePolicyKind::table1_set()
        .iter()
        .map(|&p| exp::base_spec(&format!("{p:?}"), SchedulerKind::Jaws2 { batch_k: 15 }, p))
        .collect();
    let results = run_parallel(&specs, &trace);

    println!("\nTable I — Performance and overhead of caching algorithms (JAWS_2)");
    exp::rule();
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>10} {:>12}",
        "policy", "cache hit", "seconds/qry", "overhead/qry", "qps", "disk reads"
    );
    exp::rule();
    let mut rows = Vec::new();
    for (_, r) in &results {
        println!(
            "{:<8} {:>9.1}% {:>14.3} {:>11.3} ms {:>10.3} {:>12}",
            r.cache_policy,
            r.cache.hit_ratio() * 100.0,
            r.seconds_per_query,
            r.cache_overhead_ms_per_query,
            r.throughput_qps,
            r.disk.reads
        );
        rows.push((
            r.cache_policy.clone(),
            r.cache.hit_ratio(),
            r.seconds_per_query,
        ));
    }
    exp::rule();
    println!("paper: LRU-K 47% / 1.62 s ... SLRU 49% / 1.56 s (<1 ms) ... URC 54% / 1.39 s (7 ms)");
    let find = |n: &str| rows.iter().find(|(p, _, _)| p == n).expect("policy row");
    let (_, lruk_hit, lruk_spq) = find("LRU-K");
    let (_, _slru_hit, _) = find("SLRU");
    let (_, urc_hit, urc_spq) = find("URC");
    println!(
        "URC vs LRU-K: hit {:+.1} points (paper +7), query performance {:+.1}% (paper +16%)",
        (urc_hit - lruk_hit) * 100.0,
        (lruk_spq / urc_spq - 1.0) * 100.0
    );
}
