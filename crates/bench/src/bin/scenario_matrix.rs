//! Scenario-matrix allocation & determinism bench (PR 10) — `BENCH_10.json`.
//!
//! The memory-layout overhaul (calendar event queue, jaws-arena scratch
//! reuse, SoA atom planes) claims two things at once: the hot paths got
//! cheaper, and nothing observable moved. This harness checks both across a
//! matrix of named, seeded workload shapes rather than the single calibrated
//! trace the other benches replay:
//!
//! * `bench5_e2e`    — the BENCH_5 single-node smoke run, unchanged, as the
//!   anchor row comparable against the committed `BENCH_5.json` trajectory;
//! * `flash_crowd`   — dense bursts with near-zero intra-burst gaps: the
//!   event queue's same-bucket worst case and the dispatch path under
//!   maximum ready-set pressure;
//! * `diurnal`       — long quiet gaps between bursts: events land far ahead
//!   of the calendar cursor and migrate through the overflow map;
//! * `regime_shift`  — a hotspot-heavy trace spliced before a scan-heavy
//!   one, exercising α re-adaptation and cache turnover at the seam;
//! * `heavy_tailed`  — few jobs, enormous batched query counts and many
//!   long jobs: per-job state lives long and fan-out buffers churn;
//! * `zipf_skew`     — nearly all traffic on two hotspots with hot-atom
//!   replication enabled: the `AccessRing` promotion/demotion path.
//!
//! Every scenario reports wall-clock, heap allocations per query (counting
//! global allocator), and event-queue push/pop counts — and **asserts, in
//! this binary**, that a second run is byte-identical after wall-clock
//! masking and that 1-, 2- and 8-worker runs produce the same masked bytes.
//! A scenario that got faster by drifting is a panic, not a row.
//!
//! Flags: `--smoke` shrinks the matrix for CI; `--out=PATH` overrides the
//! output path; `--guard=BASELINE.json` compares allocations/query and
//! queue-ops/query per scenario against a committed baseline report of the
//! same mode and exits non-zero on a >2× regression.

use jaws_bench::{alloc_counter, exp};
use jaws_morton::{AtomId, MortonKey};
use jaws_scheduler::{Jaws, JawsConfig, MetricParams, Residency, Scheduler};
use jaws_sim::{
    build_db, build_scheduler, queue_ops, reset_queue_ops, CachePolicyKind, ClusterConfig,
    ClusterExecutor, Executor, FailurePlan, ReplicationConfig, SchedulerKind, SimConfig,
};
use jaws_turbdb::{CostModel, DataMode};
use jaws_workload::{Footprint, Job, JobKind, Query, QueryOp};
use jaws_workload::{GenConfig, Trace, TraceGenerator};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Every heap acquisition in the measured runs is counted, so the
/// allocations-per-query column is a measurement, not an estimate.
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

/// Worker counts every scenario must be masked-byte-identical across.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Guard tolerance: fail when a cost column exceeds baseline × this factor.
const GUARD_FACTOR: f64 = 2.0;

#[derive(Serialize)]
struct ScenarioRow {
    name: &'static str,
    kind: &'static str,
    nodes: u32,
    jobs: usize,
    queries_completed: u64,
    wall_ms: f64,
    throughput_qps: f64,
    allocations: u64,
    allocations_per_query: f64,
    queue_pushes: u64,
    queue_pops: u64,
    queue_ops_per_query: f64,
    /// Same seeded run, twice, masked bytes compared. Asserted true.
    double_run_identical: bool,
    /// Masked bytes identical at 1/2/8 workers. Asserted true.
    workers_identical: bool,
}

/// Steady-state `Jaws::next_batch` allocation cost, isolated from setup,
/// materialization and report building: the engine dispatch path proper.
#[derive(Serialize)]
struct DispatchMicro {
    queries_loaded: u64,
    warmup_batches: usize,
    measured_batches: usize,
    atoms_dispatched: u64,
    allocations: u64,
    allocations_per_batch: f64,
    allocations_per_atom: f64,
}

#[derive(Serialize)]
struct MatrixReport {
    bench: &'static str,
    smoke: bool,
    threads_reported: usize,
    available_parallelism: usize,
    worker_counts: Vec<usize>,
    dispatch_path: DispatchMicro,
    scenarios: Vec<ScenarioRow>,
}

/// The subset of a previous report the `--guard` comparison reads. Extra
/// fields in the baseline JSON are ignored, so schema growth does not
/// invalidate committed baselines.
#[derive(Deserialize)]
struct BaselineRow {
    name: String,
    allocations_per_query: f64,
    queue_ops_per_query: f64,
}

#[derive(Deserialize)]
struct BaselineDispatch {
    allocations_per_batch: f64,
}

#[derive(Deserialize)]
struct BaselineReport {
    smoke: bool,
    dispatch_path: BaselineDispatch,
    scenarios: Vec<BaselineRow>,
}

/// How a scenario is executed. Every variant is a pure function of its
/// seeded inputs, so re-running one is the determinism probe.
enum Driver {
    /// Single-node materialized-mode `Executor` (the BENCH_5 configuration).
    SingleNode { trace: Trace },
    /// Multi-node `ClusterExecutor` on virtual data.
    Cluster {
        nodes: u32,
        trace: Trace,
        replication: ReplicationConfig,
    },
}

struct Scenario {
    name: &'static str,
    driver: Driver,
}

impl Driver {
    fn kind(&self) -> &'static str {
        match self {
            Driver::SingleNode { .. } => "single-node",
            Driver::Cluster { .. } => "cluster",
        }
    }

    fn nodes(&self) -> u32 {
        match self {
            Driver::SingleNode { .. } => 1,
            Driver::Cluster { nodes, .. } => *nodes,
        }
    }

    fn trace(&self) -> &Trace {
        match self {
            Driver::SingleNode { trace } | Driver::Cluster { trace, .. } => trace,
        }
    }

    /// One full run: masked report bytes plus completed-query count.
    fn run_once(&self) -> (String, u64) {
        match self {
            Driver::SingleNode { trace } => {
                let cfg = exp::smoke_db();
                let cost = CostModel::paper_testbed();
                let db = build_db(cfg, cost, DataMode::Synthetic, 32, CachePolicyKind::Urc);
                let params = MetricParams {
                    atom_read_ms: cost.atom_read_ms,
                    position_compute_ms: cost.position_compute_ms,
                    atoms_per_timestep: cfg.atoms_per_timestep(),
                };
                let sched = build_scheduler(
                    SchedulerKind::Jaws2 { batch_k: 15 },
                    params,
                    exp::RUN_LEN,
                    10_000.0,
                );
                let mut ex = Executor::new(db, sched, SimConfig::default());
                let report = ex.run(trace);
                let json = serde_json::to_string(&report).expect("report serializes");
                (exp::mask_wallclock_fields(&json), report.queries_completed)
            }
            Driver::Cluster {
                nodes,
                trace,
                replication,
            } => {
                let mut ex = ClusterExecutor::new(ClusterConfig {
                    nodes: *nodes,
                    db: exp::smoke_db(),
                    cost: exp::paper_cost(),
                    scheduler: SchedulerKind::Jaws2 { batch_k: 15 },
                    cache_policy: CachePolicyKind::Urc,
                    cache_atoms_per_node: (exp::CACHE_ATOMS as u32 / nodes).max(16) as usize,
                    run_len: exp::RUN_LEN,
                    gate_timeout_ms: exp::GATE_TIMEOUT_MS,
                    sim: SimConfig::default(),
                    failures: FailurePlan::none(),
                    replication: *replication,
                });
                let report = ex.run(trace);
                let json = serde_json::to_string(&report).expect("report serializes");
                (
                    exp::mask_wallclock_fields(&json),
                    report.aggregate.queries_completed,
                )
            }
        }
    }
}

/// Nothing is ever resident: every batch pays the full metric evaluation.
struct NoneResident;

impl Residency for NoneResident {
    fn is_resident(&self, _atom: &AtomId) -> bool {
        false
    }

    fn residency_epoch(&self) -> Option<u64> {
        Some(0)
    }

    fn residency_changes_since(&self, _since: u64) -> Option<Vec<(AtomId, bool)>> {
        Some(Vec::new())
    }
}

/// Loads a JAWS₂ scheduler with `n` seeded queries (same synthetic shape as
/// the `scheduler_step` microbench), warms it up for `warmup` batches so
/// every scratch buffer and pool reaches steady-state capacity, then counts
/// heap allocations over the next `measured` dispatch rounds.
fn dispatch_microbench(n: u64, warmup: usize, measured: usize) -> DispatchMicro {
    let mut s = Jaws::new(JawsConfig::jaws2(MetricParams::paper_testbed()));
    for i in 0..n {
        let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let q = Query {
            id: i + 1,
            user: (h % 16) as u32,
            op: QueryOp::Velocity,
            timestep: (h % 31) as u32,
            footprint: Footprint::from_pairs(
                (0..6u64).map(|d| (MortonKey((h >> 8) % 4090 + d), 100u32)),
            ),
        };
        // JAWS₂ gates by job: declare each query as a one-off job first,
        // exactly as the engine does for trace jobs.
        s.job_declared(
            &Job {
                id: i + 1,
                user: q.user,
                kind: JobKind::Batched,
                campaign: i + 1,
                queries: vec![q.clone()],
                arrival_ms: i as f64,
                think_ms: 0.0,
            },
            i as f64,
        );
        s.query_available(&q, i as f64);
    }
    let mut now = n as f64;
    for _ in 0..warmup {
        now += 1.0;
        s.next_batch(now, &NoneResident);
    }
    let mut atoms = 0u64;
    alloc_counter::reset();
    let mut batches = 0usize;
    while batches < measured {
        now += 1.0;
        let Some(batch) = s.next_batch(now, &NoneResident) else {
            break;
        };
        atoms += batch.atom_count() as u64;
        batches += 1;
    }
    let allocations = alloc_counter::count();
    assert!(batches > 0, "dispatch microbench drained during warm-up");
    DispatchMicro {
        queries_loaded: n,
        warmup_batches: warmup,
        measured_batches: batches,
        atoms_dispatched: atoms,
        allocations,
        allocations_per_batch: allocations as f64 / batches as f64,
        allocations_per_atom: allocations as f64 / atoms.max(1) as f64,
    }
}

/// Splices `tail` after `head`: tail arrivals are shifted past the last head
/// arrival plus `gap_ms`, and tail job/query/user/campaign identifiers are
/// offset so the combined trace keeps them trace-unique.
fn splice(head: Trace, tail: Trace, gap_ms: f64) -> Trace {
    let head_end = head
        .jobs
        .iter()
        .map(|j| j.arrival_ms)
        .fold(0.0f64, f64::max);
    let job_off = head.jobs.iter().map(|j| j.id).max().unwrap_or(0) + 1;
    let query_off = head
        .jobs
        .iter()
        .flat_map(|j| j.queries.iter().map(|q| q.id))
        .max()
        .unwrap_or(0)
        + 1;
    let user_off = head.jobs.iter().map(|j| j.user).max().unwrap_or(0) + 1;
    let campaign_off = head.jobs.iter().map(|j| j.campaign).max().unwrap_or(0) + 1;
    let timesteps = head.timesteps;
    let atoms_per_side = head.atoms_per_side;
    let mut jobs = head.jobs;
    for mut j in tail.jobs {
        j.id += job_off;
        j.user += user_off;
        j.campaign += campaign_off;
        j.arrival_ms += head_end + gap_ms;
        for q in &mut j.queries {
            q.id += query_off;
            q.user = j.user;
        }
        jobs.push(j);
    }
    Trace::new(timesteps, atoms_per_side, jobs)
}

/// The scenario matrix. All traces share the smoke database geometry (the
/// matrix probes workload *shape*, not data scale); `jobs` scales between
/// smoke and full mode.
fn scenarios(smoke: bool) -> Vec<Scenario> {
    let jobs = if smoke { 60 } else { 240 };
    let base = GenConfig::small(exp::TRACE_SEED);
    let generate = |cfg: GenConfig| TraceGenerator::new(cfg).generate();

    let flash_crowd = generate(GenConfig {
        jobs,
        mean_burst_gap_ms: 50_000.0,
        mean_burst_size: 12.0,
        intra_burst_gap_ms: 40.0,
        hotspot_prob: 0.8,
        ..base
    });
    let diurnal = generate(GenConfig {
        jobs,
        mean_burst_gap_ms: 120_000.0,
        mean_burst_size: 8.0,
        intra_burst_gap_ms: 500.0,
        ..base
    });
    // Hotspot-heavy exploration phase, then a scan-heavy sweep phase with a
    // different seed: the scheduler's α and the caches must re-adapt.
    let regime_shift = splice(
        generate(GenConfig {
            jobs: jobs / 2,
            hotspot_prob: 0.9,
            ..base
        }),
        generate(GenConfig {
            seed: exp::TRACE_SEED ^ 0x5eed,
            jobs: jobs / 2,
            hotspot_prob: 0.1,
            long_job_frac: 0.3,
            single_timestep_frac: 0.4,
            ..base
        }),
        5_000.0,
    );
    let heavy_tailed = generate(GenConfig {
        jobs: jobs / 2,
        mean_batched_queries: 40.0,
        long_job_frac: 0.3,
        oneoff_frac: 0.02,
        ..base
    });
    let zipf_skew = generate(GenConfig {
        jobs,
        hotspots: 2,
        hotspot_prob: 0.95,
        ..base
    });

    vec![
        Scenario {
            name: "bench5_e2e",
            driver: Driver::SingleNode {
                trace: exp::smoke_trace(),
            },
        },
        Scenario {
            name: "flash_crowd",
            driver: Driver::Cluster {
                nodes: 4,
                trace: flash_crowd,
                replication: ReplicationConfig::disabled(),
            },
        },
        Scenario {
            name: "diurnal",
            driver: Driver::Cluster {
                nodes: 4,
                trace: diurnal,
                replication: ReplicationConfig::disabled(),
            },
        },
        Scenario {
            name: "regime_shift",
            driver: Driver::Cluster {
                nodes: 4,
                trace: regime_shift,
                replication: ReplicationConfig::disabled(),
            },
        },
        Scenario {
            name: "heavy_tailed",
            driver: Driver::Cluster {
                nodes: 4,
                trace: heavy_tailed,
                replication: ReplicationConfig::disabled(),
            },
        },
        Scenario {
            name: "zipf_skew",
            driver: Driver::Cluster {
                nodes: 4,
                trace: zipf_skew,
                replication: ReplicationConfig::on(),
            },
        },
    ]
}

/// Measured run (serial, counters on) plus the determinism probes: a second
/// serial run and one run per remaining worker count, all byte-compared
/// after masking.
fn run_scenario(s: &Scenario) -> ScenarioRow {
    let (masked, queries, wall_ms, allocations, pushes, pops) = {
        let _guard = jaws_par::override_threads(WORKER_COUNTS[0]);
        reset_queue_ops();
        alloc_counter::reset();
        let start = Instant::now();
        let (masked, queries) = s.driver.run_once();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let allocations = alloc_counter::count();
        let (pushes, pops) = queue_ops();
        (masked, queries, wall_ms, allocations, pushes, pops)
    };

    let double_run_identical = {
        let _guard = jaws_par::override_threads(WORKER_COUNTS[0]);
        s.driver.run_once().0 == masked
    };
    assert!(
        double_run_identical,
        "{}: second run produced different masked bytes",
        s.name
    );

    let mut workers_identical = true;
    for &w in &WORKER_COUNTS[1..] {
        let _guard = jaws_par::override_threads(w);
        let identical = s.driver.run_once().0 == masked;
        workers_identical &= identical;
        assert!(
            identical,
            "{}: masked report differs at {w} workers",
            s.name
        );
    }

    let q = queries.max(1) as f64;
    ScenarioRow {
        name: s.name,
        kind: s.driver.kind(),
        nodes: s.driver.nodes(),
        jobs: s.driver.trace().jobs.len(),
        queries_completed: queries,
        wall_ms,
        throughput_qps: queries as f64 / (wall_ms / 1e3).max(1e-9),
        allocations,
        allocations_per_query: allocations as f64 / q,
        queue_pushes: pushes,
        queue_pops: pops,
        queue_ops_per_query: (pushes + pops) as f64 / q,
        double_run_identical,
        workers_identical,
    }
}

/// Compares this report against a committed baseline of the same mode:
/// any scenario whose allocations/query or queue-ops/query exceeds the
/// baseline by more than [`GUARD_FACTOR`] is a regression. Returns the
/// violation messages (empty = pass).
fn guard_violations(report: &MatrixReport, baseline_json: &str) -> Vec<String> {
    let base: BaselineReport =
        serde_json::from_str(baseline_json).expect("guard baseline parses as a matrix report");
    assert_eq!(
        base.smoke, report.smoke,
        "guard baseline was recorded in a different mode (smoke vs full)"
    );
    let mut violations = Vec::new();
    let (got, want) = (
        report.dispatch_path.allocations_per_batch,
        base.dispatch_path.allocations_per_batch,
    );
    // Per-dispatch cost guard. The steady-state dispatch path allocates
    // (near) nothing, so the floor keeps "0.02 vs 0.01 per batch" noise from
    // tripping the relative check.
    if got > (want * GUARD_FACTOR).max(1.0) {
        violations.push(format!(
            "FAIL: dispatch_path: allocations_per_batch regressed {got:.2} vs baseline \
             {want:.2} (limit {:.2})",
            (want * GUARD_FACTOR).max(1.0)
        ));
    }
    for row in &report.scenarios {
        let Some(b) = base.scenarios.iter().find(|r| r.name == row.name) else {
            // New scenarios have no baseline yet; they are reported, not
            // guarded, until the baseline is regenerated.
            violations.push(format!(
                "note: scenario `{}` absent from baseline (not guarded)",
                row.name
            ));
            continue;
        };
        for (column, got, want) in [
            (
                "allocations_per_query",
                row.allocations_per_query,
                b.allocations_per_query,
            ),
            (
                "queue_ops_per_query",
                row.queue_ops_per_query,
                b.queue_ops_per_query,
            ),
        ] {
            if got > want * GUARD_FACTOR {
                violations.push(format!(
                    "FAIL: {}: {column} regressed {got:.1} vs baseline {want:.1} \
                     (limit {:.1})",
                    row.name,
                    want * GUARD_FACTOR
                ));
            }
        }
    }
    violations
}

fn main() {
    let smoke = exp::smoke_mode();
    let out_path = std::env::args()
        .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    let guard_path = std::env::args().find_map(|a| a.strip_prefix("--guard=").map(str::to_string));

    let (micro_n, micro_warm, micro_measured) = if smoke {
        (2_000, 10, 100)
    } else {
        (4_000, 50, 500)
    };
    let dispatch_path = dispatch_microbench(micro_n, micro_warm, micro_measured);
    println!(
        "\nDispatch path — steady-state `next_batch` over {} loaded queries",
        dispatch_path.queries_loaded
    );
    exp::rule();
    println!(
        "{} batches after {} warm-up: {} atoms dispatched, {} allocations \
         ({:.2}/batch, {:.3}/atom)",
        dispatch_path.measured_batches,
        dispatch_path.warmup_batches,
        dispatch_path.atoms_dispatched,
        dispatch_path.allocations,
        dispatch_path.allocations_per_batch,
        dispatch_path.allocations_per_atom,
    );

    println!(
        "\nScenario matrix — allocation & queue discipline across workload shapes{}",
        if smoke { " [--smoke]" } else { "" }
    );
    exp::rule();
    println!(
        "{:<13} {:<12} {:>5} {:>5} {:>8} {:>10} {:>9} {:>13} {:>12} {:>7} {:>7}",
        "scenario",
        "kind",
        "nodes",
        "jobs",
        "queries",
        "wall_ms",
        "allocs/q",
        "queue push",
        "queue pop",
        "2-run",
        "1/2/8w"
    );
    exp::rule();

    let mut rows = Vec::new();
    for s in scenarios(smoke) {
        let row = run_scenario(&s);
        println!(
            "{:<13} {:<12} {:>5} {:>5} {:>8} {:>10.2} {:>9.1} {:>13} {:>12} {:>7} {:>7}",
            row.name,
            row.kind,
            row.nodes,
            row.jobs,
            row.queries_completed,
            row.wall_ms,
            row.allocations_per_query,
            row.queue_pushes,
            row.queue_pops,
            if row.double_run_identical {
                "ok"
            } else {
                "FAIL"
            },
            if row.workers_identical { "ok" } else { "FAIL" },
        );
        rows.push(row);
    }
    exp::rule();
    println!(
        "every row is asserted masked-byte-identical across a re-run and across \
         {WORKER_COUNTS:?} workers; allocations and queue ops are counted on the serial run."
    );

    let report = MatrixReport {
        bench: "scenario_matrix",
        smoke,
        threads_reported: jaws_par::thread_count(),
        available_parallelism: jaws_par::hardware_parallelism(),
        worker_counts: WORKER_COUNTS.to_vec(),
        dispatch_path,
        scenarios: rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("matrix report serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench output");
    eprintln!("# wrote {out_path}");

    if let Some(path) = guard_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read guard baseline {path}: {e}"));
        let violations = guard_violations(&report, &baseline);
        for v in &violations {
            eprintln!("# guard: {v}");
        }
        if violations.iter().any(|v| v.starts_with("FAIL")) {
            eprintln!("# guard: cost regression vs {path} (limit {GUARD_FACTOR}x)");
            std::process::exit(1);
        }
        eprintln!("# guard: within {GUARD_FACTOR}x of {path}");
    }
}
