//! Fig. 8 — Distribution of jobs by execution time.
//!
//! The paper: jobs "vary greatly by execution time in which a majority (63%)
//! persist between one and thirty minutes". This binary prints the nominal
//! execution-time histogram of the calibrated trace next to the paper's
//! published anchor.

use jaws_bench::exp;
use jaws_workload::stats::job_duration_histogram;

fn main() {
    let trace = exp::select_trace();
    let cost = exp::paper_cost();
    let hist = job_duration_histogram(&trace, cost.atom_read_ms, cost.position_compute_ms);

    println!("\nFig. 8 — Distribution of jobs by execution time");
    exp::rule();
    println!(
        "{:<12} {:>8} {:>10}  histogram",
        "bucket", "jobs", "fraction"
    );
    exp::rule();
    for b in &hist {
        let bar = "#".repeat((b.fraction * 60.0).round() as usize);
        println!(
            "{:<12} {:>8} {:>9.1}%  {}",
            b.label,
            b.count,
            b.fraction * 100.0,
            bar
        );
    }
    exp::rule();
    let mid = hist
        .iter()
        .filter(|b| b.label == "1-5 min" || b.label == "5-30 min")
        .map(|b| b.fraction)
        .sum::<f64>();
    println!(
        "jobs lasting 1-30 minutes: paper 63%, measured {:.0}%",
        mid * 100.0
    );
    println!(
        "jobs in the trace: {} ({} queries, {:.1}% of queries inside jobs)",
        trace.jobs.len(),
        trace.query_count(),
        trace.fraction_in_jobs() * 100.0
    );
}
