//! Job identification feeding the scheduler (§IV-A; not a paper figure).
//!
//! In production JAWS never sees job boundaries: it reconstructs them from
//! the flat SQL log ("heuristic, but highly accurate in practice") and gates
//! on the reconstruction. This experiment quantifies what that heuristic is
//! worth: JAWS₂ driven by (a) ground-truth job declarations, (b) jobs
//! identified from the submission log, and (c) no job structure at all
//! (JAWS₁), all replaying the identical trace.

use jaws_bench::exp;
use jaws_scheduler::MetricParams;
use jaws_sim::CachePolicyKind;
use jaws_sim::{build_db, build_scheduler, Executor, SchedulerKind, SimConfig};
use jaws_turbdb::DataMode;
use jaws_workload::jobid::reconstruct_jobs;
use jaws_workload::{identify_jobs, JobIdConfig, JobIdEvaluation, SubmitRecord};

fn main() {
    let trace = exp::select_trace();
    let cost = exp::paper_cost();
    let params = MetricParams {
        atom_read_ms: cost.atom_read_ms,
        position_compute_ms: cost.position_compute_ms,
        atoms_per_timestep: exp::paper_db().atoms_per_timestep(),
    };
    let log = SubmitRecord::log_from_trace(&trace, cost.atom_read_ms, cost.position_compute_ms);
    let assignment = identify_jobs(&log, JobIdConfig::default());
    let eval = JobIdEvaluation::score(&log, &assignment);
    let identified = reconstruct_jobs(&trace, &log, &assignment);
    println!(
        "identification: {} predicted jobs (true {}), job F1 {:.1}%, campaign precision {:.1}%",
        identified.len(),
        trace.jobs.len(),
        eval.f1 * 100.0,
        eval.campaign_precision * 100.0
    );

    let run = |label: &str, kind: SchedulerKind, declared: Option<Vec<jaws_workload::Job>>| {
        let db = build_db(
            exp::paper_db(),
            cost,
            DataMode::Virtual,
            exp::CACHE_ATOMS,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(kind, params, exp::RUN_LEN, exp::GATE_TIMEOUT_MS);
        let mut ex = Executor::new(db, sched, SimConfig::default());
        if let Some(jobs) = declared {
            ex.declare_jobs(jobs);
        }
        let r = ex.run(&trace);
        println!(
            "{:<22} qps {:>6.3}  rt {:>7.1}s  reads {:>6}  forced {:>4}",
            label,
            r.throughput_qps,
            r.mean_response_ms / 1000.0,
            r.disk.reads,
            r.scheduler_stats.forced_releases
        );
        r.throughput_qps
    };

    println!();
    let none = run(
        "JAWS_1 (no jobs)",
        SchedulerKind::Jaws1 { batch_k: 15 },
        None,
    );
    let ident = run(
        "JAWS_2 (identified)",
        SchedulerKind::Jaws2 { batch_k: 15 },
        Some(identified),
    );
    let truth = run(
        "JAWS_2 (declared)",
        SchedulerKind::Jaws2 { batch_k: 15 },
        None,
    );
    exp::rule();
    println!(
        "job-awareness from the log recovers {:.0}% of the declared-structure gain",
        if truth > none {
            (ident - none) / (truth - none) * 100.0
        } else {
            0.0
        }
    );
}
