//! Hot-path wall-clock bench (perf trajectory, PR 5) — writes `BENCH_5.json`.
//!
//! Three sections, matching the three layers the `jaws-par` runtime was
//! deployed on:
//!
//! 1. **materialize** — fills every timestep-0 atom from the synthetic field
//!    at 1/2/4 workers. The fill is sharded by z-slice inside
//!    [`AtomData::materialize`]; a bit-exact checksum over every voxel proves
//!    the payload is identical at every thread count.
//! 2. **end_to_end** — a full materialized-mode (`DataMode::Synthetic`)
//!    `Executor` run at each thread count. Reports are byte-compared after
//!    masking the two measured-wall-clock overhead fields (same masking as
//!    the determinism suite).
//! 3. **top_k** — bounded top-k selection (`select_nth_unstable_by` + sort of
//!    the k prefix) vs the old full `O(m log m)` sort, over the exact total
//!    order used by `Jaws::next_batch`, at dispatch-candidate counts up to
//!    the paper's 4096-atoms-per-timestep scale and beyond.
//!
//! Speedups for sections 1–2 depend on the host: on a single-core container
//! they are ~1×, which is why `threads_reported` is recorded alongside every
//! row. Section 3 is algorithmic and shows its win on any host.
//!
//! `--smoke` shrinks geometry and rep counts for CI; `--out=PATH` overrides
//! the output path.

use jaws_bench::{alloc_counter, exp};
use jaws_morton::AtomId;
use jaws_scheduler::MetricParams;
use jaws_sim::{build_db, build_scheduler, CachePolicyKind, Executor, SchedulerKind, SimConfig};
use jaws_turbdb::{AtomData, CostModel, DataMode, DbConfig, SyntheticField};
use serde::Serialize;
use std::cmp::Ordering;
use std::hint::black_box;
use std::time::Instant;

/// Every heap acquisition in the measured regions below is counted, so the
/// allocation columns are measurements, not estimates.
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

#[derive(Serialize)]
struct MatRow {
    threads: usize,
    /// What the host could run, as opposed to what we asked for (`threads`):
    /// a 1.0× speedup at `threads: 4` reads very differently when this is 1.
    available_parallelism: usize,
    atoms: usize,
    voxels: usize,
    wall_ms: f64,
    speedup_vs_serial: f64,
    /// Heap acquisitions during this row's timed region.
    allocations: u64,
    checksum: String,
}

#[derive(Serialize)]
struct E2eRow {
    threads: usize,
    available_parallelism: usize,
    wall_ms: f64,
    speedup_vs_serial: f64,
    queries_completed: u64,
    allocations: u64,
    allocations_per_query: f64,
    report_identical_to_serial: bool,
}

#[derive(Serialize)]
struct TopKRow {
    m: usize,
    k: usize,
    reps: usize,
    full_sort_ms: f64,
    top_k_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    smoke: bool,
    threads_reported: usize,
    materialize: Vec<MatRow>,
    end_to_end: Vec<E2eRow>,
    top_k: Vec<TopKRow>,
}

/// The exact dispatch total order of `Jaws::next_batch`: utility descending,
/// `AtomId` ascending on exact ties.
fn rank_order(a: &(AtomId, f64), b: &(AtomId, f64)) -> Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

fn top_k(mut in_ts: Vec<(AtomId, f64)>, k: usize) -> Vec<(AtomId, f64)> {
    if k == 0 {
        in_ts.clear();
        return in_ts;
    }
    if k < in_ts.len() {
        in_ts.select_nth_unstable_by(k - 1, rank_order);
        in_ts.truncate(k);
    }
    in_ts.sort_by(rank_order);
    in_ts
}

fn full_sort(mut in_ts: Vec<(AtomId, f64)>, k: usize) -> Vec<(AtomId, f64)> {
    in_ts.sort_by(rank_order);
    in_ts.truncate(k);
    in_ts
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic dispatch candidates: distinct atoms, pseudo-random utilities.
fn candidates(m: usize) -> Vec<(AtomId, f64)> {
    (0..m)
        .map(|i| {
            let x = (i % 64) as u32;
            let y = ((i / 64) % 64) as u32;
            let z = (i / 4096) as u32;
            let u = splitmix64(i as u64 ^ exp::TRACE_SEED) as f64 / u64::MAX as f64;
            (AtomId::from_coords(0, x, y, z), u * 10_000.0)
        })
        .collect()
}

/// FNV-1a over every voxel's raw bits — anti-dead-code and a cross-thread
/// bit-identity witness in one.
fn atom_checksum(atom: &AtomData) -> u64 {
    let g = atom.ghost() as i64;
    let s = atom.side() as i64;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for lz in -g..s + g {
        for ly in -g..s + g {
            for lx in -g..s + g {
                let v = atom.velocity_at(lx, ly, lz);
                mix(v[0].to_bits() as u64);
                mix(v[1].to_bits() as u64);
                mix(v[2].to_bits() as u64);
                mix(atom.pressure_at(lx, ly, lz).to_bits() as u64);
            }
        }
    }
    h
}

fn bench_materialize(cfg: DbConfig, threads: &[usize]) -> Vec<MatRow> {
    let field = SyntheticField::new(cfg.seed, cfg.grid_side);
    let per_side = cfg.atoms_per_side();
    let ids: Vec<AtomId> = (0..per_side)
        .flat_map(|z| {
            (0..per_side)
                .flat_map(move |y| (0..per_side).map(move |x| AtomId::from_coords(0, x, y, z)))
        })
        .collect();
    let ext = (cfg.atom_side + 2 * cfg.ghost) as usize;
    let voxels = ids.len() * ext * ext * ext;
    let mut rows: Vec<MatRow> = Vec::new();
    for &t in threads {
        let _guard = jaws_par::override_threads(t);
        alloc_counter::reset();
        let start = Instant::now();
        let mut checksum = 0u64;
        for &id in &ids {
            let atom = AtomData::materialize(&cfg, &field, id);
            checksum ^= atom_checksum(black_box(&atom));
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let allocations = alloc_counter::count();
        if let Some(first) = rows.first() {
            assert_eq!(
                format!("{checksum:016x}"),
                first.checksum,
                "materialized payload differs at {t} workers"
            );
        }
        let serial_ms = rows.first().map_or(wall_ms, |r| r.wall_ms);
        rows.push(MatRow {
            threads: t,
            available_parallelism: jaws_par::hardware_parallelism(),
            atoms: ids.len(),
            voxels,
            wall_ms,
            speedup_vs_serial: serial_ms / wall_ms,
            allocations,
            checksum: format!("{checksum:016x}"),
        });
    }
    rows
}

fn e2e_report(cfg: DbConfig) -> (String, u64, f64, u64) {
    let cost = CostModel::paper_testbed();
    let db = build_db(cfg, cost, DataMode::Synthetic, 32, CachePolicyKind::Urc);
    let params = MetricParams {
        atom_read_ms: cost.atom_read_ms,
        position_compute_ms: cost.position_compute_ms,
        atoms_per_timestep: cfg.atoms_per_timestep(),
    };
    let sched = build_scheduler(
        SchedulerKind::Jaws2 { batch_k: 15 },
        params,
        exp::RUN_LEN,
        10_000.0,
    );
    let mut ex = Executor::new(db, sched, SimConfig::default());
    let trace = exp::smoke_trace();
    alloc_counter::reset();
    let start = Instant::now();
    let report = ex.run(&trace);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let allocations = alloc_counter::count();
    let json = serde_json::to_string(&report).expect("report serializes");
    (
        exp::mask_wallclock_fields(&json),
        report.queries_completed,
        wall_ms,
        allocations,
    )
}

fn bench_end_to_end(cfg: DbConfig, threads: &[usize]) -> Vec<E2eRow> {
    let mut rows: Vec<E2eRow> = Vec::new();
    let mut serial: Option<(String, f64)> = None;
    for &t in threads {
        let _guard = jaws_par::override_threads(t);
        let (masked, queries, wall_ms, allocations) = e2e_report(cfg);
        let (serial_masked, serial_ms) = serial.get_or_insert((masked.clone(), wall_ms));
        let identical = masked == *serial_masked;
        assert!(identical, "masked report differs at {t} workers");
        rows.push(E2eRow {
            threads: t,
            available_parallelism: jaws_par::hardware_parallelism(),
            wall_ms,
            speedup_vs_serial: *serial_ms / wall_ms,
            queries_completed: queries,
            allocations,
            allocations_per_query: allocations as f64 / queries.max(1) as f64,
            report_identical_to_serial: identical,
        });
    }
    rows
}

type Selector = dyn Fn(Vec<(AtomId, f64)>, usize) -> Vec<(AtomId, f64)>;

fn bench_top_k(sizes: &[usize], k: usize, reps: usize) -> Vec<TopKRow> {
    let mut rows = Vec::new();
    for &m in sizes {
        let base = candidates(m);
        let sorted = full_sort(base.clone(), k);
        let selected = top_k(base.clone(), k);
        assert_eq!(sorted.len(), selected.len(), "m={m}");
        for (a, b) in sorted.iter().zip(&selected) {
            assert_eq!(a.0, b.0, "m={m}: selected atom differs");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "m={m}: utility bits differ");
        }
        let time_of = |f: &Selector| {
            let clones: Vec<_> = (0..reps).map(|_| base.clone()).collect();
            let start = Instant::now();
            for c in clones {
                black_box(f(c, k));
            }
            start.elapsed().as_secs_f64() * 1e3
        };
        let full_sort_ms = time_of(&full_sort);
        let top_k_ms = time_of(&top_k);
        rows.push(TopKRow {
            m,
            k,
            reps,
            full_sort_ms,
            top_k_ms,
            speedup: full_sort_ms / top_k_ms,
        });
    }
    rows
}

fn main() {
    let smoke = exp::smoke_mode();
    let out_path = std::env::args()
        .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        .unwrap_or_else(|| "BENCH_5.json".to_string());
    let threads_reported = jaws_par::thread_count();

    let (mat_cfg, threads, sizes, reps): (DbConfig, &[usize], &[usize], usize) = if smoke {
        (exp::smoke_db(), &[1, 2], &[1_000, 10_000], 5)
    } else {
        let cfg = DbConfig {
            grid_side: 64,
            atom_side: 16,
            ghost: 4,
            timesteps: 4,
            dt: 0.002,
            seed: exp::TRACE_SEED,
        };
        (cfg, &[1, 2, 4], &[1_000, 10_000, 100_000], 20)
    };

    eprintln!(
        "# hotpath: {} workers reported by jaws-par",
        threads_reported
    );

    println!("\nSection 1 — atom materialization (synthetic field, timestep 0)");
    exp::rule();
    let materialize = bench_materialize(mat_cfg, threads);
    println!(
        "{:<8} {:>5} {:>8} {:>10} {:>12} {:>10} {:>10}  checksum",
        "threads", "hw", "atoms", "voxels", "wall_ms", "speedup", "allocs"
    );
    for r in &materialize {
        println!(
            "{:<8} {:>5} {:>8} {:>10} {:>12.2} {:>9.2}x {:>10}  {}",
            r.threads,
            r.available_parallelism,
            r.atoms,
            r.voxels,
            r.wall_ms,
            r.speedup_vs_serial,
            r.allocations,
            r.checksum
        );
    }

    println!("\nSection 2 — end-to-end materialized-mode run (JAWS_2, URC)");
    exp::rule();
    let end_to_end = bench_end_to_end(exp::smoke_db(), threads);
    println!(
        "{:<8} {:>5} {:>10} {:>12} {:>10} {:>14} {:>10}",
        "threads", "hw", "queries", "wall_ms", "speedup", "allocs/query", "identical"
    );
    for r in &end_to_end {
        println!(
            "{:<8} {:>5} {:>10} {:>12.2} {:>9.2}x {:>14.1} {:>10}",
            r.threads,
            r.available_parallelism,
            r.queries_completed,
            r.wall_ms,
            r.speedup_vs_serial,
            r.allocations_per_query,
            r.report_identical_to_serial
        );
    }

    println!("\nSection 3 — bounded top-k vs full sort (k = 15, dispatch order)");
    exp::rule();
    let top_k = bench_top_k(sizes, 15, reps);
    println!(
        "{:<10} {:>6} {:>6} {:>14} {:>12} {:>10}",
        "m", "k", "reps", "full_sort_ms", "top_k_ms", "speedup"
    );
    for r in &top_k {
        println!(
            "{:<10} {:>6} {:>6} {:>14.3} {:>12.3} {:>9.2}x",
            r.m, r.k, r.reps, r.full_sort_ms, r.top_k_ms, r.speedup
        );
    }

    let report = BenchReport {
        bench: "hotpath",
        smoke,
        threads_reported,
        materialize,
        end_to_end,
        top_k,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench output");
    eprintln!("# wrote {out_path}");
}
