//! Short-query starvation: CasJobs multi-queue vs JAWS (§II / §VII).
//!
//! The paper argues JAWS "does not rely on ad hoc mechanisms to distinguish
//! long and short running queries … queries of all sizes are supported in a
//! single system", while CasJobs' arbitrary class threshold makes "the
//! longest short queries interfere with the short queue and the shortest
//! long queries experience starvation". This experiment replays the
//! evaluation trace under NoShare, CasJobs, LifeRaft₂ and JAWS₂ and slices
//! response times by query size class.

use jaws_bench::exp;
use jaws_scheduler::MetricParams;
use jaws_sim::Percentiles;
use jaws_sim::{build_db, build_scheduler, CachePolicyKind, Executor, SchedulerKind, SimConfig};
use jaws_turbdb::DataMode;
use std::collections::HashMap;

/// CasJobs threshold and the class boundary used for reporting, ms.
const THRESHOLD_MS: f64 = 600.0;

fn main() {
    let trace = exp::select_trace();
    let cost = exp::paper_cost();
    let params = MetricParams {
        atom_read_ms: cost.atom_read_ms,
        position_compute_ms: cost.position_compute_ms,
        atoms_per_timestep: exp::paper_db().atoms_per_timestep(),
    };
    // Classify every query by estimated service time.
    let mut class: HashMap<u64, bool> = HashMap::new(); // true = short
    let mut shorts = 0u64;
    for (_, q) in trace.queries() {
        let est = q.footprint.atom_count() as f64 * cost.atom_read_ms
            + q.positions() as f64 * cost.position_compute_ms;
        let is_short = est <= THRESHOLD_MS;
        shorts += u64::from(is_short);
        class.insert(q.id, is_short);
    }
    println!(
        "classes at {THRESHOLD_MS} ms: {} short / {} long queries",
        shorts,
        trace.query_count() as u64 - shorts
    );
    println!(
        "\n{:<11} {:>9} {:>14} {:>14} {:>13} {:>13}",
        "scheduler", "qps", "short p50 (s)", "short p95 (s)", "long p50 (s)", "long p95 (s)"
    );
    exp::rule();
    for kind in [
        SchedulerKind::NoShare,
        SchedulerKind::CasJobs {
            threshold_ms: THRESHOLD_MS as u32,
        },
        SchedulerKind::LifeRaft2,
        SchedulerKind::Jaws2 { batch_k: 15 },
    ] {
        let db = build_db(
            exp::paper_db(),
            cost,
            DataMode::Virtual,
            exp::CACHE_ATOMS,
            CachePolicyKind::LruK,
        );
        let sched = build_scheduler(kind, params, exp::RUN_LEN, exp::GATE_TIMEOUT_MS);
        let mut ex = Executor::new(db, sched, SimConfig::default());
        let r = ex.run(&trace);
        let mut short_rt: Vec<f64> = Vec::new();
        let mut long_rt: Vec<f64> = Vec::new();
        for &(qid, rt) in ex.response_log() {
            if class[&qid] {
                short_rt.push(rt);
            } else {
                long_rt.push(rt);
            }
        }
        let ps = Percentiles::from_samples(&mut short_rt);
        let pl = Percentiles::from_samples(&mut long_rt);
        println!(
            "{:<11} {:>9.3} {:>14.1} {:>14.1} {:>13.1} {:>13.1}",
            r.scheduler,
            r.throughput_qps,
            ps.p50 / 1000.0,
            ps.p95 / 1000.0,
            pl.p50 / 1000.0,
            pl.p95 / 1000.0
        );
    }
    exp::rule();
    println!("expected shape: CasJobs protects short p50 but forfeits sharing (low qps,");
    println!("long-class starvation); JAWS keeps short latencies competitive at several");
    println!("times the throughput, with no class threshold at all.");
}
