//! The scheduler interface the execution engine drives.

use crate::batch::Batch;
use crate::queues::UtilitySnapshot;
use jaws_morton::AtomId;
use jaws_workload::{Job, Query, QueryId};
use serde::Serialize;

/// Residency information — φ of Eq. 1. Implemented by the execution engine
/// over the database buffer pool.
///
/// The workload manager caches per-atom metric values between scheduling
/// decisions and only recomputes atoms whose inputs changed. Residency is one
/// of those inputs, so the trait optionally exposes *change tracking*: an
/// epoch counter plus a change log. Both have conservative defaults (`None` =
/// "assume anything may have changed"), so plain `is_resident`-only
/// implementations stay correct — they just forgo the fast path.
pub trait Residency {
    /// True if the atom is currently cached in memory.
    fn is_resident(&self, atom: &AtomId) -> bool;

    /// Monotone counter that advances whenever any atom's residency flips.
    /// `None` means residency is untracked/volatile: consumers must treat
    /// every atom as potentially changed on every call.
    fn residency_epoch(&self) -> Option<u64> {
        None
    }

    /// The `(atom, now_resident)` flips since epoch `since`, or `None` when
    /// the log cannot answer (untracked, or truncated past `since`) — the
    /// consumer must then re-check every atom it cares about.
    fn residency_changes_since(&self, since: u64) -> Option<Vec<(AtomId, bool)>> {
        let _ = since;
        None
    }
}

/// Aggregate scheduler statistics for experiment reports.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SchedulerStats {
    /// Batches produced.
    pub batches: u64,
    /// Atom groups scheduled (one atom read amortized per group).
    pub atom_groups: u64,
    /// Sub-queries dispatched.
    pub subqueries: u64,
    /// Queries released by a broken gate (starvation valve; JAWS only).
    pub forced_releases: u64,
}

/// A query scheduler. The execution engine owns the clock and the job loop:
///
/// 1. [`Scheduler::job_declared`] when a job arrives (jobs are visible to the
///    scheduler up front — §IV-A's job identification applied at admission);
/// 2. [`Scheduler::query_available`] when a query is actually submitted (for
///    ordered jobs: after its predecessor completed and the user's think time
///    elapsed);
/// 3. [`Scheduler::next_batch`] whenever the engine is idle;
/// 4. [`Scheduler::on_query_complete`] when every sub-query of a query has
///    been executed.
///
/// `Send` is required so a node pipeline (which owns its scheduler) can be
/// stepped on a `jaws-par` worker thread; schedulers still run strictly
/// single-threaded — one node, one scheduler, one worker at a time.
pub trait Scheduler: Send {
    /// Scheduler name for reports (e.g. `"JAWS_2"`).
    fn name(&self) -> &'static str;

    /// Announces a job before any of its queries run. Job-aware schedulers
    /// build gating structure here; others ignore it.
    fn job_declared(&mut self, job: &Job, now_ms: f64);

    /// Submits one query for scheduling (its precedence/think constraints are
    /// already satisfied by the caller).
    fn query_available(&mut self, query: &Query, now_ms: f64);

    /// Produces the next batch, or `None` when nothing is schedulable right
    /// now (which is not the same as empty: gated queries may be waiting on
    /// partners).
    fn next_batch(&mut self, now_ms: f64, residency: &dyn Residency) -> Option<Batch>;

    /// Reports a query completion with its response time.
    fn on_query_complete(&mut self, query: QueryId, response_ms: f64, now_ms: f64);

    /// Withdraws a previously declared query id that will never become
    /// available on this scheduler — dynamic placement routed its atoms to a
    /// replica on another node. Job-aware schedulers must release any gating
    /// structure referencing the id (partners would otherwise stall until the
    /// gate timeout); schedulers without declaration state ignore it.
    fn query_withdrawn(&mut self, query: QueryId, now_ms: f64) {
        let _ = (query, now_ms);
    }

    /// Discards all pending work and per-query bookkeeping. The engine calls
    /// this when a run is truncated at `max_sim_ms`: queries still queued
    /// will never complete, and schedulers keeping per-query state (QoS
    /// deadlines) must drop it rather than leak it — the long-running-daemon
    /// direction reuses scheduler instances across traces.
    fn retire_pending(&mut self, now_ms: f64) {
        let _ = now_ms;
    }

    /// True if the scheduler holds any pending work (queued *or* gated).
    fn has_pending(&self) -> bool;

    /// Crosses a run boundary if the scheduler's run counter says so; returns
    /// true when the cache should be notified (`end_run`, SLRU promotion) —
    /// §V-A divides the workload into runs of `r` consecutive queries.
    fn take_run_boundary(&mut self) -> bool;

    /// Current age-bias α (fixed for LifeRaft, adaptive for JAWS).
    fn alpha(&self) -> f64;

    /// URC's ranking oracle: the current workload-queue utilities. Takes
    /// `&mut self` so schedulers can serve it from incrementally maintained
    /// state (the snapshot is patched in place rather than rebuilt).
    fn utility_snapshot(&mut self, residency: &dyn Residency) -> UtilitySnapshot;

    /// Wires an observability sink for per-decision events (gating rulings,
    /// batch selections with their Eq. 1/Eq. 2 terms, α adjustments).
    /// Schedulers that emit nothing keep this default and ignore the sink.
    fn set_recorder(&mut self, sink: jaws_obs::ObsSink) {
        let _ = sink;
    }

    /// Statistics snapshot.
    fn stats(&self) -> SchedulerStats;
}

/// Test helpers shared across scheduler modules.
#[cfg(test)]
pub mod test_support {
    use super::*;
    use std::collections::HashSet;

    /// A residency set fixed by the test.
    #[derive(Debug, Default)]
    pub struct FixedResidency {
        resident: HashSet<AtomId>,
    }

    impl FixedResidency {
        /// Nothing resident.
        pub fn none() -> Self {
            Self::default()
        }

        /// The given atoms resident.
        pub fn of(atoms: impl IntoIterator<Item = AtomId>) -> Self {
            FixedResidency {
                resident: atoms.into_iter().collect(),
            }
        }
    }

    impl Residency for FixedResidency {
        fn is_resident(&self, atom: &AtomId) -> bool {
            self.resident.contains(atom)
        }

        fn residency_epoch(&self) -> Option<u64> {
            Some(0) // the set never changes
        }

        fn residency_changes_since(&self, _since: u64) -> Option<Vec<(AtomId, bool)>> {
            Some(Vec::new())
        }
    }
}
