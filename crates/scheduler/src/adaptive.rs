//! Adaptive starvation resistance: the α controller of §V-A.
//!
//! JAWS "divides the workload into runs of r consecutive queries each,
//! measures query performance for each run, and then adjusts α incrementally
//! based on observed performance trade-offs compared with past runs":
//!
//! 1. if rt(i)/rt(i−1) ≥ 1 and tp(i)/tp(i−1) < rt(i)/rt(i−1):
//!    αᵢ₊₁ = αᵢ − min{rt-ratio − tp-ratio, αᵢ}  (bias towards contention);
//! 2. if rt(i)/rt(i−1) < 1 and tp(i)/tp(i−1) < rt(i)/rt(i−1):
//!    αᵢ₊₁ = αᵢ + min{rt-ratio − tp-ratio, 1 − αᵢ}  (bias towards age).
//!
//! Rule 2's increment term is negative as literally printed (tp-ratio exceeds
//! rt-ratio is false in its guard, so rt-ratio − tp-ratio > 0 there); we apply
//! the magnitude |rt-ratio − tp-ratio| in both rules, clamped to keep
//! α ∈ \[0, 1\].
//!
//! To avoid rapid variation, performance is smoothed across runs:
//! rt′(i) = 0.2·rt(i) + 0.8·rt′(i−1) and likewise for throughput. And "it can
//! be difficult to recover from a poor initial choice for α if workload
//! saturation exhibits little change over an extended period", so the
//! controller perturbs α to explore the trade-off curve when two consecutive
//! runs show no movement.

use serde::Serialize;

/// Measured performance of one run of `r` consecutive queries.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunFeedback {
    /// Mean query response time during the run, ms.
    pub mean_response_ms: f64,
    /// Query throughput during the run, queries/s.
    pub throughput_qps: f64,
}

/// The incremental α controller.
#[derive(Debug, Clone)]
pub struct AlphaController {
    alpha: f64,
    run_len: usize,
    completed_in_run: usize,
    run_started_ms: f64,
    /// Whether `run_started_ms` was pinned by an observed arrival (the
    /// correct anchor for the first run's throughput window).
    anchored: bool,
    /// Arrivals not yet matched by a completion. When a run closes with an
    /// empty queue the anchor is re-armed, so an idle gap before the next
    /// arrival is excluded from the next run's throughput window.
    outstanding: u64,
    response_sum_ms: f64,
    /// Smoothed rt′/tp′ of the previous run.
    prev: Option<RunFeedback>,
    /// Runs with negligible movement, for trade-off-curve exploration.
    flat_runs: u32,
    explore_sign: f64,
    history: Vec<(f64, RunFeedback)>,
}

impl AlphaController {
    /// Threshold below which two runs count as "no change".
    const FLAT_EPS: f64 = 0.02;
    /// Exploration step applied after two flat runs.
    const EXPLORE_STEP: f64 = 0.1;

    /// Creates a controller with initial bias `alpha0` (the paper initializes
    /// 0.5) and run length `run_len` queries.
    pub fn new(alpha0: f64, run_len: usize) -> Self {
        assert!((0.0..=1.0).contains(&alpha0), "alpha must be in [0,1]");
        assert!(run_len > 0, "runs must contain at least one query");
        AlphaController {
            alpha: alpha0,
            run_len,
            completed_in_run: 0,
            run_started_ms: 0.0,
            anchored: false,
            outstanding: 0,
            response_sum_ms: 0.0,
            prev: None,
            flat_runs: 0,
            explore_sign: 1.0,
            history: Vec::new(),
        }
    }

    /// Current age bias.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// (α, run feedback) pairs recorded at each run boundary.
    pub fn history(&self) -> &[(f64, RunFeedback)] {
        &self.history
    }

    /// Notes that a query became available at `now_ms`. The first arrival
    /// anchors the first run's throughput window; without it the window was
    /// back-dated to `now − response` of the first *completion*, which (when
    /// several queries queue before the first finishes) starts the clock far
    /// too late and inflates the first `throughput_qps` sample that α
    /// adaptation feeds on.
    ///
    /// The same anchoring re-arms at every run boundary that drains the
    /// queue: the first arrival after an idle gap re-pins the window, so the
    /// gap does not deflate the next run's `throughput_qps`.
    pub fn note_arrival(&mut self, now_ms: f64) {
        self.outstanding += 1;
        if !self.anchored {
            self.run_started_ms = now_ms.max(0.0);
            self.anchored = true;
        }
    }

    /// Records a query completion. Returns `true` when this completion closed
    /// a run (the caller should propagate the boundary to the cache for
    /// SLRU's batch promotion).
    pub fn on_query_complete(&mut self, response_ms: f64, now_ms: f64) -> bool {
        if !self.anchored && self.completed_in_run == 0 && self.history.is_empty() {
            // No arrival was ever noted (a caller driving completions
            // directly): fall back to back-dating the first run's start by
            // the first response time.
            self.run_started_ms = (now_ms - response_ms).max(0.0);
            self.anchored = true;
        }
        self.response_sum_ms += response_ms;
        self.completed_in_run += 1;
        self.outstanding = self.outstanding.saturating_sub(1);
        if self.completed_in_run < self.run_len {
            return false;
        }
        let elapsed_ms = (now_ms - self.run_started_ms).max(1e-6);
        let raw = RunFeedback {
            mean_response_ms: self.response_sum_ms / self.run_len as f64,
            throughput_qps: self.run_len as f64 / (elapsed_ms / 1000.0),
        };
        self.close_run(raw);
        self.completed_in_run = 0;
        self.response_sum_ms = 0.0;
        self.run_started_ms = now_ms;
        if self.outstanding == 0 {
            // The closing completion drained the queue. Pinning the next
            // run's start here would absorb any idle gap before the next
            // arrival into that run's throughput window; re-arm instead so
            // the next `note_arrival` re-anchors.
            self.anchored = false;
        }
        true
    }

    fn close_run(&mut self, raw: RunFeedback) {
        let smoothed = match self.prev {
            None => raw,
            Some(p) => RunFeedback {
                mean_response_ms: 0.2 * raw.mean_response_ms + 0.8 * p.mean_response_ms,
                throughput_qps: 0.2 * raw.throughput_qps + 0.8 * p.throughput_qps,
            },
        };
        if let Some(p) = self.prev {
            let rt_ratio = smoothed.mean_response_ms / p.mean_response_ms.max(1e-9);
            let tp_ratio = smoothed.throughput_qps / p.throughput_qps.max(1e-9);
            let delta = (rt_ratio - tp_ratio).abs();
            if rt_ratio >= 1.0 && tp_ratio < rt_ratio {
                // Saturation rising without commensurate throughput: chase
                // contention (lower α).
                self.alpha -= delta.min(self.alpha);
                self.flat_runs = 0;
            } else if rt_ratio < 1.0 && tp_ratio < rt_ratio {
                // Saturation falling and throughput sagging: spend slack on
                // response time (raise α).
                self.alpha += delta.min(1.0 - self.alpha);
                self.flat_runs = 0;
            } else if (rt_ratio - 1.0).abs() < Self::FLAT_EPS
                && (tp_ratio - 1.0).abs() < Self::FLAT_EPS
            {
                // No movement: explore the trade-off curve so α cannot stay
                // stuck at a bad initial value.
                self.flat_runs += 1;
                if self.flat_runs >= 2 {
                    let step = Self::EXPLORE_STEP * self.explore_sign;
                    let next = (self.alpha + step).clamp(0.0, 1.0);
                    // total_cmp, not `==`: "the clamp absorbed the whole
                    // step" must be an exact, total comparison (lint F002).
                    if next.total_cmp(&self.alpha).is_eq() {
                        self.explore_sign = -self.explore_sign;
                    } else {
                        self.alpha = next;
                    }
                    self.flat_runs = 0;
                }
            } else {
                self.flat_runs = 0;
            }
        }
        self.prev = Some(smoothed);
        self.history.push((self.alpha, smoothed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one full run with uniform response times and a chosen duration.
    fn push_run(c: &mut AlphaController, start_ms: f64, rt_ms: f64, run_secs: f64) -> f64 {
        let r = c.run_len;
        for i in 0..r {
            let t = start_ms + run_secs * 1000.0 * (i + 1) as f64 / r as f64;
            c.on_query_complete(rt_ms, t);
        }
        start_ms + run_secs * 1000.0
    }

    #[test]
    fn run_boundary_fires_every_r_queries() {
        let mut c = AlphaController::new(0.5, 3);
        assert!(!c.on_query_complete(10.0, 100.0));
        assert!(!c.on_query_complete(10.0, 200.0));
        assert!(c.on_query_complete(10.0, 300.0), "third completion closes");
        assert!(!c.on_query_complete(10.0, 400.0));
    }

    #[test]
    fn rising_saturation_lowers_alpha() {
        let mut c = AlphaController::new(0.5, 10);
        let t = push_run(&mut c, 0.0, 100.0, 10.0);
        // Response times explode while throughput stays flat: rule (1).
        push_run(&mut c, t, 500.0, 10.0);
        assert!(c.alpha() < 0.5, "alpha {} should drop", c.alpha());
        assert!(c.alpha() >= 0.0);
    }

    #[test]
    fn falling_saturation_with_sagging_throughput_raises_alpha() {
        let mut c = AlphaController::new(0.5, 10);
        let t = push_run(&mut c, 0.0, 500.0, 5.0);
        // Response time improves but throughput collapses harder: rule (2).
        push_run(&mut c, t, 400.0, 50.0);
        assert!(c.alpha() > 0.5, "alpha {} should rise", c.alpha());
        assert!(c.alpha() <= 1.0);
    }

    #[test]
    fn alpha_stays_clamped_under_extreme_swings() {
        let mut c = AlphaController::new(0.5, 5);
        let mut t = push_run(&mut c, 0.0, 10.0, 1.0);
        for i in 0..20 {
            // Alternate violent rises and falls in saturation.
            let rt = if i % 2 == 0 { 10_000.0 } else { 1.0 };
            t = push_run(&mut c, t, rt, 1.0);
            assert!((0.0..=1.0).contains(&c.alpha()), "alpha {}", c.alpha());
        }
    }

    #[test]
    fn flat_workload_triggers_exploration() {
        let mut c = AlphaController::new(0.5, 5);
        let mut t = 0.0;
        for _ in 0..6 {
            t = push_run(&mut c, t, 100.0, 10.0);
        }
        assert!(
            (c.alpha() - 0.5).abs() > 1e-9,
            "alpha {} never explored despite a flat workload",
            c.alpha()
        );
    }

    #[test]
    fn exploration_reverses_at_the_boundary() {
        let mut c = AlphaController::new(1.0, 2);
        let mut t = 0.0;
        for _ in 0..8 {
            t = push_run(&mut c, t, 100.0, 10.0);
        }
        assert!(c.alpha() < 1.0, "stuck at the upper clamp");
    }

    #[test]
    fn smoothing_damps_a_single_spike() {
        let mut c = AlphaController::new(0.5, 10);
        let t = push_run(&mut c, 0.0, 100.0, 10.0);
        // One spiky run: the 0.2/0.8 EWMA records 0.2·1000 + 0.8·100 = 280,
        // not the raw 1000 — a 2.8× apparent rise instead of 10×.
        push_run(&mut c, t, 1_000.0, 10.0);
        let (_, fb) = c.history().last().unwrap();
        assert!(
            (fb.mean_response_ms - 280.0).abs() < 1e-6,
            "{}",
            fb.mean_response_ms
        );
        assert!(c.alpha() < 0.5, "saturation rise still lowers alpha");
        assert!((0.0..=1.0).contains(&c.alpha()));
    }

    #[test]
    fn history_records_each_run() {
        let mut c = AlphaController::new(0.5, 4);
        let t = push_run(&mut c, 0.0, 50.0, 2.0);
        push_run(&mut c, t, 60.0, 2.0);
        assert_eq!(c.history().len(), 2);
    }

    #[test]
    fn first_run_is_anchored_at_first_arrival_not_first_completion() {
        // Four queries all arrive at t=0 and drain serially, 1 s each. The
        // run really spans 4 s → 1 q/s. Without the arrival anchor the run
        // start was back-dated to (1000 − 1000) = 0 only for the *first*
        // completion's response; with queueing, later completions have larger
        // responses, and the old anchor `now − response` of completion #1
        // understated the window whenever the first query was also the
        // fastest. Make the distortion visible: first response small.
        let mut c = AlphaController::new(0.5, 4);
        c.note_arrival(0.0);
        c.note_arrival(0.0); // only the first arrival anchors
        c.on_query_complete(500.0, 3_500.0); // fast first query
        c.on_query_complete(1_000.0, 3_600.0);
        c.on_query_complete(2_000.0, 3_800.0);
        assert!(c.on_query_complete(3_000.0, 4_000.0));
        let (_, fb) = c.history().last().unwrap();
        // Anchored at the first arrival (t = 0): 4 queries / 4 s = 1 q/s.
        // The old code anchored at 3500 − 500 = 3000 ms → 8 q/s.
        assert!(
            (fb.throughput_qps - 1.0).abs() < 1e-9,
            "throughput {} should be 1 q/s",
            fb.throughput_qps
        );
    }

    #[test]
    fn completion_only_callers_still_get_a_backdated_anchor() {
        // Drivers that never call note_arrival (unit tests, ablations) keep
        // the old fallback: first run starts at now − response of the first
        // completion.
        let mut c = AlphaController::new(0.5, 2);
        c.on_query_complete(1_000.0, 1_000.0);
        assert!(c.on_query_complete(1_000.0, 2_000.0));
        let (_, fb) = c.history().last().unwrap();
        assert!(
            (fb.throughput_qps - 1.0).abs() < 1e-9,
            "{}",
            fb.throughput_qps
        );
    }

    #[test]
    fn idle_gap_between_runs_does_not_deflate_throughput() {
        // Run 1: two arrivals at t=0 drain by t=2 s → 1 q/s. Then the system
        // sits idle for 98 s before the next two queries arrive and drain in
        // 2 s — another genuine 1 q/s run. The old code pinned run 2's start
        // at run 1's closing completion (t=2 s), so the idle gap inflated the
        // window to 100 s and rule 2 saw a phantom throughput collapse.
        let mut c = AlphaController::new(0.5, 2);
        c.note_arrival(0.0);
        c.note_arrival(0.0);
        c.on_query_complete(1_000.0, 1_000.0);
        assert!(c.on_query_complete(1_000.0, 2_000.0), "run 1 closes");
        c.note_arrival(100_000.0);
        c.note_arrival(100_000.0);
        c.on_query_complete(1_000.0, 101_000.0);
        assert!(c.on_query_complete(1_000.0, 102_000.0), "run 2 closes");
        let (_, fb) = c.history().last().unwrap();
        // Raw run-2 throughput is 2 q / 2 s = 1 q/s, and the EWMA of two
        // identical samples is still 1 q/s. Pre-fix the raw sample was
        // 2 q / 100 s = 0.02 q/s → smoothed 0.804.
        assert!(
            (fb.throughput_qps - 1.0).abs() < 1e-9,
            "throughput {} deflated by the idle gap",
            fb.throughput_qps
        );
    }

    #[test]
    fn continuous_load_keeps_back_to_back_run_windows() {
        // With queries still outstanding at the boundary, run 2's window must
        // stay pinned at run 1's close (no re-arming mid-stream).
        let mut c = AlphaController::new(0.5, 2);
        for _ in 0..4 {
            c.note_arrival(0.0);
        }
        c.on_query_complete(1_000.0, 1_000.0);
        assert!(c.on_query_complete(2_000.0, 2_000.0));
        c.on_query_complete(3_000.0, 3_000.0);
        assert!(c.on_query_complete(4_000.0, 4_000.0));
        let (_, fb) = c.history().last().unwrap();
        // Run 2 spans 2 s (from the run-1 close at t=2 s to t=4 s): raw
        // 1 q/s, smoothed with run 1's identical 1 q/s → 1 q/s.
        assert!(
            (fb.throughput_qps - 1.0).abs() < 1e-9,
            "{}",
            fb.throughput_qps
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_out_of_range_alpha() {
        let _ = AlphaController::new(1.5, 10);
    }
}
