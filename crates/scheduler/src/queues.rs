//! Per-atom workload queues and the workload-throughput metrics.
//!
//! "A workload Wⱼⁱ represents the set of positions from Qᵢ that are contained
//! within Aⱼ and the workload queue for an atom Aⱼ consists of the union of
//! Wⱼ¹, Wⱼ², …" (§III-C). The [`WorkloadManager`] owns these queues and
//! computes:
//!
//! * **Eq. 1** — workload throughput
//!   `U_t(i) = ΣW / (T_b·φ(i) + T_m·ΣW)`, where φ(i) is 0 when the atom is
//!   cached and 1 otherwise;
//! * **Eq. 2** — the aged metric `U_e(i) = U_t(i)·(1−α) + E(i)·α`. The paper
//!   combines a throughput (positions/ms) with an age (ms) directly, leaving
//!   the trade-off scale to the tuning of α; to keep α ∈ \[0, 1\]
//!   interpretable across cost models we normalize each term by its current
//!   maximum over all pending atoms before blending (documented deviation —
//!   DESIGN.md).
//!
//! The manager also produces the [`UtilitySnapshot`] that URC (the
//! workload-aware cache policy of §V-B) consumes as its ranking oracle.
//!
//! # Layering
//!
//! This module owns only the **base state**: the queues themselves and the
//! per-query completion bookkeeping. Every *derived* view — cached Eq. 1
//! values, per-timestep aggregates, age indexes, the URC snapshot — lives in
//! the [`crate::delta`] arrangement layer, fed by typed
//! [`Delta`]s from the mutating methods here. The public
//! read API ([`WorkloadManager::aged_utilities`],
//! [`WorkloadManager::timestep_means`], [`WorkloadManager::utility_snapshot`],
//! [`WorkloadManager::best_timestep`], [`WorkloadManager::best_atom`]) is
//! incremental — O(Δ) per dispatch — and bitwise identical to the full-scan
//! oracle in [`crate::delta::reference`], which only tests, proptests and the
//! `dispatch_scaling` bench may call.
//!
//! # Total order (determinism)
//!
//! Selection is a total order (lint rules D001/F002): scores compare via
//! `f64::total_cmp` and exact ties fall back to ascending `AtomId`
//! (`(timestep, morton)`), so the chosen atom is a function of queue *state*
//! only — never of enqueue order or map iteration order. Queues live in a
//! `BTreeMap`, which also makes the canonical sorted fold order free.
//! Non-finite metric inputs are debug-asserted and clamped to zero
//! (`finite_or_zero`) so a poisoned cost model cannot make the
//! normalization folds — and with them every comparison — NaN.

use crate::batch::{AtomBatch, SubQuery};
use crate::delta::{eq1, Delta, DeltaCore, DeltaStats, QueueBase, QueueInfo};
use crate::policy::Residency;
use jaws_morton::AtomId;
use jaws_workload::QueryId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

pub use crate::delta::UtilitySnapshot;

/// Clamps a non-finite metric term to zero. A NaN utility or age would
/// propagate through the max-normalizers into *every* atom's Eq. 2 blend and
/// make the ranking incomparable; clamping keeps the order total while the
/// paired `debug_assert` surfaces the broken cost model in tests. Public
/// because report assembly guards derived ratios (e.g. per-node utilization
/// over a zero makespan) with the same rule.
pub fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// The cost constants of Eq. 1 plus the geometry the per-timestep mean is
/// taken over.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetricParams {
    /// T_b: estimated time to read one atom from disk, ms.
    pub atom_read_ms: f64,
    /// T_m: estimated computation cost per position, ms.
    pub position_compute_ms: f64,
    /// Atoms per timestep (4096 in production). §V computes the coarse-level
    /// selection "based on the mean workload throughput metric computed over
    /// all atoms in a time step" — including the workload-free ones — so the
    /// mean needs the full atom count, not just the pending atoms.
    pub atoms_per_timestep: u64,
}

impl MetricParams {
    /// Matches `CostModel::paper_testbed()` and the production 16³ atom grid.
    pub fn paper_testbed() -> Self {
        MetricParams {
            atom_read_ms: 80.0,
            position_compute_ms: 0.05,
            atoms_per_timestep: 4096,
        }
    }
}

/// One atom's workload queue.
#[derive(Debug, Default, Clone)]
struct AtomQueue {
    subs: Vec<SubQuery>,
    /// Cached ΣW (total positions) — the numerator of Eq. 1.
    positions: u64,
    /// Enqueue time of the oldest sub-query, ms.
    oldest_ms: f64,
}

/// Read-only window onto the base queue state, handed to the delta layer's
/// integration step. Borrows only the base fields, so the arrangement core
/// can be borrowed mutably at the same time ([`WorkloadManager::parts`]).
struct BaseView<'a> {
    params: &'a MetricParams,
    queues: &'a BTreeMap<AtomId, AtomQueue>,
}

impl QueueBase for BaseView<'_> {
    fn metric_params(&self) -> &MetricParams {
        self.params
    }

    fn queue_info(&self, atom: &AtomId) -> Option<QueueInfo> {
        self.queues.get(atom).map(|q| QueueInfo {
            positions: q.positions,
            oldest_ms: q.oldest_ms,
        })
    }
}

/// The workload manager: per-atom queues plus per-query bookkeeping (base
/// state), and the `DeltaCore` arrangement layer every derived view is
/// answered from.
#[derive(Debug)]
pub struct WorkloadManager {
    params: MetricParams,
    /// Ordered so `keys()` *is* the canonical `(timestep, morton)` fold order.
    queues: BTreeMap<AtomId, AtomQueue>,
    /// Remaining sub-query count per query (for completion detection).
    pending_subs: HashMap<QueryId, usize>,
    total_subs: usize,
    /// The delta-propagation core: all derived state, fed through `apply`.
    core: DeltaCore,
}

impl WorkloadManager {
    /// Creates an empty manager.
    pub fn new(params: MetricParams) -> Self {
        WorkloadManager {
            params,
            queues: BTreeMap::new(),
            pending_subs: HashMap::new(),
            total_subs: 0,
            core: DeltaCore::new(),
        }
    }

    /// Cost constants in use.
    pub fn params(&self) -> MetricParams {
        self.params
    }

    /// Splits the borrow: a read-only view of the base queue state plus the
    /// mutable arrangement core, so the core can integrate against the base
    /// without aliasing.
    fn parts(&mut self) -> (BaseView<'_>, &mut DeltaCore) {
        (
            BaseView {
                params: &self.params,
                queues: &self.queues,
            },
            &mut self.core,
        )
    }

    /// Adds sub-queries to their atoms' queues.
    pub fn enqueue(&mut self, subs: impl IntoIterator<Item = SubQuery>) {
        for s in subs {
            debug_assert!(s.positions > 0, "empty sub-query");
            debug_assert!(s.enqueued_ms.is_finite(), "non-finite enqueue time");
            let q = self.queues.entry(s.atom).or_insert_with(|| AtomQueue {
                subs: Vec::new(),
                positions: 0,
                oldest_ms: s.enqueued_ms,
            });
            q.oldest_ms = q.oldest_ms.min(s.enqueued_ms);
            q.positions += s.positions as u64;
            q.subs.push(s);
            *self.pending_subs.entry(s.query).or_insert(0) += 1;
            self.total_subs += 1;
            self.core.apply(Delta::Arrived { atom: s.atom });
        }
    }

    /// True if no sub-queries are pending.
    pub fn is_empty(&self) -> bool {
        self.total_subs == 0
    }

    /// Number of pending sub-queries.
    pub fn pending_subqueries(&self) -> usize {
        self.total_subs
    }

    /// Number of atoms with non-empty queues.
    pub fn pending_atoms(&self) -> usize {
        self.queues.len()
    }

    /// Number of timesteps with at least one pending atom.
    pub fn pending_timesteps(&self) -> usize {
        self.core.timestep_count()
    }

    /// Pending positions on one atom (ΣW of Eq. 1), zero if queue-less.
    pub fn atom_positions(&self, atom: &AtomId) -> u64 {
        self.queues.get(atom).map_or(0, |q| q.positions)
    }

    /// Eq. 1 for one atom. `resident` is φ(i) = 0 (cached) / 1 (on disk).
    ///
    /// Cost models with `position_compute_ms = 0` make a resident atom's
    /// denominator vanish; see [`crate::delta`]'s `eq1` for the finite
    /// ranking used instead of an infinity sentinel.
    pub fn workload_throughput(&self, atom: &AtomId, resident: bool) -> f64 {
        self.queues
            .get(atom)
            .map_or(0.0, |q| eq1(&self.params, q.positions, resident))
    }

    /// Age E(i) of the oldest sub-query on one atom, ms.
    pub fn age(&self, atom: &AtomId, now_ms: f64) -> f64 {
        self.queues
            .get(atom)
            .map_or(0.0, |q| (now_ms - q.oldest_ms).max(0.0))
    }

    /// Pending atoms in sorted `(timestep, morton)` order — the canonical
    /// iteration order of every floating-point fold. Free: `queues` is a
    /// `BTreeMap`, so its keys already iterate in that order. Base-state
    /// accessor for the [`crate::delta::reference`] oracle; production
    /// schedulers never need the full list.
    pub fn pending_atom_ids(&self) -> Vec<AtomId> {
        self.queues.keys().copied().collect()
    }

    /// Removes and returns the whole queue of one atom, plus the queries that
    /// now have no pending sub-queries anywhere (they complete with this
    /// batch).
    ///
    /// Convenience wrapper over [`Self::take_atom_into`] for callers taking a
    /// single atom; batch builders loop over [`Self::take_atom_into`] with
    /// one reused buffer instead of paying a `Vec` per atom.
    ///
    /// # Panics
    ///
    /// Panics if the atom has no queue — schedulers must only take atoms they
    /// observed as pending.
    pub fn take_atom(&mut self, atom: &AtomId) -> (AtomBatch, Vec<QueryId>) {
        let mut completing = Vec::new();
        let group = self.take_atom_into(atom, &mut completing);
        (group, completing)
    }

    /// [`Self::take_atom`], but appending the completing query ids to a
    /// caller-provided buffer so a k-atom batch build performs no per-atom
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the atom has no queue — schedulers must only take atoms they
    /// observed as pending.
    pub fn take_atom_into(&mut self, atom: &AtomId, completing: &mut Vec<QueryId>) -> AtomBatch {
        // lint: invariant — documented public contract (see # Panics above)
        let q = self
            .queues
            .remove(atom)
            .unwrap_or_else(|| panic!("take_atom on empty queue {atom}"));
        self.total_subs -= q.subs.len();
        self.core.apply(Delta::Taken { atom: *atom });
        for s in &q.subs {
            // lint: invariant — enqueue() registered every sub-query's query id
            let left = self
                .pending_subs
                .get_mut(&s.query)
                .expect("sub-query of a tracked query");
            *left -= 1;
            if *left == 0 {
                self.pending_subs.remove(&s.query);
                completing.push(s.query);
            }
        }
        AtomBatch {
            atom: *atom,
            subqueries: q.subs,
        }
    }

    /// Records that a query finished executing (its last sub-query's batch
    /// came back). Pure lifecycle bookkeeping in the delta stream — queue
    /// state already settled at take time.
    pub fn note_completed(&mut self, query: QueryId) {
        self.core.apply(Delta::Completed { query });
    }

    /// Pending atoms of one timestep.
    pub fn atoms_in_timestep(&self, timestep: u32) -> Vec<AtomId> {
        self.core.atoms_in_timestep(timestep)
    }

    /// Counters over the delta stream and the arrangement maintenance it
    /// caused. Monotone; diff two snapshots to measure one window.
    pub fn delta_stats(&self) -> DeltaStats {
        self.core.stats()
    }

    /// The arrangement state generation: bumps on every delta that can change
    /// a read result, stays put across pure reads and clock advances. Two
    /// equal generations bracket a window in which every derived view was
    /// provably served from cache.
    pub fn generation(&self) -> u64 {
        self.core.generation()
    }

    /// The latest clock watermark that entered the delta stream
    /// ([`Delta::Aged`] from a timed read), ms. Diagnostics only — ages are
    /// always derived from the caller's `now`, never from this.
    pub fn clock_watermark_ms(&self) -> f64 {
        self.core.clock_ms()
    }

    /// Eq. 2 over every pending atom: `(atom, U_e)` with both terms
    /// max-normalized before blending, in sorted `(timestep, morton)` order.
    /// `alpha = 0` is pure contention order, `alpha = 1` pure arrival (age)
    /// order. Incremental (O(Δ) + O(n) output); bitwise identical to
    /// [`crate::delta::reference::aged_utilities`]. Schedulers that only need
    /// an argmax use [`Self::best_atom`] instead.
    pub fn aged_utilities(
        &mut self,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Vec<(AtomId, f64)> {
        let (base, core) = self.parts();
        core.apply(Delta::Aged { now_ms });
        core.aged_utilities(&base, now_ms, alpha, residency)
    }

    /// Mean workload throughput per timestep over *all* of that timestep's
    /// atoms (workload-free atoms contribute zero) — the coarse level of
    /// two-level scheduling (§V) and the cross-timestep eviction order of
    /// URC. Because every timestep has the same atom count, this ranks
    /// timesteps by total pending utility, which "tends to yield higher
    /// workload density". Incremental; bitwise identical to
    /// [`crate::delta::reference::timestep_means`].
    pub fn timestep_means(&mut self, residency: &dyn Residency) -> BTreeMap<u32, f64> {
        let (base, core) = self.parts();
        core.timestep_means(&base, residency)
    }

    /// The URC oracle snapshot: every pending atom's Eq. 1 value plus its
    /// timestep's mean. Atoms without pending work rank
    /// [`jaws_cache::UtilityRank::ZERO`] and are evicted first. Incremental
    /// (O(Δ) integration + O(1) `Arc` clone); bitwise identical to
    /// [`crate::delta::reference::utility_snapshot`].
    pub fn utility_snapshot(&mut self, residency: &dyn Residency) -> UtilitySnapshot {
        let (base, core) = self.parts();
        core.snapshot(&base, residency)
    }

    /// Coarse level of two-level scheduling: the timestep with the highest
    /// summed aged utility (equivalently, the highest mean over its fixed
    /// atom count). Ties prefer the smaller timestep. O(#timesteps) after an
    /// O(Δ) integration, O(1) on a clean generation.
    pub fn best_timestep(
        &mut self,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Option<u32> {
        let (base, core) = self.parts();
        core.apply(Delta::Aged { now_ms });
        core.best_timestep(&base, now_ms, alpha, residency)
    }

    /// Fine level of two-level scheduling: Eq. 2 for every pending atom of
    /// one timestep, in Morton order. Per-atom values are bitwise identical
    /// to the corresponding [`Self::aged_utilities`] entries.
    pub fn timestep_aged_utilities(
        &mut self,
        timestep: u32,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Vec<(AtomId, f64)> {
        let mut out = Vec::new();
        self.timestep_aged_utilities_into(timestep, now_ms, alpha, residency, &mut out);
        out
    }

    /// Scratch-buffer variant of [`Self::timestep_aged_utilities`]: clears
    /// `out` and fills it with the same entries (bitwise identical, same
    /// order). The dispatch hot path reuses one buffer across batches instead
    /// of allocating per call.
    pub fn timestep_aged_utilities_into(
        &mut self,
        timestep: u32,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
        out: &mut Vec<(AtomId, f64)>,
    ) {
        let (base, core) = self.parts();
        core.apply(Delta::Aged { now_ms });
        core.timestep_aged_utilities_into(&base, timestep, now_ms, alpha, residency, out);
    }

    /// The single pending atom with the highest aged utility (ties prefer
    /// the smaller atom id) — LifeRaft's contention-order pick. Timesteps are
    /// visited in descending upper-bound order and pruned once no remaining
    /// timestep can beat the incumbent, so the common case inspects only the
    /// hottest timestep's atoms.
    pub fn best_atom(
        &mut self,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Option<(AtomId, f64)> {
        let (base, core) = self.parts();
        core.apply(Delta::Aged { now_ms });
        core.best_atom(&base, now_ms, alpha, residency)
    }

    /// Test hook: force-build the clamped-age index of one timestep.
    #[cfg(test)]
    fn ensure_age_index(&mut self, ts: u32) {
        let (base, core) = self.parts();
        core.ensure_age_index(&base, ts);
    }

    /// Test hook: the indexed Σ (now − oldest)⁺ of one timestep.
    #[cfg(test)]
    fn clamped_age_sum(&self, ts: u32, now_ms: f64) -> f64 {
        self.core.clamped_age_sum(ts, now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::reference;
    use crate::policy::test_support::FixedResidency;
    use jaws_cache::UtilityOracle;
    use jaws_morton::MortonKey;
    use std::collections::BTreeMap;

    fn sub(query: QueryId, t: u32, m: u64, positions: u32, at: f64) -> SubQuery {
        SubQuery {
            query,
            atom: AtomId::new(t, MortonKey(m)),
            positions,
            enqueued_ms: at,
        }
    }

    fn params() -> MetricParams {
        MetricParams {
            atom_read_ms: 100.0,
            position_compute_ms: 1.0,
            atoms_per_timestep: 64,
        }
    }

    #[test]
    fn eq1_favors_longer_queues() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 10, 0.0), sub(2, 0, 1, 100, 0.0)]);
        let none = FixedResidency::none();
        let a0 = AtomId::new(0, MortonKey(0));
        let a1 = AtomId::new(0, MortonKey(1));
        let u0 = wm.workload_throughput(&a0, none.is_resident(&a0));
        let u1 = wm.workload_throughput(&a1, none.is_resident(&a1));
        // 10/(100+10) vs 100/(100+100).
        assert!((u0 - 10.0 / 110.0).abs() < 1e-12);
        assert!((u1 - 0.5).abs() < 1e-12);
        assert!(u1 > u0, "longer queue amortizes the read better");
    }

    #[test]
    fn finite_or_zero_clamps_only_non_finite_values() {
        assert_eq!(finite_or_zero(f64::NAN), 0.0);
        assert_eq!(finite_or_zero(f64::INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NEG_INFINITY), 0.0);
        // Identity on finite values, bit-exactly — the clamp must never
        // perturb the incremental/reference bitwise-equivalence invariant.
        for v in [0.0, -0.0, 1.5e-300, 42.25, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(finite_or_zero(v).to_bits(), v.to_bits());
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite cost model")]
    fn eq1_rejects_nan_cost_model_in_debug() {
        let poisoned = MetricParams {
            atom_read_ms: f64::NAN,
            position_compute_ms: 0.05,
            atoms_per_timestep: 64,
        };
        let _ = eq1(&poisoned, 10, false);
    }

    #[test]
    fn eq2_fold_survives_clamped_non_finite_utility() {
        // Release-build behaviour of the Eq. 2 guard: even if a non-finite
        // utility slipped past the debug assertion, the max-normalizer clamps
        // it to zero and every blend stays finite and comparable.
        let raw: Vec<(AtomId, f64, f64)> = vec![
            (AtomId::new(0, MortonKey(0)), f64::NAN, 5.0),
            (AtomId::new(0, MortonKey(1)), 2.0, f64::INFINITY),
            (AtomId::new(0, MortonKey(2)), 1.0, 3.0),
        ];
        let max_u = raw
            .iter()
            .map(|&(_, u, _)| finite_or_zero(u))
            .fold(0.0f64, f64::max);
        let max_e = raw
            .iter()
            .map(|&(_, _, e)| finite_or_zero(e))
            .fold(0.0f64, f64::max);
        assert_eq!(max_u, 2.0);
        assert_eq!(max_e, 5.0);
    }

    #[test]
    fn eq1_phi_zero_for_resident_atoms() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 10, 0.0)]);
        let a0 = AtomId::new(0, MortonKey(0));
        let u_disk = wm.workload_throughput(&a0, false);
        let u_mem = wm.workload_throughput(&a0, true);
        assert!(
            (u_mem - 1.0).abs() < 1e-12,
            "pure compute: W/(T_m·W) = 1/T_m"
        );
        assert!(u_mem > u_disk, "cached atoms rank higher (Eq. 1 φ)");
    }

    #[test]
    fn zero_compute_cost_keeps_the_metric_finite() {
        // T_m = 0 makes a resident atom's Eq. 1 denominator vanish. The old
        // sentinel returned W·1e9, which crushed every other atom's
        // normalized utility to ~0; the replacement ranks the atom as if it
        // cost half an atom read.
        let zero_compute = MetricParams {
            atom_read_ms: 100.0,
            position_compute_ms: 0.0,
            atoms_per_timestep: 64,
        };
        let mut wm = WorkloadManager::new(zero_compute);
        wm.enqueue([sub(1, 0, 0, 10, 0.0), sub(2, 0, 1, 40, 0.0)]);
        let a0 = AtomId::new(0, MortonKey(0));
        let a1 = AtomId::new(0, MortonKey(1));
        let u_res_small = wm.workload_throughput(&a0, true);
        let u_res_big = wm.workload_throughput(&a1, true);
        let u_disk_small = wm.workload_throughput(&a0, false);
        assert!(u_res_small.is_finite());
        assert!((u_res_small - 10.0 / 50.0).abs() < 1e-12, "W / (T_b / 2)");
        assert!(u_res_big > u_res_small, "still monotone in pending work");
        assert_eq!(
            u_res_small,
            2.0 * u_disk_small,
            "resident ranks exactly 2x its on-disk self in the T_m->0 limit"
        );
        // Max-normalization stays meaningful: the disk atom's normalized
        // utility is within an order of magnitude, not ~1e-9.
        let res = FixedResidency::of([a0]);
        let aged: BTreeMap<AtomId, f64> = wm.aged_utilities(1.0, 0.0, &res).into_iter().collect();
        assert!(
            aged[&a1] > 0.1,
            "non-degenerate atom not crushed: {}",
            aged[&a1]
        );
        // All-zero cost model: fall back to raw workload ranking.
        let all_zero = MetricParams {
            atom_read_ms: 0.0,
            position_compute_ms: 0.0,
            atoms_per_timestep: 64,
        };
        let mut wm0 = WorkloadManager::new(all_zero);
        wm0.enqueue([sub(1, 0, 0, 7, 0.0)]);
        assert_eq!(wm0.workload_throughput(&a0, true), 7.0);
    }

    #[test]
    fn age_tracks_oldest_subquery() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 5, 100.0)]);
        wm.enqueue([sub(2, 0, 0, 5, 900.0)]);
        let a0 = AtomId::new(0, MortonKey(0));
        assert_eq!(wm.age(&a0, 1000.0), 900.0, "oldest wins");
        assert_eq!(wm.age(&AtomId::new(0, MortonKey(9)), 1000.0), 0.0);
    }

    #[test]
    fn aged_metric_interpolates_between_contention_and_age() {
        let mut wm = WorkloadManager::new(params());
        // Atom 0: huge queue, fresh. Atom 1: tiny queue, ancient.
        wm.enqueue([sub(1, 0, 0, 1000, 990.0), sub(2, 0, 1, 1, 0.0)]);
        let none = FixedResidency::none();
        let mut rank_of = |alpha: f64| {
            let mut u = wm.aged_utilities(1000.0, alpha, &none);
            u.sort_by(|a, b| b.1.total_cmp(&a.1));
            u[0].0
        };
        assert_eq!(rank_of(0.0), AtomId::new(0, MortonKey(0)), "contention");
        assert_eq!(rank_of(1.0), AtomId::new(0, MortonKey(1)), "arrival order");
    }

    #[test]
    fn take_atom_reports_completions() {
        let mut wm = WorkloadManager::new(params());
        // Query 1 spans two atoms; query 2 one atom.
        wm.enqueue([
            sub(1, 0, 0, 5, 0.0),
            sub(1, 0, 1, 5, 0.0),
            sub(2, 0, 0, 7, 0.0),
        ]);
        assert_eq!(wm.pending_subqueries(), 3);
        let (batch, done) = wm.take_atom(&AtomId::new(0, MortonKey(0)));
        assert_eq!(batch.subqueries.len(), 2);
        assert_eq!(batch.positions(), 12);
        assert_eq!(done, vec![2], "query 2 fully served; query 1 still pending");
        let (_, done) = wm.take_atom(&AtomId::new(0, MortonKey(1)));
        assert_eq!(done, vec![1]);
        assert!(wm.is_empty());
    }

    #[test]
    #[should_panic(expected = "take_atom on empty queue")]
    fn take_atom_requires_a_queue() {
        let mut wm = WorkloadManager::new(params());
        wm.take_atom(&AtomId::new(0, MortonKey(0)));
    }

    #[test]
    fn timestep_means_aggregate_per_timestep() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([
            sub(1, 0, 0, 100, 0.0),
            sub(2, 0, 1, 100, 0.0),
            sub(3, 5, 0, 10, 0.0),
        ]);
        let none = FixedResidency::none();
        let means = wm.timestep_means(&none);
        assert_eq!(means.len(), 2);
        assert!(means[&0] > means[&5], "denser timestep has higher mean");
    }

    #[test]
    fn utility_snapshot_feeds_urc() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 100, 0.0), sub(2, 3, 1, 5, 0.0)]);
        let none = FixedResidency::none();
        let snap = wm.utility_snapshot(&none);
        let hot = snap.rank(&AtomId::new(0, MortonKey(0)));
        let cold = snap.rank(&AtomId::new(3, MortonKey(1)));
        let absent = snap.rank(&AtomId::new(7, MortonKey(7)));
        assert!(hot.atom_utility > cold.atom_utility);
        assert!(hot.timestep_mean > cold.timestep_mean);
        assert_eq!(absent.atom_utility, 0.0);
        // URC would evict `absent` first, then `cold`, then `hot`.
        assert_eq!(absent.cmp_for_eviction(&cold), std::cmp::Ordering::Less);
        assert_eq!(cold.cmp_for_eviction(&hot), std::cmp::Ordering::Less);
    }

    #[test]
    fn enqueue_merges_same_atom_across_queries() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 4, 10, 0.0)]);
        wm.enqueue([sub(2, 0, 4, 20, 5.0)]);
        assert_eq!(wm.pending_atoms(), 1);
        assert_eq!(wm.atom_positions(&AtomId::new(0, MortonKey(4))), 30);
    }

    #[test]
    fn incremental_best_atom_matches_reference_argmax() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([
            sub(1, 0, 0, 10, 0.0),
            sub(2, 0, 1, 400, 30.0),
            sub(3, 2, 5, 80, 10.0),
            sub(4, 7, 2, 80, 5.0),
        ]);
        let none = FixedResidency::none();
        for &alpha in &[0.0, 0.3, 1.0] {
            let oracle = reference::aged_utilities(&wm, 1000.0, alpha, &none)
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .unwrap();
            let fast = wm.best_atom(1000.0, alpha, &none).unwrap();
            assert_eq!(fast.0, oracle.0, "alpha={alpha}");
            assert_eq!(fast.1.to_bits(), oracle.1.to_bits());
        }
    }

    #[test]
    fn incremental_snapshot_tracks_takes_and_arrivals() {
        let mut wm = WorkloadManager::new(params());
        let none = FixedResidency::none();
        wm.enqueue([sub(1, 0, 0, 100, 0.0), sub(2, 3, 1, 5, 0.0)]);
        let s1 = wm.utility_snapshot(&none);
        assert!(s1.rank(&AtomId::new(0, MortonKey(0))).atom_utility > 0.0);
        wm.take_atom(&AtomId::new(0, MortonKey(0)));
        wm.enqueue([sub(3, 3, 2, 50, 4.0)]);
        let s2 = wm.utility_snapshot(&none);
        assert_eq!(
            s2.rank(&AtomId::new(0, MortonKey(0))).atom_utility,
            0.0,
            "taken atom dropped from the snapshot"
        );
        assert!(s2.rank(&AtomId::new(3, MortonKey(2))).atom_utility > 0.0);
        // The earlier snapshot is a frozen point in time.
        assert!(s1.rank(&AtomId::new(0, MortonKey(0))).atom_utility > 0.0);
        assert_eq!(s1.rank(&AtomId::new(3, MortonKey(2))).atom_utility, 0.0);
    }

    #[test]
    fn best_timestep_clamped_age_fallback_is_exact() {
        let mut wm = WorkloadManager::new(params());
        // Timestep 0 holds an atom enqueued "after" now (its age clamps to
        // zero), forcing the degenerate branch; timestep 1 is all past.
        wm.enqueue([
            sub(1, 0, 0, 10, 0.0),
            sub(2, 0, 1, 10, 5_000.0),
            sub(3, 1, 0, 10, 100.0),
        ]);
        let none = FixedResidency::none();
        let now = 1_000.0;
        // Pure age order: ts 0 sums age 1000 (+ 0 clamped), ts 1 sums 900.
        assert_eq!(wm.best_timestep(now, 1.0, &none), Some(0));
        // The sorted-prefix index agrees with the exact per-atom fold.
        wm.ensure_age_index(0);
        let exact: f64 = wm.atoms_in_timestep(0).iter().map(|a| wm.age(a, now)).sum();
        let fast = wm.clamped_age_sum(0, now);
        assert!((fast - exact).abs() <= 1e-9 * exact.max(1.0));
        // A queue change refolds the aggregate and invalidates the index.
        wm.enqueue([sub(4, 0, 2, 10, 7_000.0)]);
        assert_eq!(wm.best_timestep(now, 1.0, &none), Some(0));
        let exact2: f64 = wm.atoms_in_timestep(0).iter().map(|a| wm.age(a, now)).sum();
        let fast2 = wm.clamped_age_sum(0, now);
        assert_eq!(
            exact2.to_bits(),
            exact.to_bits(),
            "new atom's age clamps to 0"
        );
        assert!((fast2 - exact2).abs() <= 1e-9 * exact2.max(1.0));
    }

    #[test]
    fn delta_stats_track_the_update_stream() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 5, 0.0), sub(1, 0, 1, 5, 0.0)]);
        let (_, done) = wm.take_atom(&AtomId::new(0, MortonKey(0)));
        assert!(done.is_empty());
        let (_, done) = wm.take_atom(&AtomId::new(0, MortonKey(1)));
        assert_eq!(done, vec![1]);
        for q in done {
            wm.note_completed(q);
        }
        let s = wm.delta_stats();
        assert_eq!(s.arrived, 2);
        assert_eq!(s.taken, 2);
        assert_eq!(s.completed, 1);
        // Timed reads advance the clock watermark through the same stream.
        let none = FixedResidency::none();
        assert!(wm.best_atom(123.0, 0.5, &none).is_none(), "drained");
        assert_eq!(wm.clock_watermark_ms(), 123.0);
        assert_eq!(wm.delta_stats().aged, 1);
    }

    /// Satellite regression (ISSUE 8): a dispatch attempt that changed
    /// nothing — gate rulings, `AlphaController` probes, repeated snapshot
    /// reads — must perform **zero** arrangement folds and zero coarse
    /// scans. The generation counter plus the read memos make clean repeat
    /// reads O(1).
    #[test]
    fn clean_generation_performs_zero_folds() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([
            sub(1, 0, 0, 10, 0.0),
            sub(2, 1, 3, 40, 5.0),
            sub(3, 2, 7, 25, 9.0),
        ]);
        let none = FixedResidency::none();
        let now = 1_000.0;
        let first = wm.best_timestep(now, 0.3, &none);
        let _ = wm.utility_snapshot(&none);
        let _ = wm.timestep_means(&none);
        let gen = wm.generation();
        let before = wm.delta_stats();
        for _ in 0..5 {
            assert_eq!(wm.best_timestep(now, 0.3, &none), first);
            let _ = wm.utility_snapshot(&none);
            let _ = wm.timestep_means(&none);
        }
        let after = wm.delta_stats();
        assert_eq!(wm.generation(), gen, "pure reads must not dirty state");
        assert_eq!(after.eq1_recomputes, before.eq1_recomputes, "Eq. 1 folds");
        assert_eq!(after.ts_refolds, before.ts_refolds, "aggregate refolds");
        assert_eq!(after.coarse_scans, before.coarse_scans, "coarse scans");
        assert_eq!(after.residency_probes, before.residency_probes, "probes");
        // A real change resumes normal maintenance.
        wm.enqueue([sub(4, 0, 9, 10, 20.0)]);
        let _ = wm.best_timestep(now, 0.3, &none);
        let resumed = wm.delta_stats();
        assert!(resumed.eq1_recomputes > after.eq1_recomputes);
        assert!(resumed.coarse_scans > after.coarse_scans);
    }

    /// A changed `now` or α is a different question: the coarse memo must
    /// miss (and rescan), not serve the stale answer.
    #[test]
    fn coarse_memo_keys_on_now_and_alpha() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 10, 0.0), sub(2, 1, 1, 400, 900.0)]);
        let none = FixedResidency::none();
        // At α=0 (pure contention) ts 1 wins on utility; at α=1 with a late
        // `now`, ts 0's age dominates.
        assert_eq!(wm.best_timestep(1_000.0, 0.0, &none), Some(1));
        assert_eq!(wm.best_timestep(10_000.0, 1.0, &none), Some(0));
        let scans = wm.delta_stats().coarse_scans;
        assert!(scans >= 2, "distinct questions must rescan: {scans}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::batch::SubQuery;
    use crate::delta::reference;
    use crate::policy::test_support::FixedResidency;
    use jaws_cache::UtilityOracle;
    use jaws_morton::MortonKey;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        /// Conservation: every enqueued sub-query is returned by exactly one
        /// take_atom, completions fire exactly once per query, and counters
        /// never go negative.
        #[test]
        fn enqueue_take_conservation(
            subs in proptest::collection::vec(
                (1u64..20, 0u32..4, 0u64..16, 1u32..50), 1..120),
        ) {
            let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
            let mut expected_per_query: HashMap<QueryId, usize> = HashMap::new();
            for (i, &(q, t, m, c)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: q,
                    atom: AtomId::new(t, MortonKey(m)),
                    positions: c,
                    enqueued_ms: i as f64,
                }]);
                *expected_per_query.entry(q).or_default() += 1;
            }
            prop_assert_eq!(wm.pending_subqueries(), subs.len());
            let none = FixedResidency::none();
            let mut taken = 0usize;
            let mut completed: Vec<QueryId> = Vec::new();
            while !wm.is_empty() {
                let atoms = wm.aged_utilities(1e6, 0.3, &none);
                prop_assert!(!atoms.is_empty());
                let (atom, _) = atoms[0];
                let (batch, done) = wm.take_atom(&atom);
                prop_assert!(!batch.subqueries.is_empty());
                taken += batch.subqueries.len();
                completed.extend(done);
            }
            prop_assert_eq!(taken, subs.len());
            completed.sort_unstable();
            let mut expect: Vec<QueryId> = expected_per_query.keys().copied().collect();
            expect.sort_unstable();
            prop_assert_eq!(completed, expect, "each query completes exactly once");
        }

        /// Eq. 1 monotonicity: more pending positions never lower the metric,
        /// and residency never lowers it either.
        #[test]
        fn metric_monotonicity(w1 in 1u32..10_000, extra in 1u32..10_000) {
            let params = MetricParams::paper_testbed();
            let atom = AtomId::new(0, MortonKey(5));
            let mut a = WorkloadManager::new(params);
            a.enqueue([SubQuery { query: 1, atom, positions: w1, enqueued_ms: 0.0 }]);
            let mut b = WorkloadManager::new(params);
            b.enqueue([SubQuery { query: 1, atom, positions: w1 + extra, enqueued_ms: 0.0 }]);
            prop_assert!(
                b.workload_throughput(&atom, false) >= a.workload_throughput(&atom, false)
            );
            prop_assert!(
                a.workload_throughput(&atom, true) >= a.workload_throughput(&atom, false)
            );
        }

        /// Satellite of lint rule D001: when every pending atom ties on
        /// utility and age, atom selection must not depend on enqueue order —
        /// only on the documented tie-break (ascending AtomId). Draining two
        /// managers fed the same atoms in different orders must visit atoms
        /// in the identical (sorted) sequence.
        #[test]
        fn equal_utility_selection_is_enqueue_order_invariant(
            set in proptest::collection::btree_set((0u32..3, 0u64..12), 2..10),
            shuffle_seed in 0u64..1_000_000,
        ) {
            // Distinct atoms with identical positions and enqueue times tie
            // exactly on both Eq. 2 terms. Shuffle with a seeded, replayable
            // Fisher–Yates (the proptest shim has no prop_shuffle).
            use rand::{RngCore, SeedableRng};
            let base: Vec<(u32, u64)> = set.into_iter().collect();
            let mut shuffled = base.clone();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(shuffle_seed);
            for i in (1..shuffled.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            let none = FixedResidency::none();
            let drain = |order: &[(u32, u64)]| {
                let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
                for (i, &(t, m)) in order.iter().enumerate() {
                    wm.enqueue([SubQuery {
                        query: i as u64 + 1,
                        atom: AtomId::new(t, MortonKey(m)),
                        positions: 40,
                        enqueued_ms: 0.0,
                    }]);
                }
                let mut visited = Vec::new();
                while let Some((atom, _)) = wm.best_atom(1000.0, 0.5, &none) {
                    visited.push(atom);
                    wm.take_atom(&atom);
                }
                visited
            };
            let a = drain(&base);
            let b = drain(&shuffled);
            prop_assert_eq!(&a, &b, "drain order depended on enqueue order");
            // With a global score tie, the documented total order degenerates
            // to plain ascending AtomId.
            let mut sorted = a.clone();
            sorted.sort_unstable();
            prop_assert_eq!(a, sorted, "tie-break is not ascending AtomId");
        }

        /// Aged utilities stay within [0, 1] after normalization for any α.
        #[test]
        fn aged_utilities_are_normalized(
            alpha in 0.0f64..=1.0,
            subs in proptest::collection::vec((1u64..9, 0u32..3, 0u64..8, 1u32..100), 1..40),
        ) {
            let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
            for (i, &(q, t, m, c)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: q,
                    atom: AtomId::new(t, MortonKey(m)),
                    positions: c,
                    enqueued_ms: i as f64 * 10.0,
                }]);
            }
            let none = FixedResidency::none();
            for (_, u) in wm.aged_utilities(1e5, alpha, &none) {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&u), "utility {u}");
            }
        }
    }

    /// A mutable residency source with full change tracking, standing in for
    /// the buffer pool. `tracked = false` degrades it to the conservative
    /// protocol (no epoch, no log) so both integration paths get exercised.
    struct FlipResidency {
        resident: HashSet<AtomId>,
        log: Vec<(AtomId, bool)>,
        tracked: bool,
    }

    impl FlipResidency {
        fn new(tracked: bool) -> Self {
            FlipResidency {
                resident: HashSet::new(),
                log: Vec::new(),
                tracked,
            }
        }

        fn flip(&mut self, atom: AtomId) {
            let now_resident = if self.resident.remove(&atom) {
                false
            } else {
                self.resident.insert(atom);
                true
            };
            self.log.push((atom, now_resident));
        }
    }

    impl Residency for FlipResidency {
        fn is_resident(&self, atom: &AtomId) -> bool {
            self.resident.contains(atom)
        }

        fn residency_epoch(&self) -> Option<u64> {
            self.tracked.then_some(self.log.len() as u64)
        }

        fn residency_changes_since(&self, since: u64) -> Option<Vec<(AtomId, bool)>> {
            if !self.tracked {
                return None;
            }
            Some(self.log[since as usize..].to_vec())
        }
    }

    /// Bitwise comparison of f64 maps/vecs: the delta layer must agree with
    /// the full-scan [`reference`] oracle to the last ulp, not approximately.
    fn assert_equiv(
        wm: &mut WorkloadManager,
        res: &dyn Residency,
        now_ms: f64,
        alpha: f64,
        probes: &[AtomId],
    ) {
        let mut oracle = reference::aged_utilities(wm, now_ms, alpha, res);
        oracle.sort_by_key(|&(a, _)| a);
        let incremental = wm.aged_utilities(now_ms, alpha, res);
        assert_eq!(oracle.len(), incremental.len());
        for (r, i) in oracle.iter().zip(&incremental) {
            assert_eq!(r.0, i.0);
            assert_eq!(r.1.to_bits(), i.1.to_bits(), "aged utility of {}", r.0);
        }
        let ref_means = reference::timestep_means(wm, res);
        let inc_means = wm.timestep_means(res);
        assert_eq!(ref_means.len(), inc_means.len());
        for (ts, m) in &ref_means {
            assert_eq!(m.to_bits(), inc_means[ts].to_bits(), "mean of ts {ts}");
        }
        let ref_snap = reference::utility_snapshot(wm, res);
        let inc_snap = wm.utility_snapshot(res);
        for a in oracle.iter().map(|&(a, _)| a).chain(probes.iter().copied()) {
            let r = ref_snap.rank(&a);
            let i = inc_snap.rank(&a);
            assert_eq!(r.atom_utility.to_bits(), i.atom_utility.to_bits(), "{a}");
            assert_eq!(r.timestep_mean.to_bits(), i.timestep_mean.to_bits(), "{a}");
        }
    }

    proptest! {
        /// The clamped-age sorted-prefix index agrees with the exact
        /// per-atom fold (within float re-association error), and
        /// best_timestep stays idempotent, for workloads whose enqueue times
        /// straddle `now` — the degenerate case that used to pay an O(n)
        /// fold on every call.
        #[test]
        fn clamped_age_index_matches_exact_fold(
            subs in proptest::collection::vec(
                (0u32..4, 0u64..8, 1u32..100, 0u32..2_000), 1..40),
            now in 0.0f64..1_500.0,
            alpha in 0.0f64..=1.0,
        ) {
            let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
            for (i, &(t, m, c, at)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: i as QueryId + 1,
                    atom: AtomId::new(t, MortonKey(m)),
                    positions: c,
                    enqueued_ms: at as f64,
                }]);
            }
            let none = FixedResidency::none();
            let first = wm.best_timestep(now, alpha, &none);
            prop_assert_eq!(first, wm.best_timestep(now, alpha, &none));
            for t in 0..4u32 {
                let atoms = wm.atoms_in_timestep(t);
                if atoms.is_empty() {
                    continue;
                }
                wm.ensure_age_index(t);
                let exact: f64 = atoms.iter().map(|a| wm.age(a, now)).sum();
                let fast = wm.clamped_age_sum(t, now);
                prop_assert!(
                    (fast - exact).abs() <= 1e-9 * exact.abs().max(1.0),
                    "ts {}: fast {} vs exact {}", t, fast, exact
                );
            }
        }
    }

    proptest! {
        /// Interleaved enqueue / take_atom / completion / residency-flip /
        /// clock-advance sequences: the delta layer's utilities, timestep
        /// means and URC snapshot match the full-scan [`reference`] oracle
        /// bit for bit after every step — under both the tracked
        /// (epoch + change log) and the conservative residency protocols.
        #[test]
        fn delta_layer_matches_reference_under_interleaving(
            tracked in 0u32..2,
            alpha in 0.0f64..=1.0,
            ops in proptest::collection::vec(
                // (kind, ts, morton, positions): kind 0-4 enqueue (biased),
                // 5-6 take some pending atom (+ note completions), 7-8 flip
                // residency, 9 flip a pending atom specifically, 10-11
                // advance the clock with no state change.
                (0u32..12, 0u32..4, 0u64..12, 1u32..200), 1..60),
        ) {
            let mut wm = WorkloadManager::new(MetricParams {
                atom_read_ms: 100.0,
                position_compute_ms: 1.0,
                atoms_per_timestep: 16,
            });
            let mut res = FlipResidency::new(tracked == 1);
            let probes = [AtomId::new(90, MortonKey(0)), AtomId::new(0, MortonKey(999))];
            let mut next_query: QueryId = 1;
            let mut clock_bump = 0.0f64;
            for (i, &(kind, ts, m, positions)) in ops.iter().enumerate() {
                let now_ms = (i as f64 + 1.0) * 50.0 + clock_bump;
                let atom = AtomId::new(ts, MortonKey(m));
                match kind {
                    0..=4 => {
                        wm.enqueue([SubQuery {
                            query: next_query,
                            atom,
                            positions,
                            enqueued_ms: now_ms - (positions as f64 % 37.0),
                        }]);
                        next_query += 1;
                    }
                    5 | 6 => {
                        // Take the current best atom, like a scheduler would,
                        // and route the completions back as deltas.
                        if let Some((best, _)) = wm.best_atom(now_ms, alpha, &res) {
                            let (_, done) = wm.take_atom(&best);
                            for q in done {
                                wm.note_completed(q);
                            }
                        }
                    }
                    7 | 8 => res.flip(atom),
                    9 => {
                        if let Some(&a) = wm.atoms_in_timestep(ts).first() {
                            res.flip(a);
                        }
                    }
                    _ => clock_bump += 500.0,
                }
                assert_equiv(&mut wm, &res, now_ms, alpha, &probes);
            }
        }

        /// The incremental coarse/fine decomposition agrees with the
        /// reference: the per-timestep atom lists partition aged_utilities,
        /// and best_atom is the reference argmax.
        #[test]
        fn incremental_two_level_agrees_with_reference(
            alpha in 0.0f64..=1.0,
            subs in proptest::collection::vec((0u32..5, 0u64..10, 1u32..300), 1..50),
        ) {
            let mut wm = WorkloadManager::new(MetricParams {
                atom_read_ms: 80.0,
                position_compute_ms: 0.05,
                atoms_per_timestep: 16,
            });
            for (i, &(ts, m, positions)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: i as QueryId + 1,
                    atom: AtomId::new(ts, MortonKey(m)),
                    positions,
                    enqueued_ms: i as f64 * 3.0,
                }]);
            }
            let none = FixedResidency::none();
            let now_ms = 1e4;
            let oracle = reference::aged_utilities(&wm, now_ms, alpha, &none);
            let by_atom: HashMap<AtomId, u64> =
                oracle.iter().map(|&(a, u)| (a, u.to_bits())).collect();
            let mut seen = 0usize;
            for ts in 0..5u32 {
                for (a, u) in wm.timestep_aged_utilities(ts, now_ms, alpha, &none) {
                    prop_assert_eq!(by_atom[&a], u.to_bits());
                    seen += 1;
                }
            }
            prop_assert_eq!(seen, by_atom.len(), "timestep lists partition the atoms");
            let ref_best = oracle
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .unwrap();
            let fast = wm.best_atom(now_ms, alpha, &none).unwrap();
            prop_assert_eq!(fast.0, ref_best.0);
            prop_assert_eq!(fast.1.to_bits(), ref_best.1.to_bits());
        }
    }
}
