//! Per-atom workload queues and the workload-throughput metrics.
//!
//! "A workload Wⱼⁱ represents the set of positions from Qᵢ that are contained
//! within Aⱼ and the workload queue for an atom Aⱼ consists of the union of
//! Wⱼ¹, Wⱼ², …" (§III-C). The [`WorkloadManager`] owns these queues and
//! computes:
//!
//! * **Eq. 1** — workload throughput
//!   `U_t(i) = ΣW / (T_b·φ(i) + T_m·ΣW)`, where φ(i) is 0 when the atom is
//!   cached and 1 otherwise;
//! * **Eq. 2** — the aged metric `U_e(i) = U_t(i)·(1−α) + E(i)·α`. The paper
//!   combines a throughput (positions/ms) with an age (ms) directly, leaving
//!   the trade-off scale to the tuning of α; to keep α ∈ \[0, 1\]
//!   interpretable across cost models we normalize each term by its current
//!   maximum over all pending atoms before blending (documented deviation —
//!   DESIGN.md).
//!
//! The manager also produces the [`UtilitySnapshot`] that URC (the
//! workload-aware cache policy of §V-B) consumes as its ranking oracle.

use crate::batch::{AtomBatch, SubQuery};
use crate::policy::Residency;
use jaws_cache::{UtilityOracle, UtilityRank};
use jaws_morton::AtomId;
use jaws_workload::QueryId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The cost constants of Eq. 1 plus the geometry the per-timestep mean is
/// taken over.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetricParams {
    /// T_b: estimated time to read one atom from disk, ms.
    pub atom_read_ms: f64,
    /// T_m: estimated computation cost per position, ms.
    pub position_compute_ms: f64,
    /// Atoms per timestep (4096 in production). §V computes the coarse-level
    /// selection "based on the mean workload throughput metric computed over
    /// all atoms in a time step" — including the workload-free ones — so the
    /// mean needs the full atom count, not just the pending atoms.
    pub atoms_per_timestep: u64,
}

impl MetricParams {
    /// Matches `CostModel::paper_testbed()` and the production 16³ atom grid.
    pub fn paper_testbed() -> Self {
        MetricParams {
            atom_read_ms: 80.0,
            position_compute_ms: 0.05,
            atoms_per_timestep: 4096,
        }
    }
}

/// One atom's workload queue.
#[derive(Debug, Default, Clone)]
struct AtomQueue {
    subs: Vec<SubQuery>,
    /// Cached ΣW (total positions) — the numerator of Eq. 1.
    positions: u64,
    /// Enqueue time of the oldest sub-query, ms.
    oldest_ms: f64,
}

/// The workload manager: per-atom queues plus per-query bookkeeping.
#[derive(Debug)]
pub struct WorkloadManager {
    params: MetricParams,
    queues: HashMap<AtomId, AtomQueue>,
    /// Remaining sub-query count per query (for completion detection).
    pending_subs: HashMap<QueryId, usize>,
    total_subs: usize,
}

impl WorkloadManager {
    /// Creates an empty manager.
    pub fn new(params: MetricParams) -> Self {
        WorkloadManager {
            params,
            queues: HashMap::new(),
            pending_subs: HashMap::new(),
            total_subs: 0,
        }
    }

    /// Cost constants in use.
    pub fn params(&self) -> MetricParams {
        self.params
    }

    /// Adds sub-queries to their atoms' queues.
    pub fn enqueue(&mut self, subs: impl IntoIterator<Item = SubQuery>) {
        for s in subs {
            debug_assert!(s.positions > 0, "empty sub-query");
            let q = self.queues.entry(s.atom).or_insert_with(|| AtomQueue {
                subs: Vec::new(),
                positions: 0,
                oldest_ms: s.enqueued_ms,
            });
            q.oldest_ms = q.oldest_ms.min(s.enqueued_ms);
            q.positions += s.positions as u64;
            q.subs.push(s);
            *self.pending_subs.entry(s.query).or_insert(0) += 1;
            self.total_subs += 1;
        }
    }

    /// True if no sub-queries are pending.
    pub fn is_empty(&self) -> bool {
        self.total_subs == 0
    }

    /// Number of pending sub-queries.
    pub fn pending_subqueries(&self) -> usize {
        self.total_subs
    }

    /// Number of atoms with non-empty queues.
    pub fn pending_atoms(&self) -> usize {
        self.queues.len()
    }

    /// Pending positions on one atom (ΣW of Eq. 1), zero if queue-less.
    pub fn atom_positions(&self, atom: &AtomId) -> u64 {
        self.queues.get(atom).map_or(0, |q| q.positions)
    }

    /// Eq. 1 for one atom. `resident` is φ(i) = 0 (cached) / 1 (on disk).
    pub fn workload_throughput(&self, atom: &AtomId, resident: bool) -> f64 {
        let Some(q) = self.queues.get(atom) else {
            return 0.0;
        };
        let w = q.positions as f64;
        let phi = if resident { 0.0 } else { 1.0 };
        let denom = self.params.atom_read_ms * phi + self.params.position_compute_ms * w;
        if denom <= 0.0 {
            // Resident atom with zero compute cost: treat as infinitely cheap;
            // rank it by raw workload so bigger queues still win.
            return w * 1e9;
        }
        w / denom
    }

    /// Age E(i) of the oldest sub-query on one atom, ms.
    pub fn age(&self, atom: &AtomId, now_ms: f64) -> f64 {
        self.queues
            .get(atom)
            .map_or(0.0, |q| (now_ms - q.oldest_ms).max(0.0))
    }

    /// Eq. 2 over every pending atom: `(atom, U_e)` with both terms
    /// max-normalized before blending. `alpha = 0` is pure contention order,
    /// `alpha = 1` pure arrival (age) order.
    pub fn aged_utilities(
        &self,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Vec<(AtomId, f64)> {
        debug_assert!((0.0..=1.0).contains(&alpha));
        let raw: Vec<(AtomId, f64, f64)> = self
            .queues
            .keys()
            .map(|&a| {
                (
                    a,
                    self.workload_throughput(&a, residency.is_resident(&a)),
                    self.age(&a, now_ms),
                )
            })
            .collect();
        let max_u = raw.iter().map(|&(_, u, _)| u).fold(0.0f64, f64::max);
        let max_e = raw.iter().map(|&(_, _, e)| e).fold(0.0f64, f64::max);
        raw.into_iter()
            .map(|(a, u, e)| {
                let un = if max_u > 0.0 { u / max_u } else { 0.0 };
                let en = if max_e > 0.0 { e / max_e } else { 0.0 };
                (a, un * (1.0 - alpha) + en * alpha)
            })
            .collect()
    }

    /// Mean workload throughput per timestep over *all* of that timestep's
    /// atoms (workload-free atoms contribute zero) — the coarse level of
    /// two-level scheduling (§V) and the cross-timestep eviction order of
    /// URC. Because every timestep has the same atom count, this ranks
    /// timesteps by total pending utility, which "tends to yield higher
    /// workload density".
    pub fn timestep_means(&self, residency: &dyn Residency) -> HashMap<u32, f64> {
        let mut sum: HashMap<u32, f64> = HashMap::new();
        for &a in self.queues.keys() {
            let u = self.workload_throughput(&a, residency.is_resident(&a));
            *sum.entry(a.timestep).or_insert(0.0) += u;
        }
        let n = self.params.atoms_per_timestep.max(1) as f64;
        sum.into_iter().map(|(t, s)| (t, s / n)).collect()
    }

    /// Removes and returns the whole queue of one atom, plus the queries that
    /// now have no pending sub-queries anywhere (they complete with this
    /// batch).
    ///
    /// # Panics
    ///
    /// Panics if the atom has no queue — schedulers must only take atoms they
    /// observed as pending.
    pub fn take_atom(&mut self, atom: &AtomId) -> (AtomBatch, Vec<QueryId>) {
        let q = self
            .queues
            .remove(atom)
            .unwrap_or_else(|| panic!("take_atom on empty queue {atom}"));
        self.total_subs -= q.subs.len();
        let mut completing = Vec::new();
        for s in &q.subs {
            let left = self
                .pending_subs
                .get_mut(&s.query)
                .expect("sub-query of a tracked query");
            *left -= 1;
            if *left == 0 {
                self.pending_subs.remove(&s.query);
                completing.push(s.query);
            }
        }
        (
            AtomBatch {
                atom: *atom,
                subqueries: q.subs,
            },
            completing,
        )
    }

    /// Pending atoms of one timestep.
    pub fn atoms_in_timestep(&self, timestep: u32) -> Vec<AtomId> {
        self.queues
            .keys()
            .filter(|a| a.timestep == timestep)
            .copied()
            .collect()
    }

    /// Builds the URC oracle snapshot: every pending atom's Eq. 1 value plus
    /// its timestep's mean. Atoms without pending work rank
    /// [`UtilityRank::ZERO`] and are evicted first.
    pub fn utility_snapshot(&self, residency: &dyn Residency) -> UtilitySnapshot {
        let means = self.timestep_means(residency);
        let atoms = self
            .queues
            .keys()
            .map(|&a| {
                let u = self.workload_throughput(&a, residency.is_resident(&a));
                (a, u)
            })
            .collect();
        UtilitySnapshot { atoms, means }
    }
}

/// A point-in-time ranking of pending atoms, consumed by the URC cache policy
/// through the [`UtilityOracle`] interface.
#[derive(Debug, Clone)]
pub struct UtilitySnapshot {
    atoms: HashMap<AtomId, f64>,
    means: HashMap<u32, f64>,
}

impl UtilitySnapshot {
    /// A snapshot with no pending workload: every atom ranks
    /// [`UtilityRank::ZERO`], so URC degrades to plain LRU. Used by
    /// schedulers that keep no workload queues (NoShare).
    pub fn empty() -> Self {
        UtilitySnapshot {
            atoms: HashMap::new(),
            means: HashMap::new(),
        }
    }
}

impl UtilityOracle<AtomId> for UtilitySnapshot {
    fn rank(&self, key: &AtomId) -> UtilityRank {
        match self.atoms.get(key) {
            Some(&u) => UtilityRank {
                timestep_mean: self.means.get(&key.timestep).copied().unwrap_or(0.0),
                atom_utility: u,
            },
            None => UtilityRank::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::FixedResidency;
    use jaws_morton::MortonKey;

    fn sub(query: QueryId, t: u32, m: u64, positions: u32, at: f64) -> SubQuery {
        SubQuery {
            query,
            atom: AtomId::new(t, MortonKey(m)),
            positions,
            enqueued_ms: at,
        }
    }

    fn params() -> MetricParams {
        MetricParams {
            atom_read_ms: 100.0,
            position_compute_ms: 1.0,
            atoms_per_timestep: 64,
        }
    }

    #[test]
    fn eq1_favors_longer_queues() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 10, 0.0), sub(2, 0, 1, 100, 0.0)]);
        let none = FixedResidency::none();
        let a0 = AtomId::new(0, MortonKey(0));
        let a1 = AtomId::new(0, MortonKey(1));
        let u0 = wm.workload_throughput(&a0, none.is_resident(&a0));
        let u1 = wm.workload_throughput(&a1, none.is_resident(&a1));
        // 10/(100+10) vs 100/(100+100).
        assert!((u0 - 10.0 / 110.0).abs() < 1e-12);
        assert!((u1 - 0.5).abs() < 1e-12);
        assert!(u1 > u0, "longer queue amortizes the read better");
    }

    #[test]
    fn eq1_phi_zero_for_resident_atoms() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 10, 0.0)]);
        let a0 = AtomId::new(0, MortonKey(0));
        let u_disk = wm.workload_throughput(&a0, false);
        let u_mem = wm.workload_throughput(&a0, true);
        assert!((u_mem - 1.0).abs() < 1e-12, "pure compute: W/(T_m·W) = 1/T_m");
        assert!(u_mem > u_disk, "cached atoms rank higher (Eq. 1 φ)");
    }

    #[test]
    fn age_tracks_oldest_subquery() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 5, 100.0)]);
        wm.enqueue([sub(2, 0, 0, 5, 900.0)]);
        let a0 = AtomId::new(0, MortonKey(0));
        assert_eq!(wm.age(&a0, 1000.0), 900.0, "oldest wins");
        assert_eq!(wm.age(&AtomId::new(0, MortonKey(9)), 1000.0), 0.0);
    }

    #[test]
    fn aged_metric_interpolates_between_contention_and_age() {
        let mut wm = WorkloadManager::new(params());
        // Atom 0: huge queue, fresh. Atom 1: tiny queue, ancient.
        wm.enqueue([sub(1, 0, 0, 1000, 990.0), sub(2, 0, 1, 1, 0.0)]);
        let none = FixedResidency::none();
        let rank_of = |alpha: f64| {
            let mut u = wm.aged_utilities(1000.0, alpha, &none);
            u.sort_by(|a, b| b.1.total_cmp(&a.1));
            u[0].0
        };
        assert_eq!(rank_of(0.0), AtomId::new(0, MortonKey(0)), "contention");
        assert_eq!(rank_of(1.0), AtomId::new(0, MortonKey(1)), "arrival order");
    }

    #[test]
    fn take_atom_reports_completions() {
        let mut wm = WorkloadManager::new(params());
        // Query 1 spans two atoms; query 2 one atom.
        wm.enqueue([sub(1, 0, 0, 5, 0.0), sub(1, 0, 1, 5, 0.0), sub(2, 0, 0, 7, 0.0)]);
        assert_eq!(wm.pending_subqueries(), 3);
        let (batch, done) = wm.take_atom(&AtomId::new(0, MortonKey(0)));
        assert_eq!(batch.subqueries.len(), 2);
        assert_eq!(batch.positions(), 12);
        assert_eq!(done, vec![2], "query 2 fully served; query 1 still pending");
        let (_, done) = wm.take_atom(&AtomId::new(0, MortonKey(1)));
        assert_eq!(done, vec![1]);
        assert!(wm.is_empty());
    }

    #[test]
    #[should_panic(expected = "take_atom on empty queue")]
    fn take_atom_requires_a_queue() {
        let mut wm = WorkloadManager::new(params());
        wm.take_atom(&AtomId::new(0, MortonKey(0)));
    }

    #[test]
    fn timestep_means_aggregate_per_timestep() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([
            sub(1, 0, 0, 100, 0.0),
            sub(2, 0, 1, 100, 0.0),
            sub(3, 5, 0, 10, 0.0),
        ]);
        let none = FixedResidency::none();
        let means = wm.timestep_means(&none);
        assert_eq!(means.len(), 2);
        assert!(means[&0] > means[&5], "denser timestep has higher mean");
    }

    #[test]
    fn utility_snapshot_feeds_urc() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 100, 0.0), sub(2, 3, 1, 5, 0.0)]);
        let none = FixedResidency::none();
        let snap = wm.utility_snapshot(&none);
        let hot = snap.rank(&AtomId::new(0, MortonKey(0)));
        let cold = snap.rank(&AtomId::new(3, MortonKey(1)));
        let absent = snap.rank(&AtomId::new(7, MortonKey(7)));
        assert!(hot.atom_utility > cold.atom_utility);
        assert!(hot.timestep_mean > cold.timestep_mean);
        assert_eq!(absent.atom_utility, 0.0);
        // URC would evict `absent` first, then `cold`, then `hot`.
        assert_eq!(
            absent.cmp_for_eviction(&cold),
            std::cmp::Ordering::Less
        );
        assert_eq!(cold.cmp_for_eviction(&hot), std::cmp::Ordering::Less);
    }

    #[test]
    fn enqueue_merges_same_atom_across_queries() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 4, 10, 0.0)]);
        wm.enqueue([sub(2, 0, 4, 20, 5.0)]);
        assert_eq!(wm.pending_atoms(), 1);
        assert_eq!(wm.atom_positions(&AtomId::new(0, MortonKey(4))), 30);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::batch::SubQuery;
    use crate::policy::test_support::FixedResidency;
    use jaws_morton::MortonKey;
    use proptest::prelude::*;

    proptest! {
        /// Conservation: every enqueued sub-query is returned by exactly one
        /// take_atom, completions fire exactly once per query, and counters
        /// never go negative.
        #[test]
        fn enqueue_take_conservation(
            subs in proptest::collection::vec(
                (1u64..20, 0u32..4, 0u64..16, 1u32..50), 1..120),
        ) {
            let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
            let mut expected_per_query: HashMap<QueryId, usize> = HashMap::new();
            for (i, &(q, t, m, c)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: q,
                    atom: AtomId::new(t, MortonKey(m)),
                    positions: c,
                    enqueued_ms: i as f64,
                }]);
                *expected_per_query.entry(q).or_default() += 1;
            }
            prop_assert_eq!(wm.pending_subqueries(), subs.len());
            let none = FixedResidency::none();
            let mut taken = 0usize;
            let mut completed: Vec<QueryId> = Vec::new();
            while !wm.is_empty() {
                let atoms = wm.aged_utilities(1e6, 0.3, &none);
                prop_assert!(!atoms.is_empty());
                let (atom, _) = atoms[0];
                let (batch, done) = wm.take_atom(&atom);
                prop_assert!(!batch.subqueries.is_empty());
                taken += batch.subqueries.len();
                completed.extend(done);
            }
            prop_assert_eq!(taken, subs.len());
            completed.sort_unstable();
            let mut expect: Vec<QueryId> = expected_per_query.keys().copied().collect();
            expect.sort_unstable();
            prop_assert_eq!(completed, expect, "each query completes exactly once");
        }

        /// Eq. 1 monotonicity: more pending positions never lower the metric,
        /// and residency never lowers it either.
        #[test]
        fn metric_monotonicity(w1 in 1u32..10_000, extra in 1u32..10_000) {
            let params = MetricParams::paper_testbed();
            let atom = AtomId::new(0, MortonKey(5));
            let mut a = WorkloadManager::new(params);
            a.enqueue([SubQuery { query: 1, atom, positions: w1, enqueued_ms: 0.0 }]);
            let mut b = WorkloadManager::new(params);
            b.enqueue([SubQuery { query: 1, atom, positions: w1 + extra, enqueued_ms: 0.0 }]);
            prop_assert!(
                b.workload_throughput(&atom, false) >= a.workload_throughput(&atom, false)
            );
            prop_assert!(
                a.workload_throughput(&atom, true) >= a.workload_throughput(&atom, false)
            );
        }

        /// Aged utilities stay within [0, 1] after normalization for any α.
        #[test]
        fn aged_utilities_are_normalized(
            alpha in 0.0f64..=1.0,
            subs in proptest::collection::vec((1u64..9, 0u32..3, 0u64..8, 1u32..100), 1..40),
        ) {
            let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
            for (i, &(q, t, m, c)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: q,
                    atom: AtomId::new(t, MortonKey(m)),
                    positions: c,
                    enqueued_ms: i as f64 * 10.0,
                }]);
            }
            let none = FixedResidency::none();
            for (_, u) in wm.aged_utilities(1e5, alpha, &none) {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&u), "utility {u}");
            }
        }
    }
}
