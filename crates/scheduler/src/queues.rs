//! Per-atom workload queues and the workload-throughput metrics.
//!
//! "A workload Wⱼⁱ represents the set of positions from Qᵢ that are contained
//! within Aⱼ and the workload queue for an atom Aⱼ consists of the union of
//! Wⱼ¹, Wⱼ², …" (§III-C). The [`WorkloadManager`] owns these queues and
//! computes:
//!
//! * **Eq. 1** — workload throughput
//!   `U_t(i) = ΣW / (T_b·φ(i) + T_m·ΣW)`, where φ(i) is 0 when the atom is
//!   cached and 1 otherwise;
//! * **Eq. 2** — the aged metric `U_e(i) = U_t(i)·(1−α) + E(i)·α`. The paper
//!   combines a throughput (positions/ms) with an age (ms) directly, leaving
//!   the trade-off scale to the tuning of α; to keep α ∈ \[0, 1\]
//!   interpretable across cost models we normalize each term by its current
//!   maximum over all pending atoms before blending (documented deviation —
//!   DESIGN.md).
//!
//! The manager also produces the [`UtilitySnapshot`] that URC (the
//! workload-aware cache policy of §V-B) consumes as its ranking oracle.
//!
//! # Incremental maintenance
//!
//! Schedulers consult these metrics on every dispatch, but each dispatch
//! changes only a handful of atoms (the batch taken, the residency flips its
//! reads caused, the sub-queries that arrived). The manager therefore keeps:
//!
//! * a cached Eq. 1 value per pending atom (`WorkloadManager::refresh`
//!   recomputes only atoms whose queue or residency changed, driven by the
//!   [`Residency`] change-tracking protocol);
//! * per-timestep aggregates (ΣU, max U, Σoldest, min/max oldest) that the
//!   coarse level of two-level scheduling and the global max-normalizers are
//!   answered from in O(#timesteps);
//! * an [`UtilitySnapshot`] patched in place (shared via `Arc`) instead of
//!   rebuilt per dispatch.
//!
//! Floating-point sums are *refolded* per dirty timestep in sorted-atom
//! order — never drifted with `+=`/`-=` — so every incremental result is
//! bit-for-bit identical to the full-scan reference methods
//! ([`WorkloadManager::aged_utilities`], [`WorkloadManager::timestep_means`],
//! [`WorkloadManager::utility_snapshot`]), which are kept as the oracle the
//! equivalence property tests compare against. The reference methods iterate
//! atoms in sorted order for the same reason.
//!
//! # Total order (determinism)
//!
//! Selection is a total order (lint rules D001/F002): scores compare via
//! `f64::total_cmp` and exact ties fall back to ascending `AtomId`
//! (`(timestep, morton)`), so the chosen atom is a function of queue *state*
//! only — never of enqueue order or map iteration order. Queues live in a
//! `BTreeMap`, which also makes the canonical sorted fold order free.
//! Non-finite metric inputs are debug-asserted and clamped to zero
//! (`finite_or_zero`) so a poisoned cost model cannot make the
//! normalization folds — and with them every comparison — NaN.

use crate::batch::{AtomBatch, SubQuery};
use crate::policy::Residency;
use jaws_cache::{UtilityOracle, UtilityRank};
use jaws_morton::AtomId;
use jaws_workload::QueryId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Clamps a non-finite metric term to zero. A NaN utility or age would
/// propagate through the max-normalizers into *every* atom's Eq. 2 blend and
/// make the ranking incomparable; clamping keeps the order total while the
/// paired `debug_assert` surfaces the broken cost model in tests. Public
/// because report assembly guards derived ratios (e.g. per-node utilization
/// over a zero makespan) with the same rule.
pub fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// The cost constants of Eq. 1 plus the geometry the per-timestep mean is
/// taken over.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetricParams {
    /// T_b: estimated time to read one atom from disk, ms.
    pub atom_read_ms: f64,
    /// T_m: estimated computation cost per position, ms.
    pub position_compute_ms: f64,
    /// Atoms per timestep (4096 in production). §V computes the coarse-level
    /// selection "based on the mean workload throughput metric computed over
    /// all atoms in a time step" — including the workload-free ones — so the
    /// mean needs the full atom count, not just the pending atoms.
    pub atoms_per_timestep: u64,
}

impl MetricParams {
    /// Matches `CostModel::paper_testbed()` and the production 16³ atom grid.
    pub fn paper_testbed() -> Self {
        MetricParams {
            atom_read_ms: 80.0,
            position_compute_ms: 0.05,
            atoms_per_timestep: 4096,
        }
    }
}

/// Eq. 1 for one queue. Shared by the reference and incremental paths so the
/// two can never diverge.
fn eq1(params: &MetricParams, positions: u64, resident: bool) -> f64 {
    debug_assert!(
        params.atom_read_ms.is_finite() && params.position_compute_ms.is_finite(),
        "non-finite cost model: T_b={} T_m={}",
        params.atom_read_ms,
        params.position_compute_ms
    );
    let w = positions as f64;
    let phi = if resident { 0.0 } else { 1.0 };
    let denom = params.atom_read_ms * phi + params.position_compute_ms * w;
    if denom > 0.0 {
        return finite_or_zero(w / denom);
    }
    // Degenerate cost model: a resident atom with zero per-position compute
    // cost (or an all-zero model). An "infinite" throughput sentinel would
    // poison max-normalization — every other atom's normalized utility
    // collapses toward 0 and Eq. 2 degenerates to pure age order. Instead
    // rank the atom as if it still cost half an atom read: finite, monotone
    // in ΣW, and on the same scale as disk atoms (exactly twice the utility
    // of an equally loaded non-resident atom in the T_m → 0 limit).
    let half_read = 0.5 * params.atom_read_ms;
    if half_read > 0.0 {
        finite_or_zero(w / half_read)
    } else {
        w
    }
}

/// Eq. 2 blend of a max-normalized throughput and age. Shared by the
/// reference and incremental paths so the two can never diverge.
fn blend(u: f64, e: f64, max_u: f64, max_e: f64, alpha: f64) -> f64 {
    let un = if max_u > 0.0 { u / max_u } else { 0.0 };
    let en = if max_e > 0.0 { e / max_e } else { 0.0 };
    un * (1.0 - alpha) + en * alpha
}

/// One atom's workload queue.
#[derive(Debug, Default, Clone)]
struct AtomQueue {
    subs: Vec<SubQuery>,
    /// Cached ΣW (total positions) — the numerator of Eq. 1.
    positions: u64,
    /// Enqueue time of the oldest sub-query, ms.
    oldest_ms: f64,
}

/// Per-timestep aggregates, refolded (in sorted-atom order) whenever any atom
/// of the timestep changes. Everything the coarse scheduling level and the
/// global normalizers need is answerable from these in O(#timesteps).
#[derive(Debug, Clone, Copy)]
struct TsAgg {
    /// Σ of cached Eq. 1 values over pending atoms of the timestep.
    sum_u: f64,
    /// max of cached Eq. 1 values.
    max_u: f64,
    /// Pending atom count.
    count: u64,
    /// Σ of per-atom oldest enqueue times, ms.
    sum_oldest: f64,
    /// min/max of per-atom oldest enqueue times, ms.
    min_oldest: f64,
    max_oldest: f64,
    /// Refold generation stamp, for invalidating derived lazy indexes.
    epoch: u64,
}

/// Lazily built per-timestep index for the clamped-age case of
/// [`WorkloadManager::best_timestep`]: oldest enqueue times sorted ascending
/// with their running prefix sums. Lets Σ (now − oldest)⁺ be answered in
/// O(log n) — atoms enqueued at or before `now` contribute through the
/// prefix closed form, later ones contribute exactly zero.
#[derive(Debug, Clone)]
struct AgeIndex {
    /// The [`TsAgg::epoch`] this index was built against.
    epoch: u64,
    /// Per-atom oldest enqueue times, ascending (`total_cmp` order).
    oldest: Vec<f64>,
    /// `prefix[i]` = Σ `oldest[..=i]`, folded in ascending order.
    prefix: Vec<f64>,
}

/// The workload manager: per-atom queues plus per-query bookkeeping.
#[derive(Debug)]
pub struct WorkloadManager {
    params: MetricParams,
    /// Ordered so `keys()` *is* the canonical `(timestep, morton)` fold order.
    queues: BTreeMap<AtomId, AtomQueue>,
    /// Remaining sub-query count per query (for completion detection).
    pending_subs: HashMap<QueryId, usize>,
    total_subs: usize,
    /// Cached Eq. 1 value per pending atom, as of the last [`Self::refresh`].
    u_of: HashMap<AtomId, f64>,
    /// The residency each `u_of` entry was computed with.
    resident_view: HashMap<AtomId, bool>,
    /// Pending atoms per timestep in Morton order — the canonical fold order.
    ts_atoms: BTreeMap<u32, BTreeSet<AtomId>>,
    /// Per-timestep aggregates (lazily refolded).
    ts_aggs: BTreeMap<u32, TsAgg>,
    /// Clamped-age indexes, built on demand (lookup-only, never iterated).
    age_index: HashMap<u32, AgeIndex>,
    /// Refold generation counter feeding [`TsAgg::epoch`].
    refold_epoch: u64,
    /// Atoms whose queue changed since the last refresh.
    dirty_atoms: BTreeSet<AtomId>,
    /// Residency epoch the view is synced to (`None` = never/volatile).
    synced_epoch: Option<u64>,
    /// Arc-backed URC snapshot, patched in place on refresh.
    snapshot: UtilitySnapshot,
}

impl WorkloadManager {
    /// Creates an empty manager.
    pub fn new(params: MetricParams) -> Self {
        WorkloadManager {
            params,
            queues: BTreeMap::new(),
            pending_subs: HashMap::new(),
            total_subs: 0,
            u_of: HashMap::new(),
            resident_view: HashMap::new(),
            ts_atoms: BTreeMap::new(),
            ts_aggs: BTreeMap::new(),
            age_index: HashMap::new(),
            refold_epoch: 0,
            dirty_atoms: BTreeSet::new(),
            synced_epoch: None,
            snapshot: UtilitySnapshot::empty(),
        }
    }

    /// Cost constants in use.
    pub fn params(&self) -> MetricParams {
        self.params
    }

    /// Adds sub-queries to their atoms' queues.
    pub fn enqueue(&mut self, subs: impl IntoIterator<Item = SubQuery>) {
        for s in subs {
            debug_assert!(s.positions > 0, "empty sub-query");
            debug_assert!(s.enqueued_ms.is_finite(), "non-finite enqueue time");
            let q = self.queues.entry(s.atom).or_insert_with(|| AtomQueue {
                subs: Vec::new(),
                positions: 0,
                oldest_ms: s.enqueued_ms,
            });
            q.oldest_ms = q.oldest_ms.min(s.enqueued_ms);
            q.positions += s.positions as u64;
            q.subs.push(s);
            *self.pending_subs.entry(s.query).or_insert(0) += 1;
            self.total_subs += 1;
            self.ts_atoms
                .entry(s.atom.timestep)
                .or_default()
                .insert(s.atom);
            self.dirty_atoms.insert(s.atom);
        }
    }

    /// True if no sub-queries are pending.
    pub fn is_empty(&self) -> bool {
        self.total_subs == 0
    }

    /// Number of pending sub-queries.
    pub fn pending_subqueries(&self) -> usize {
        self.total_subs
    }

    /// Number of atoms with non-empty queues.
    pub fn pending_atoms(&self) -> usize {
        self.queues.len()
    }

    /// Pending positions on one atom (ΣW of Eq. 1), zero if queue-less.
    pub fn atom_positions(&self, atom: &AtomId) -> u64 {
        self.queues.get(atom).map_or(0, |q| q.positions)
    }

    /// Eq. 1 for one atom. `resident` is φ(i) = 0 (cached) / 1 (on disk).
    ///
    /// Cost models with `position_compute_ms = 0` make a resident atom's
    /// denominator vanish; see `eq1` for the finite ranking used instead of
    /// an infinity sentinel.
    pub fn workload_throughput(&self, atom: &AtomId, resident: bool) -> f64 {
        self.queues
            .get(atom)
            .map_or(0.0, |q| eq1(&self.params, q.positions, resident))
    }

    /// Age E(i) of the oldest sub-query on one atom, ms.
    pub fn age(&self, atom: &AtomId, now_ms: f64) -> f64 {
        self.queues
            .get(atom)
            .map_or(0.0, |q| (now_ms - q.oldest_ms).max(0.0))
    }

    /// Pending atoms in sorted `(timestep, morton)` order — the canonical
    /// iteration order of every floating-point fold in this module. Free:
    /// `queues` is a `BTreeMap`, so its keys already iterate in that order.
    fn sorted_pending(&self) -> Vec<AtomId> {
        self.queues.keys().copied().collect()
    }

    /// Eq. 2 over every pending atom: `(atom, U_e)` with both terms
    /// max-normalized before blending. `alpha = 0` is pure contention order,
    /// `alpha = 1` pure arrival (age) order.
    ///
    /// Reference implementation: full scan over every pending atom, in sorted
    /// order. Schedulers use [`Self::best_timestep`] /
    /// [`Self::timestep_aged_utilities`] / [`Self::best_atom`], which answer
    /// from incrementally maintained state; this method is kept as the oracle
    /// the equivalence property tests compare against.
    pub fn aged_utilities(
        &self,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Vec<(AtomId, f64)> {
        debug_assert!((0.0..=1.0).contains(&alpha));
        let raw: Vec<(AtomId, f64, f64)> = self
            .sorted_pending()
            .into_iter()
            .map(|a| {
                (
                    a,
                    self.workload_throughput(&a, residency.is_resident(&a)),
                    self.age(&a, now_ms),
                )
            })
            .collect();
        debug_assert!(
            raw.iter().all(|&(_, u, e)| u.is_finite() && e.is_finite()),
            "non-finite utility/age reached the Eq. 2 normalization fold"
        );
        let max_u = raw
            .iter()
            .map(|&(_, u, _)| finite_or_zero(u))
            .fold(0.0f64, f64::max);
        let max_e = raw
            .iter()
            .map(|&(_, _, e)| finite_or_zero(e))
            .fold(0.0f64, f64::max);
        raw.into_iter()
            .map(|(a, u, e)| (a, blend(u, e, max_u, max_e, alpha)))
            .collect()
    }

    /// Mean workload throughput per timestep over *all* of that timestep's
    /// atoms (workload-free atoms contribute zero) — the coarse level of
    /// two-level scheduling (§V) and the cross-timestep eviction order of
    /// URC. Because every timestep has the same atom count, this ranks
    /// timesteps by total pending utility, which "tends to yield higher
    /// workload density".
    ///
    /// Reference implementation (full scan, sorted fold); the incremental
    /// equivalent is [`Self::timestep_means_incremental`].
    pub fn timestep_means(&self, residency: &dyn Residency) -> BTreeMap<u32, f64> {
        let mut sum: BTreeMap<u32, f64> = BTreeMap::new();
        for a in self.sorted_pending() {
            let u = self.workload_throughput(&a, residency.is_resident(&a));
            *sum.entry(a.timestep).or_insert(0.0) += u;
        }
        let n = self.params.atoms_per_timestep.max(1) as f64;
        sum.into_iter().map(|(t, s)| (t, s / n)).collect()
    }

    /// Removes and returns the whole queue of one atom, plus the queries that
    /// now have no pending sub-queries anywhere (they complete with this
    /// batch).
    ///
    /// # Panics
    ///
    /// Panics if the atom has no queue — schedulers must only take atoms they
    /// observed as pending.
    pub fn take_atom(&mut self, atom: &AtomId) -> (AtomBatch, Vec<QueryId>) {
        // lint: invariant — documented public contract (see # Panics above)
        let q = self
            .queues
            .remove(atom)
            .unwrap_or_else(|| panic!("take_atom on empty queue {atom}"));
        self.total_subs -= q.subs.len();
        if let Some(set) = self.ts_atoms.get_mut(&atom.timestep) {
            set.remove(atom);
            if set.is_empty() {
                self.ts_atoms.remove(&atom.timestep);
            }
        }
        self.dirty_atoms.insert(*atom);
        let mut completing = Vec::new();
        for s in &q.subs {
            // lint: invariant — enqueue() registered every sub-query's query id
            let left = self
                .pending_subs
                .get_mut(&s.query)
                .expect("sub-query of a tracked query");
            *left -= 1;
            if *left == 0 {
                self.pending_subs.remove(&s.query);
                completing.push(s.query);
            }
        }
        (
            AtomBatch {
                atom: *atom,
                subqueries: q.subs,
            },
            completing,
        )
    }

    /// Pending atoms of one timestep.
    pub fn atoms_in_timestep(&self, timestep: u32) -> Vec<AtomId> {
        self.ts_atoms
            .get(&timestep)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Builds the URC oracle snapshot: every pending atom's Eq. 1 value plus
    /// its timestep's mean. Atoms without pending work rank
    /// [`UtilityRank::ZERO`] and are evicted first.
    ///
    /// Reference implementation (full rebuild); schedulers use
    /// [`Self::utility_snapshot_incremental`].
    pub fn utility_snapshot(&self, residency: &dyn Residency) -> UtilitySnapshot {
        let means: HashMap<u32, f64> = self.timestep_means(residency).into_iter().collect();
        let atoms = self
            .sorted_pending()
            .into_iter()
            .map(|a| {
                let u = self.workload_throughput(&a, residency.is_resident(&a));
                (a, u)
            })
            .collect();
        UtilitySnapshot {
            atoms: Arc::new(atoms),
            means: Arc::new(means),
        }
    }

    // ---- incremental path -------------------------------------------------

    /// Brings cached per-atom metrics, per-timestep aggregates and the URC
    /// snapshot up to date, recomputing only what changed: atoms with queue
    /// changes since the last refresh, plus atoms whose residency flipped
    /// (discovered through the [`Residency`] change-tracking protocol, or by
    /// a full residency re-check when the source is untracked/volatile).
    fn refresh(&mut self, residency: &dyn Residency) {
        // 1. Residency sync: find pending atoms whose φ changed.
        let epoch = residency.residency_epoch();
        let in_sync = matches!((epoch, self.synced_epoch), (Some(e), Some(s)) if e == s);
        if !in_sync {
            let deltas = match self.synced_epoch {
                Some(since) if epoch.is_some() => residency.residency_changes_since(since),
                _ => None,
            };
            match deltas {
                Some(changes) => {
                    for (atom, now_res) in changes {
                        if self.queues.contains_key(&atom)
                            && self.resident_view.get(&atom) != Some(&now_res)
                        {
                            self.dirty_atoms.insert(atom);
                        }
                    }
                }
                None => {
                    // Untracked source or truncated log: re-check every
                    // pending atom (cheap boolean probe, no metric work for
                    // atoms that did not flip).
                    for &atom in self.queues.keys() {
                        if self.resident_view.get(&atom).copied()
                            != Some(residency.is_resident(&atom))
                        {
                            self.dirty_atoms.insert(atom);
                        }
                    }
                }
            }
            self.synced_epoch = epoch;
        }
        if self.dirty_atoms.is_empty() {
            return;
        }
        // 2. Recompute dirty atoms (and drop taken ones).
        let params = self.params;
        let mut dirty_ts: BTreeSet<u32> = BTreeSet::new();
        let atoms_mut = Arc::make_mut(&mut self.snapshot.atoms);
        for &atom in &self.dirty_atoms {
            dirty_ts.insert(atom.timestep);
            if let Some(q) = self.queues.get(&atom) {
                let res = residency.is_resident(&atom);
                let u = eq1(&params, q.positions, res);
                self.resident_view.insert(atom, res);
                self.u_of.insert(atom, u);
                atoms_mut.insert(atom, u);
            } else {
                self.resident_view.remove(&atom);
                self.u_of.remove(&atom);
                atoms_mut.remove(&atom);
            }
        }
        self.dirty_atoms.clear();
        // 3. Refold dirty timesteps in sorted-atom order — a full refold, not
        // a `+=`/`-=` adjustment, so the sums are bitwise identical to the
        // reference full-scan fold.
        let means_mut = Arc::make_mut(&mut self.snapshot.means);
        let n = params.atoms_per_timestep.max(1) as f64;
        self.refold_epoch += 1;
        for &ts in &dirty_ts {
            match self.ts_atoms.get(&ts) {
                Some(set) => {
                    let mut agg = TsAgg {
                        sum_u: 0.0,
                        max_u: 0.0,
                        count: 0,
                        sum_oldest: 0.0,
                        min_oldest: f64::INFINITY,
                        max_oldest: f64::NEG_INFINITY,
                        epoch: self.refold_epoch,
                    };
                    for a in set {
                        let u = self.u_of[a];
                        let oldest = self.queues[a].oldest_ms;
                        agg.sum_u += u;
                        agg.max_u = agg.max_u.max(u);
                        agg.count += 1;
                        agg.sum_oldest += oldest;
                        agg.min_oldest = agg.min_oldest.min(oldest);
                        agg.max_oldest = agg.max_oldest.max(oldest);
                    }
                    self.ts_aggs.insert(ts, agg);
                    means_mut.insert(ts, agg.sum_u / n);
                }
                None => {
                    self.ts_aggs.remove(&ts);
                    self.age_index.remove(&ts);
                    means_mut.remove(&ts);
                }
            }
        }
    }

    /// Global max-normalizers of Eq. 2 — `(max U_t, max E)` over all pending
    /// atoms — answered from the per-timestep aggregates in O(#timesteps).
    fn normalizers(&self, now_ms: f64) -> (f64, f64) {
        let mut max_u = 0.0f64;
        let mut min_oldest = f64::INFINITY;
        for agg in self.ts_aggs.values() {
            max_u = max_u.max(agg.max_u);
            min_oldest = min_oldest.min(agg.min_oldest);
        }
        let max_e = if min_oldest.is_finite() {
            (now_ms - min_oldest).max(0.0)
        } else {
            0.0
        };
        (max_u, max_e)
    }

    /// Lazily (re)builds the clamped-age index for one timestep. Only
    /// degenerate timesteps — some atom enqueued "after" the query's
    /// `now_ms` — ever pay for the O(n log n) build; the index is reused
    /// across calls until the timestep's aggregate refolds.
    fn ensure_age_index(&mut self, ts: u32) {
        let Some(agg) = self.ts_aggs.get(&ts) else {
            self.age_index.remove(&ts);
            return;
        };
        if self
            .age_index
            .get(&ts)
            .is_some_and(|ix| ix.epoch == agg.epoch)
        {
            return;
        }
        // A timestep with an aggregate always has pending atoms.
        let mut oldest: Vec<f64> = self.ts_atoms[&ts]
            .iter()
            .map(|a| self.queues[a].oldest_ms)
            .collect();
        oldest.sort_by(|a, b| a.total_cmp(b));
        let mut prefix = Vec::with_capacity(oldest.len());
        let mut s = 0.0f64;
        for &o in &oldest {
            s += o;
            prefix.push(s);
        }
        self.age_index.insert(
            ts,
            AgeIndex {
                epoch: agg.epoch,
                oldest,
                prefix,
            },
        );
    }

    /// Σ (now − oldest)⁺ over one timestep's pending atoms, answered from the
    /// [`AgeIndex`] in O(log n): atoms enqueued at or before `now_ms`
    /// contribute through the prefix closed form, later ones exactly zero.
    /// Requires [`Self::ensure_age_index`] to have run for `ts`.
    fn clamped_age_sum(&self, ts: u32, now_ms: f64) -> f64 {
        let ix = &self.age_index[&ts];
        let cut = ix.oldest.partition_point(|&o| o <= now_ms);
        if cut == 0 {
            0.0
        } else {
            cut as f64 * now_ms - ix.prefix[cut - 1]
        }
    }

    /// Coarse level of two-level scheduling: the timestep with the highest
    /// summed aged utility (equivalently, the highest mean over its fixed
    /// atom count). Ties prefer the smaller timestep. O(#timesteps) after an
    /// O(Δ) refresh.
    pub fn best_timestep(
        &mut self,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Option<u32> {
        debug_assert!((0.0..=1.0).contains(&alpha));
        self.refresh(residency);
        // Degenerate timesteps (some atom enqueued "after" now_ms, so ages
        // clamp) answer from a lazily built sorted-prefix index instead of
        // an O(n) exact fold on every call.
        let degenerate: Vec<u32> = self
            .ts_aggs
            .iter()
            .filter(|&(_, agg)| now_ms < agg.max_oldest)
            .map(|(&ts, _)| ts)
            .collect();
        for ts in degenerate {
            self.ensure_age_index(ts);
        }
        let (max_u, max_e) = self.normalizers(now_ms);
        let mut best: Option<(u32, f64)> = None;
        for (&ts, agg) in &self.ts_aggs {
            let sum_e = if now_ms >= agg.max_oldest {
                agg.count as f64 * now_ms - agg.sum_oldest
            } else {
                self.clamped_age_sum(ts, now_ms)
            };
            let su = if max_u > 0.0 { agg.sum_u / max_u } else { 0.0 };
            let se = if max_e > 0.0 { sum_e / max_e } else { 0.0 };
            let score = su * (1.0 - alpha) + se * alpha;
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((ts, score));
            }
        }
        best.map(|(ts, _)| ts)
    }

    /// Fine level of two-level scheduling: Eq. 2 for every pending atom of
    /// one timestep, in Morton order. Per-atom values are bitwise identical
    /// to the corresponding [`Self::aged_utilities`] entries.
    pub fn timestep_aged_utilities(
        &mut self,
        timestep: u32,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Vec<(AtomId, f64)> {
        debug_assert!((0.0..=1.0).contains(&alpha));
        self.refresh(residency);
        let (max_u, max_e) = self.normalizers(now_ms);
        let Some(set) = self.ts_atoms.get(&timestep) else {
            return Vec::new();
        };
        set.iter()
            .map(|a| {
                let e = (now_ms - self.queues[a].oldest_ms).max(0.0);
                (*a, blend(self.u_of[a], e, max_u, max_e, alpha))
            })
            .collect()
    }

    /// Eq. 2 over every pending atom, from cached state — same contract as
    /// the reference [`Self::aged_utilities`] (modulo output order, which
    /// here is always sorted). The output is O(n) by definition; schedulers
    /// that only need an argmax use [`Self::best_atom`] instead.
    pub fn aged_utilities_incremental(
        &mut self,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Vec<(AtomId, f64)> {
        debug_assert!((0.0..=1.0).contains(&alpha));
        self.refresh(residency);
        let (max_u, max_e) = self.normalizers(now_ms);
        let mut out = Vec::with_capacity(self.queues.len());
        for set in self.ts_atoms.values() {
            for a in set {
                let e = (now_ms - self.queues[a].oldest_ms).max(0.0);
                out.push((*a, blend(self.u_of[a], e, max_u, max_e, alpha)));
            }
        }
        out
    }

    /// The single pending atom with the highest aged utility (ties prefer
    /// the smaller atom id) — LifeRaft's contention-order pick. Timesteps are
    /// visited in descending upper-bound order and pruned once no remaining
    /// timestep can beat the incumbent, so the common case inspects only the
    /// hottest timestep's atoms.
    pub fn best_atom(
        &mut self,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Option<(AtomId, f64)> {
        debug_assert!((0.0..=1.0).contains(&alpha));
        self.refresh(residency);
        let (max_u, max_e) = self.normalizers(now_ms);
        // blend() is monotone in both terms, so a timestep's best atom is
        // bounded by blending its per-timestep maxima.
        let mut order: Vec<(f64, u32)> = self
            .ts_aggs
            .iter()
            .map(|(&ts, agg)| {
                let e_ub = (now_ms - agg.min_oldest).max(0.0);
                (blend(agg.max_u, e_ub, max_u, max_e, alpha), ts)
            })
            .collect();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut best: Option<(AtomId, f64)> = None;
        for &(ub, ts) in &order {
            if let Some((_, bs)) = best {
                // Strict: an exact tie with the bound could still hide an
                // atom with a smaller id.
                if bs > ub {
                    break;
                }
            }
            for a in &self.ts_atoms[&ts] {
                let e = (now_ms - self.queues[a].oldest_ms).max(0.0);
                let score = blend(self.u_of[a], e, max_u, max_e, alpha);
                // Total order: (score via total_cmp, then smaller AtomId).
                let better = match best {
                    None => true,
                    Some((ba, bs)) => match score.total_cmp(&bs) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => *a < ba,
                        std::cmp::Ordering::Less => false,
                    },
                };
                if better {
                    best = Some((*a, score));
                }
            }
        }
        best
    }

    /// The URC oracle snapshot from incrementally maintained state: an O(Δ)
    /// refresh followed by an O(1) `Arc` clone. Bitwise identical to the
    /// reference [`Self::utility_snapshot`].
    pub fn utility_snapshot_incremental(&mut self, residency: &dyn Residency) -> UtilitySnapshot {
        self.refresh(residency);
        self.snapshot.clone()
    }

    /// Per-timestep means from incrementally maintained state. Bitwise
    /// identical to the reference [`Self::timestep_means`].
    pub fn timestep_means_incremental(&mut self, residency: &dyn Residency) -> BTreeMap<u32, f64> {
        self.refresh(residency);
        // The snapshot map is keyed storage (never iterated for decisions);
        // collecting into a BTreeMap re-establishes sorted order for callers.
        self.snapshot
            .means
            .iter() // lint: sorted — collected into a BTreeMap below
            .map(|(&t, &m)| (t, m))
            .collect::<BTreeMap<u32, f64>>()
    }
}

/// A point-in-time ranking of pending atoms, consumed by the URC cache policy
/// through the [`UtilityOracle`] interface. Backed by shared maps, so cloning
/// one is O(1) and the workload manager can patch its own copy in place
/// between dispatches.
#[derive(Debug, Clone)]
pub struct UtilitySnapshot {
    atoms: Arc<HashMap<AtomId, f64>>,
    means: Arc<HashMap<u32, f64>>,
}

impl UtilitySnapshot {
    /// A snapshot with no pending workload: every atom ranks
    /// [`UtilityRank::ZERO`], so URC degrades to plain LRU. Used by
    /// schedulers that keep no workload queues (NoShare).
    pub fn empty() -> Self {
        UtilitySnapshot {
            atoms: Arc::new(HashMap::new()),
            means: Arc::new(HashMap::new()),
        }
    }
}

impl UtilityOracle<AtomId> for UtilitySnapshot {
    fn rank(&self, key: &AtomId) -> UtilityRank {
        match self.atoms.get(key) {
            Some(&u) => UtilityRank {
                timestep_mean: self.means.get(&key.timestep).copied().unwrap_or(0.0),
                atom_utility: u,
            },
            None => UtilityRank::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::FixedResidency;
    use jaws_morton::MortonKey;

    fn sub(query: QueryId, t: u32, m: u64, positions: u32, at: f64) -> SubQuery {
        SubQuery {
            query,
            atom: AtomId::new(t, MortonKey(m)),
            positions,
            enqueued_ms: at,
        }
    }

    fn params() -> MetricParams {
        MetricParams {
            atom_read_ms: 100.0,
            position_compute_ms: 1.0,
            atoms_per_timestep: 64,
        }
    }

    #[test]
    fn eq1_favors_longer_queues() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 10, 0.0), sub(2, 0, 1, 100, 0.0)]);
        let none = FixedResidency::none();
        let a0 = AtomId::new(0, MortonKey(0));
        let a1 = AtomId::new(0, MortonKey(1));
        let u0 = wm.workload_throughput(&a0, none.is_resident(&a0));
        let u1 = wm.workload_throughput(&a1, none.is_resident(&a1));
        // 10/(100+10) vs 100/(100+100).
        assert!((u0 - 10.0 / 110.0).abs() < 1e-12);
        assert!((u1 - 0.5).abs() < 1e-12);
        assert!(u1 > u0, "longer queue amortizes the read better");
    }

    #[test]
    fn finite_or_zero_clamps_only_non_finite_values() {
        assert_eq!(finite_or_zero(f64::NAN), 0.0);
        assert_eq!(finite_or_zero(f64::INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NEG_INFINITY), 0.0);
        // Identity on finite values, bit-exactly — the clamp must never
        // perturb the incremental/reference bitwise-equivalence invariant.
        for v in [0.0, -0.0, 1.5e-300, 42.25, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(finite_or_zero(v).to_bits(), v.to_bits());
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite cost model")]
    fn eq1_rejects_nan_cost_model_in_debug() {
        let poisoned = MetricParams {
            atom_read_ms: f64::NAN,
            position_compute_ms: 0.05,
            atoms_per_timestep: 64,
        };
        let _ = eq1(&poisoned, 10, false);
    }

    #[test]
    fn eq2_fold_survives_clamped_non_finite_utility() {
        // Release-build behaviour of the Eq. 2 guard: even if a non-finite
        // utility slipped past the debug assertion, the max-normalizer clamps
        // it to zero and every blend stays finite and comparable.
        let raw: Vec<(AtomId, f64, f64)> = vec![
            (AtomId::new(0, MortonKey(0)), f64::NAN, 5.0),
            (AtomId::new(0, MortonKey(1)), 2.0, f64::INFINITY),
            (AtomId::new(0, MortonKey(2)), 1.0, 3.0),
        ];
        let max_u = raw
            .iter()
            .map(|&(_, u, _)| finite_or_zero(u))
            .fold(0.0f64, f64::max);
        let max_e = raw
            .iter()
            .map(|&(_, _, e)| finite_or_zero(e))
            .fold(0.0f64, f64::max);
        assert_eq!(max_u, 2.0);
        assert_eq!(max_e, 5.0);
    }

    #[test]
    fn eq1_phi_zero_for_resident_atoms() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 10, 0.0)]);
        let a0 = AtomId::new(0, MortonKey(0));
        let u_disk = wm.workload_throughput(&a0, false);
        let u_mem = wm.workload_throughput(&a0, true);
        assert!(
            (u_mem - 1.0).abs() < 1e-12,
            "pure compute: W/(T_m·W) = 1/T_m"
        );
        assert!(u_mem > u_disk, "cached atoms rank higher (Eq. 1 φ)");
    }

    #[test]
    fn zero_compute_cost_keeps_the_metric_finite() {
        // T_m = 0 makes a resident atom's Eq. 1 denominator vanish. The old
        // sentinel returned W·1e9, which crushed every other atom's
        // normalized utility to ~0; the replacement ranks the atom as if it
        // cost half an atom read.
        let zero_compute = MetricParams {
            atom_read_ms: 100.0,
            position_compute_ms: 0.0,
            atoms_per_timestep: 64,
        };
        let mut wm = WorkloadManager::new(zero_compute);
        wm.enqueue([sub(1, 0, 0, 10, 0.0), sub(2, 0, 1, 40, 0.0)]);
        let a0 = AtomId::new(0, MortonKey(0));
        let a1 = AtomId::new(0, MortonKey(1));
        let u_res_small = wm.workload_throughput(&a0, true);
        let u_res_big = wm.workload_throughput(&a1, true);
        let u_disk_small = wm.workload_throughput(&a0, false);
        assert!(u_res_small.is_finite());
        assert!((u_res_small - 10.0 / 50.0).abs() < 1e-12, "W / (T_b / 2)");
        assert!(u_res_big > u_res_small, "still monotone in pending work");
        assert_eq!(
            u_res_small,
            2.0 * u_disk_small,
            "resident ranks exactly 2x its on-disk self in the T_m->0 limit"
        );
        // Max-normalization stays meaningful: the disk atom's normalized
        // utility is within an order of magnitude, not ~1e-9.
        let res = FixedResidency::of([a0]);
        let aged: BTreeMap<AtomId, f64> = wm.aged_utilities(1.0, 0.0, &res).into_iter().collect();
        assert!(
            aged[&a1] > 0.1,
            "non-degenerate atom not crushed: {}",
            aged[&a1]
        );
        // All-zero cost model: fall back to raw workload ranking.
        let all_zero = MetricParams {
            atom_read_ms: 0.0,
            position_compute_ms: 0.0,
            atoms_per_timestep: 64,
        };
        let mut wm0 = WorkloadManager::new(all_zero);
        wm0.enqueue([sub(1, 0, 0, 7, 0.0)]);
        assert_eq!(wm0.workload_throughput(&a0, true), 7.0);
    }

    #[test]
    fn age_tracks_oldest_subquery() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 5, 100.0)]);
        wm.enqueue([sub(2, 0, 0, 5, 900.0)]);
        let a0 = AtomId::new(0, MortonKey(0));
        assert_eq!(wm.age(&a0, 1000.0), 900.0, "oldest wins");
        assert_eq!(wm.age(&AtomId::new(0, MortonKey(9)), 1000.0), 0.0);
    }

    #[test]
    fn aged_metric_interpolates_between_contention_and_age() {
        let mut wm = WorkloadManager::new(params());
        // Atom 0: huge queue, fresh. Atom 1: tiny queue, ancient.
        wm.enqueue([sub(1, 0, 0, 1000, 990.0), sub(2, 0, 1, 1, 0.0)]);
        let none = FixedResidency::none();
        let rank_of = |alpha: f64| {
            let mut u = wm.aged_utilities(1000.0, alpha, &none);
            u.sort_by(|a, b| b.1.total_cmp(&a.1));
            u[0].0
        };
        assert_eq!(rank_of(0.0), AtomId::new(0, MortonKey(0)), "contention");
        assert_eq!(rank_of(1.0), AtomId::new(0, MortonKey(1)), "arrival order");
    }

    #[test]
    fn take_atom_reports_completions() {
        let mut wm = WorkloadManager::new(params());
        // Query 1 spans two atoms; query 2 one atom.
        wm.enqueue([
            sub(1, 0, 0, 5, 0.0),
            sub(1, 0, 1, 5, 0.0),
            sub(2, 0, 0, 7, 0.0),
        ]);
        assert_eq!(wm.pending_subqueries(), 3);
        let (batch, done) = wm.take_atom(&AtomId::new(0, MortonKey(0)));
        assert_eq!(batch.subqueries.len(), 2);
        assert_eq!(batch.positions(), 12);
        assert_eq!(done, vec![2], "query 2 fully served; query 1 still pending");
        let (_, done) = wm.take_atom(&AtomId::new(0, MortonKey(1)));
        assert_eq!(done, vec![1]);
        assert!(wm.is_empty());
    }

    #[test]
    #[should_panic(expected = "take_atom on empty queue")]
    fn take_atom_requires_a_queue() {
        let mut wm = WorkloadManager::new(params());
        wm.take_atom(&AtomId::new(0, MortonKey(0)));
    }

    #[test]
    fn timestep_means_aggregate_per_timestep() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([
            sub(1, 0, 0, 100, 0.0),
            sub(2, 0, 1, 100, 0.0),
            sub(3, 5, 0, 10, 0.0),
        ]);
        let none = FixedResidency::none();
        let means = wm.timestep_means(&none);
        assert_eq!(means.len(), 2);
        assert!(means[&0] > means[&5], "denser timestep has higher mean");
    }

    #[test]
    fn utility_snapshot_feeds_urc() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 0, 100, 0.0), sub(2, 3, 1, 5, 0.0)]);
        let none = FixedResidency::none();
        let snap = wm.utility_snapshot(&none);
        let hot = snap.rank(&AtomId::new(0, MortonKey(0)));
        let cold = snap.rank(&AtomId::new(3, MortonKey(1)));
        let absent = snap.rank(&AtomId::new(7, MortonKey(7)));
        assert!(hot.atom_utility > cold.atom_utility);
        assert!(hot.timestep_mean > cold.timestep_mean);
        assert_eq!(absent.atom_utility, 0.0);
        // URC would evict `absent` first, then `cold`, then `hot`.
        assert_eq!(absent.cmp_for_eviction(&cold), std::cmp::Ordering::Less);
        assert_eq!(cold.cmp_for_eviction(&hot), std::cmp::Ordering::Less);
    }

    #[test]
    fn enqueue_merges_same_atom_across_queries() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([sub(1, 0, 4, 10, 0.0)]);
        wm.enqueue([sub(2, 0, 4, 20, 5.0)]);
        assert_eq!(wm.pending_atoms(), 1);
        assert_eq!(wm.atom_positions(&AtomId::new(0, MortonKey(4))), 30);
    }

    #[test]
    fn incremental_best_atom_matches_reference_argmax() {
        let mut wm = WorkloadManager::new(params());
        wm.enqueue([
            sub(1, 0, 0, 10, 0.0),
            sub(2, 0, 1, 400, 30.0),
            sub(3, 2, 5, 80, 10.0),
            sub(4, 7, 2, 80, 5.0),
        ]);
        let none = FixedResidency::none();
        for &alpha in &[0.0, 0.3, 1.0] {
            let reference = wm
                .aged_utilities(1000.0, alpha, &none)
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .unwrap();
            let fast = wm.best_atom(1000.0, alpha, &none).unwrap();
            assert_eq!(fast.0, reference.0, "alpha={alpha}");
            assert_eq!(fast.1.to_bits(), reference.1.to_bits());
        }
    }

    #[test]
    fn incremental_snapshot_tracks_takes_and_arrivals() {
        let mut wm = WorkloadManager::new(params());
        let none = FixedResidency::none();
        wm.enqueue([sub(1, 0, 0, 100, 0.0), sub(2, 3, 1, 5, 0.0)]);
        let s1 = wm.utility_snapshot_incremental(&none);
        assert!(s1.rank(&AtomId::new(0, MortonKey(0))).atom_utility > 0.0);
        wm.take_atom(&AtomId::new(0, MortonKey(0)));
        wm.enqueue([sub(3, 3, 2, 50, 4.0)]);
        let s2 = wm.utility_snapshot_incremental(&none);
        assert_eq!(
            s2.rank(&AtomId::new(0, MortonKey(0))).atom_utility,
            0.0,
            "taken atom dropped from the snapshot"
        );
        assert!(s2.rank(&AtomId::new(3, MortonKey(2))).atom_utility > 0.0);
        // The earlier snapshot is a frozen point in time.
        assert!(s1.rank(&AtomId::new(0, MortonKey(0))).atom_utility > 0.0);
        assert_eq!(s1.rank(&AtomId::new(3, MortonKey(2))).atom_utility, 0.0);
    }

    #[test]
    fn best_timestep_clamped_age_fallback_is_exact() {
        let mut wm = WorkloadManager::new(params());
        // Timestep 0 holds an atom enqueued "after" now (its age clamps to
        // zero), forcing the degenerate branch; timestep 1 is all past.
        wm.enqueue([
            sub(1, 0, 0, 10, 0.0),
            sub(2, 0, 1, 10, 5_000.0),
            sub(3, 1, 0, 10, 100.0),
        ]);
        let none = FixedResidency::none();
        let now = 1_000.0;
        // Pure age order: ts 0 sums age 1000 (+ 0 clamped), ts 1 sums 900.
        assert_eq!(wm.best_timestep(now, 1.0, &none), Some(0));
        // The sorted-prefix index agrees with the exact per-atom fold.
        wm.ensure_age_index(0);
        let exact: f64 = wm.atoms_in_timestep(0).iter().map(|a| wm.age(a, now)).sum();
        let fast = wm.clamped_age_sum(0, now);
        assert!((fast - exact).abs() <= 1e-9 * exact.max(1.0));
        // A queue change refolds the aggregate and invalidates the index.
        wm.enqueue([sub(4, 0, 2, 10, 7_000.0)]);
        assert_eq!(wm.best_timestep(now, 1.0, &none), Some(0));
        let exact2: f64 = wm.atoms_in_timestep(0).iter().map(|a| wm.age(a, now)).sum();
        let fast2 = wm.clamped_age_sum(0, now);
        assert_eq!(
            exact2.to_bits(),
            exact.to_bits(),
            "new atom's age clamps to 0"
        );
        assert!((fast2 - exact2).abs() <= 1e-9 * exact2.max(1.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::batch::SubQuery;
    use crate::policy::test_support::FixedResidency;
    use jaws_morton::MortonKey;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        /// Conservation: every enqueued sub-query is returned by exactly one
        /// take_atom, completions fire exactly once per query, and counters
        /// never go negative.
        #[test]
        fn enqueue_take_conservation(
            subs in proptest::collection::vec(
                (1u64..20, 0u32..4, 0u64..16, 1u32..50), 1..120),
        ) {
            let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
            let mut expected_per_query: HashMap<QueryId, usize> = HashMap::new();
            for (i, &(q, t, m, c)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: q,
                    atom: AtomId::new(t, MortonKey(m)),
                    positions: c,
                    enqueued_ms: i as f64,
                }]);
                *expected_per_query.entry(q).or_default() += 1;
            }
            prop_assert_eq!(wm.pending_subqueries(), subs.len());
            let none = FixedResidency::none();
            let mut taken = 0usize;
            let mut completed: Vec<QueryId> = Vec::new();
            while !wm.is_empty() {
                let atoms = wm.aged_utilities(1e6, 0.3, &none);
                prop_assert!(!atoms.is_empty());
                let (atom, _) = atoms[0];
                let (batch, done) = wm.take_atom(&atom);
                prop_assert!(!batch.subqueries.is_empty());
                taken += batch.subqueries.len();
                completed.extend(done);
            }
            prop_assert_eq!(taken, subs.len());
            completed.sort_unstable();
            let mut expect: Vec<QueryId> = expected_per_query.keys().copied().collect();
            expect.sort_unstable();
            prop_assert_eq!(completed, expect, "each query completes exactly once");
        }

        /// Eq. 1 monotonicity: more pending positions never lower the metric,
        /// and residency never lowers it either.
        #[test]
        fn metric_monotonicity(w1 in 1u32..10_000, extra in 1u32..10_000) {
            let params = MetricParams::paper_testbed();
            let atom = AtomId::new(0, MortonKey(5));
            let mut a = WorkloadManager::new(params);
            a.enqueue([SubQuery { query: 1, atom, positions: w1, enqueued_ms: 0.0 }]);
            let mut b = WorkloadManager::new(params);
            b.enqueue([SubQuery { query: 1, atom, positions: w1 + extra, enqueued_ms: 0.0 }]);
            prop_assert!(
                b.workload_throughput(&atom, false) >= a.workload_throughput(&atom, false)
            );
            prop_assert!(
                a.workload_throughput(&atom, true) >= a.workload_throughput(&atom, false)
            );
        }

        /// Satellite of lint rule D001: when every pending atom ties on
        /// utility and age, atom selection must not depend on enqueue order —
        /// only on the documented tie-break (ascending AtomId). Draining two
        /// managers fed the same atoms in different orders must visit atoms
        /// in the identical (sorted) sequence.
        #[test]
        fn equal_utility_selection_is_enqueue_order_invariant(
            set in proptest::collection::btree_set((0u32..3, 0u64..12), 2..10),
            shuffle_seed in 0u64..1_000_000,
        ) {
            // Distinct atoms with identical positions and enqueue times tie
            // exactly on both Eq. 2 terms. Shuffle with a seeded, replayable
            // Fisher–Yates (the proptest shim has no prop_shuffle).
            use rand::{RngCore, SeedableRng};
            let base: Vec<(u32, u64)> = set.into_iter().collect();
            let mut shuffled = base.clone();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(shuffle_seed);
            for i in (1..shuffled.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            let none = FixedResidency::none();
            let drain = |order: &[(u32, u64)]| {
                let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
                for (i, &(t, m)) in order.iter().enumerate() {
                    wm.enqueue([SubQuery {
                        query: i as u64 + 1,
                        atom: AtomId::new(t, MortonKey(m)),
                        positions: 40,
                        enqueued_ms: 0.0,
                    }]);
                }
                let mut visited = Vec::new();
                while let Some((atom, _)) = wm.best_atom(1000.0, 0.5, &none) {
                    visited.push(atom);
                    wm.take_atom(&atom);
                }
                visited
            };
            let a = drain(&base);
            let b = drain(&shuffled);
            prop_assert_eq!(&a, &b, "drain order depended on enqueue order");
            // With a global score tie, the documented total order degenerates
            // to plain ascending AtomId.
            let mut sorted = a.clone();
            sorted.sort_unstable();
            prop_assert_eq!(a, sorted, "tie-break is not ascending AtomId");
        }

        /// Aged utilities stay within [0, 1] after normalization for any α.
        #[test]
        fn aged_utilities_are_normalized(
            alpha in 0.0f64..=1.0,
            subs in proptest::collection::vec((1u64..9, 0u32..3, 0u64..8, 1u32..100), 1..40),
        ) {
            let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
            for (i, &(q, t, m, c)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: q,
                    atom: AtomId::new(t, MortonKey(m)),
                    positions: c,
                    enqueued_ms: i as f64 * 10.0,
                }]);
            }
            let none = FixedResidency::none();
            for (_, u) in wm.aged_utilities(1e5, alpha, &none) {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&u), "utility {u}");
            }
        }
    }

    /// A mutable residency source with full change tracking, standing in for
    /// the buffer pool. `tracked = false` degrades it to the conservative
    /// protocol (no epoch, no log) so both refresh paths get exercised.
    struct FlipResidency {
        resident: HashSet<AtomId>,
        log: Vec<(AtomId, bool)>,
        tracked: bool,
    }

    impl FlipResidency {
        fn new(tracked: bool) -> Self {
            FlipResidency {
                resident: HashSet::new(),
                log: Vec::new(),
                tracked,
            }
        }

        fn flip(&mut self, atom: AtomId) {
            let now_resident = if self.resident.remove(&atom) {
                false
            } else {
                self.resident.insert(atom);
                true
            };
            self.log.push((atom, now_resident));
        }
    }

    impl Residency for FlipResidency {
        fn is_resident(&self, atom: &AtomId) -> bool {
            self.resident.contains(atom)
        }

        fn residency_epoch(&self) -> Option<u64> {
            self.tracked.then_some(self.log.len() as u64)
        }

        fn residency_changes_since(&self, since: u64) -> Option<Vec<(AtomId, bool)>> {
            if !self.tracked {
                return None;
            }
            Some(self.log[since as usize..].to_vec())
        }
    }

    /// Bitwise comparison of f64 maps/vecs: the incremental path must agree
    /// with the reference recompute to the last ulp, not approximately.
    fn assert_equiv(
        wm: &mut WorkloadManager,
        res: &dyn Residency,
        now_ms: f64,
        alpha: f64,
        probes: &[AtomId],
    ) {
        let mut reference = wm.aged_utilities(now_ms, alpha, res);
        reference.sort_by_key(|&(a, _)| a);
        let incremental = wm.aged_utilities_incremental(now_ms, alpha, res);
        assert_eq!(reference.len(), incremental.len());
        for (r, i) in reference.iter().zip(&incremental) {
            assert_eq!(r.0, i.0);
            assert_eq!(r.1.to_bits(), i.1.to_bits(), "aged utility of {}", r.0);
        }
        let ref_means = wm.timestep_means(res);
        let inc_means = wm.timestep_means_incremental(res);
        assert_eq!(ref_means.len(), inc_means.len());
        for (ts, m) in &ref_means {
            assert_eq!(m.to_bits(), inc_means[ts].to_bits(), "mean of ts {ts}");
        }
        let ref_snap = wm.utility_snapshot(res);
        let inc_snap = wm.utility_snapshot_incremental(res);
        for a in reference
            .iter()
            .map(|&(a, _)| a)
            .chain(probes.iter().copied())
        {
            let r = ref_snap.rank(&a);
            let i = inc_snap.rank(&a);
            assert_eq!(r.atom_utility.to_bits(), i.atom_utility.to_bits(), "{a}");
            assert_eq!(r.timestep_mean.to_bits(), i.timestep_mean.to_bits(), "{a}");
        }
    }

    proptest! {
        /// The clamped-age sorted-prefix index agrees with the exact
        /// per-atom fold (within float re-association error), and
        /// best_timestep stays idempotent, for workloads whose enqueue times
        /// straddle `now` — the degenerate case that used to pay an O(n)
        /// fold on every call.
        #[test]
        fn clamped_age_index_matches_exact_fold(
            subs in proptest::collection::vec(
                (0u32..4, 0u64..8, 1u32..100, 0u32..2_000), 1..40),
            now in 0.0f64..1_500.0,
            alpha in 0.0f64..=1.0,
        ) {
            let mut wm = WorkloadManager::new(MetricParams::paper_testbed());
            for (i, &(t, m, c, at)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: i as QueryId + 1,
                    atom: AtomId::new(t, MortonKey(m)),
                    positions: c,
                    enqueued_ms: at as f64,
                }]);
            }
            let none = FixedResidency::none();
            let first = wm.best_timestep(now, alpha, &none);
            prop_assert_eq!(first, wm.best_timestep(now, alpha, &none));
            for t in 0..4u32 {
                let atoms = wm.atoms_in_timestep(t);
                if atoms.is_empty() {
                    continue;
                }
                wm.ensure_age_index(t);
                let exact: f64 = atoms.iter().map(|a| wm.age(a, now)).sum();
                let fast = wm.clamped_age_sum(t, now);
                prop_assert!(
                    (fast - exact).abs() <= 1e-9 * exact.abs().max(1.0),
                    "ts {}: fast {} vs exact {}", t, fast, exact
                );
            }
        }
    }

    proptest! {
        /// Interleaved enqueue / take_atom / residency flips: the incremental
        /// utilities, timestep means and URC snapshot match a reference
        /// recompute bit for bit after every step — under both the tracked
        /// (epoch + change log) and the conservative residency protocols.
        #[test]
        fn incremental_matches_reference_under_interleaving(
            tracked in 0u32..2,
            alpha in 0.0f64..=1.0,
            ops in proptest::collection::vec(
                // (kind, ts, morton, positions): kind 0-4 enqueue (biased),
                // 5-6 take some pending atom, 7-8 flip residency, 9 flip a
                // pending atom specifically.
                (0u32..10, 0u32..4, 0u64..12, 1u32..200), 1..60),
        ) {
            let mut wm = WorkloadManager::new(MetricParams {
                atom_read_ms: 100.0,
                position_compute_ms: 1.0,
                atoms_per_timestep: 16,
            });
            let mut res = FlipResidency::new(tracked == 1);
            let probes = [AtomId::new(90, MortonKey(0)), AtomId::new(0, MortonKey(999))];
            let mut next_query: QueryId = 1;
            for (i, &(kind, ts, m, positions)) in ops.iter().enumerate() {
                let now_ms = (i as f64 + 1.0) * 50.0;
                let atom = AtomId::new(ts, MortonKey(m));
                match kind {
                    0..=4 => {
                        wm.enqueue([SubQuery {
                            query: next_query,
                            atom,
                            positions,
                            enqueued_ms: now_ms - (positions as f64 % 37.0),
                        }]);
                        next_query += 1;
                    }
                    5 | 6 => {
                        // Take the current best atom, like a scheduler would.
                        if let Some((best, _)) = wm.best_atom(now_ms, alpha, &res) {
                            wm.take_atom(&best);
                        }
                    }
                    7 | 8 => res.flip(atom),
                    _ => {
                        if let Some(&a) = wm.atoms_in_timestep(ts).first() {
                            res.flip(a);
                        }
                    }
                }
                assert_equiv(&mut wm, &res, now_ms, alpha, &probes);
            }
        }

        /// The incremental coarse/fine decomposition agrees with the
        /// reference: the per-timestep atom lists partition aged_utilities,
        /// and best_atom is the reference argmax.
        #[test]
        fn incremental_two_level_agrees_with_reference(
            alpha in 0.0f64..=1.0,
            subs in proptest::collection::vec((0u32..5, 0u64..10, 1u32..300), 1..50),
        ) {
            let mut wm = WorkloadManager::new(MetricParams {
                atom_read_ms: 80.0,
                position_compute_ms: 0.05,
                atoms_per_timestep: 16,
            });
            for (i, &(ts, m, positions)) in subs.iter().enumerate() {
                wm.enqueue([SubQuery {
                    query: i as QueryId + 1,
                    atom: AtomId::new(ts, MortonKey(m)),
                    positions,
                    enqueued_ms: i as f64 * 3.0,
                }]);
            }
            let none = FixedResidency::none();
            let now_ms = 1e4;
            let reference = wm.aged_utilities(now_ms, alpha, &none);
            let by_atom: HashMap<AtomId, u64> =
                reference.iter().map(|&(a, u)| (a, u.to_bits())).collect();
            let mut seen = 0usize;
            for ts in 0..5u32 {
                for (a, u) in wm.timestep_aged_utilities(ts, now_ms, alpha, &none) {
                    prop_assert_eq!(by_atom[&a], u.to_bits());
                    seen += 1;
                }
            }
            prop_assert_eq!(seen, by_atom.len(), "timestep lists partition the atoms");
            let ref_best = reference
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .unwrap();
            let fast = wm.best_atom(now_ms, alpha, &none).unwrap();
            prop_assert_eq!(fast.0, ref_best.0);
            prop_assert_eq!(fast.1.to_bits(), ref_best.1.to_bits());
        }
    }
}
