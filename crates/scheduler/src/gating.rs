//! Gated execution: the job-aware precedence graph of §IV.
//!
//! Ordered jobs are sequences of queries with data dependencies. JAWS aligns
//! every pair of jobs with a Needleman–Wunsch dynamic program ([`align_jobs`])
//! and turns each aligned, data-sharing pair of queries into a *gating edge*:
//! the two queries must be co-scheduled so the shared atoms are read once.
//! Gating edges are transitive ("q inherits all gating edges incident to its
//! partner", Fig. 4 line 2), so edges form *gating groups* — sets of queries,
//! at most one per job, that enter the workload queues together.
//!
//! Query states follow the paper: **WAIT** (precedence/think-time constraints
//! unsatisfied), **READY** (only gating constraints remain), **QUEUE**
//! (schedulable), **DONE**. "JAWS can schedule a query qᵢ,ⱼ₊₁ only if
//! S(qᵢ,ⱼ) = DONE and every adjacent (via a gating edge) query is in the
//! READY state."
//!
//! ## Deadlock freedom
//!
//! The paper's Fig. 4 admission test uses *gating numbers* to refuse edges
//! that would deadlock the schedule. We implement the property those numbers
//! approximate directly: gating groups must form a DAG under the precedence
//! relation "some job executes a query of group A before a query of group B".
//! An edge whose admission would create a cycle is refused. This is strictly
//! safe: an acyclic group order can always be scheduled.
//!
//! ## Starvation valve
//!
//! A group only fires when every member is READY, and a member's job may be
//! arbitrarily slow (long think times). Following the spirit of §V-A's
//! starvation resistance, a READY query gated for longer than
//! [`GatingConfig::gate_timeout_ms`] is force-released: it leaves its group
//! and becomes schedulable alone, trading the missed sharing for bounded
//! delay. (The paper relies on alignment feasibility alone; the timeout is an
//! engineering addition documented in DESIGN.md.)
//!
//! ## Total order (determinism)
//!
//! Every decision in this module is made in a documented total order so runs
//! are bit-reproducible per seed (lint rule D001):
//!
//! * **Edge admission** (merge phase of [`GatingGraph::add_job`]): candidate
//!   alignments are processed in decreasing alignment size, ties broken by
//!   ascending partner `JobId`, and pairs within one alignment in job
//!   sequence order.
//! * **Force release** ([`GatingGraph::release_stale`]): stale queries are
//!   released in ascending `QueryId` order.
//! * **Group firing**: promoted queries come out in group-membership order,
//!   which is itself the deterministic admission order above.
//!
//! All graph state lives in `BTreeMap`/`BTreeSet` keyed by `JobId`/`QueryId`/
//! group id, so every iteration is ordered by construction.

use crate::align::align_jobs;
use jaws_workload::{Job, JobId, JobKind, Query, QueryId};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Gating behaviour knobs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GatingConfig {
    /// Maximum time a READY query may wait on gating partners before being
    /// force-released, ms.
    pub gate_timeout_ms: f64,
    /// Maximum number of existing jobs a new job is aligned against (most
    /// recently arrived first) — bounds the O(n²m²) dynamic-program phase.
    pub max_align_jobs: usize,
}

impl Default for GatingConfig {
    fn default() -> Self {
        GatingConfig {
            gate_timeout_ms: 180_000.0,
            max_align_jobs: 64,
        }
    }
}

/// The WAIT/READY/QUEUE/DONE lifecycle of §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum QueryState {
    /// Precedence constraints (predecessor, think time) unsatisfied.
    Wait,
    /// Available, but gating partners are not all READY yet.
    Ready,
    /// All constraints satisfied — sub-queries sit in the workload queues.
    Queue,
    /// Completed.
    Done,
}

type GroupId = u64;

#[derive(Debug)]
struct QueryEntry {
    job: JobId,
    /// Index within the job's query sequence.
    index: usize,
    state: QueryState,
    ready_since_ms: f64,
    group: Option<GroupId>,
}

#[derive(Debug)]
struct JobEntry {
    /// The job's queries in precedence order (footprints retained for future
    /// alignments against newly arriving jobs).
    queries: Vec<Query>,
    /// Indices of queries that are not DONE yet (monotone front pointer).
    first_pending: usize,
}

/// The job-aware precedence/gating graph.
#[derive(Debug)]
pub struct GatingGraph {
    cfg: GatingConfig,
    jobs: BTreeMap<JobId, JobEntry>,
    /// Arrival order of ordered jobs, for alignment candidate selection.
    job_order: Vec<JobId>,
    queries: BTreeMap<QueryId, QueryEntry>,
    groups: BTreeMap<GroupId, Vec<QueryId>>,
    next_group: GroupId,
    admitted_edges: u64,
    refused_edges: u64,
    forced_releases: u64,
}

impl GatingGraph {
    /// Creates an empty graph.
    pub fn new(cfg: GatingConfig) -> Self {
        GatingGraph {
            cfg,
            jobs: BTreeMap::new(),
            job_order: Vec::new(),
            queries: BTreeMap::new(),
            groups: BTreeMap::new(),
            next_group: 0,
            admitted_edges: 0,
            refused_edges: 0,
            forced_releases: 0,
        }
    }

    /// Total gating edges admitted so far.
    pub fn admitted_edges(&self) -> u64 {
        self.admitted_edges
    }

    /// Edges refused by the deadlock / one-per-job checks.
    pub fn refused_edges(&self) -> u64 {
        self.refused_edges
    }

    /// Queries force-released by the starvation valve.
    pub fn forced_releases(&self) -> u64 {
        self.forced_releases
    }

    /// Current state of a query ([`QueryState::Done`] if unknown/pruned).
    pub fn state(&self, q: QueryId) -> QueryState {
        self.queries.get(&q).map_or(QueryState::Done, |e| e.state)
    }

    /// The co-scheduling group of a query, if it is gated.
    pub fn group_members(&self, q: QueryId) -> Option<&[QueryId]> {
        let g = self.queries.get(&q)?.group?;
        self.groups.get(&g).map(Vec::as_slice)
    }

    /// True if any query is READY but held back by a gate.
    pub fn has_gated_ready(&self) -> bool {
        self.queries
            .values()
            .any(|e| e.state == QueryState::Ready && e.group.is_some())
    }

    /// Declares a new ordered job, aligning it against existing jobs and
    /// admitting gating edges greedily (largest alignments first, per the
    /// merge phase of §IV-B). Batched jobs and one-off queries register their
    /// queries but never gate. Returns the number of edges admitted.
    pub fn add_job(&mut self, job: &Job) -> usize {
        let entry = JobEntry {
            queries: job.queries.clone(),
            first_pending: 0,
        };
        for (i, q) in job.queries.iter().enumerate() {
            self.queries.insert(
                q.id,
                QueryEntry {
                    job: job.id,
                    index: i,
                    state: QueryState::Wait,
                    ready_since_ms: 0.0,
                    group: None,
                },
            );
        }
        self.jobs.insert(job.id, entry);
        if job.kind != JobKind::Ordered || job.queries.len() < 2 {
            return 0;
        }
        // Dynamic-program phase: align against the most recent ordered jobs.
        let mut alignments: Vec<(JobId, Vec<(usize, usize)>)> = Vec::new();
        for &other_id in self.job_order.iter().rev().take(self.cfg.max_align_jobs) {
            let other = &self.jobs[&other_id];
            // Only align against the not-yet-done suffix: gating a completed
            // query is meaningless.
            let offset = other.first_pending;
            if offset >= other.queries.len() {
                continue;
            }
            let al = align_jobs(&job.queries, &other.queries[offset..]);
            if al.score > 0 {
                let pairs = al.pairs.into_iter().map(|(i, j)| (i, j + offset)).collect();
                alignments.push((other_id, pairs));
            }
        }
        self.job_order.push(job.id);
        // Merge phase: job pairs in decreasing alignment size.
        alignments.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        let mut admitted = 0;
        for (other_id, pairs) in alignments {
            for (new_idx, other_idx) in pairs {
                let new_q = self.jobs[&job.id].queries[new_idx].id;
                let other_q = self.jobs[&other_id].queries[other_idx].id;
                if self.admit_edge(new_q, other_q) {
                    admitted += 1;
                }
            }
        }
        admitted as usize
    }

    /// Admits a gating edge between `a` (new job) and `b` (existing job) if
    /// it cannot deadlock the schedule; see the module docs.
    fn admit_edge(&mut self, a: QueryId, b: QueryId) -> bool {
        let (ea, eb) = match (self.queries.get(&a), self.queries.get(&b)) {
            (Some(x), Some(y)) => (x, y),
            _ => return false,
        };
        // Gating an already scheduled / completed query is pointless.
        if !matches!(ea.state, QueryState::Wait | QueryState::Ready)
            || !matches!(eb.state, QueryState::Wait | QueryState::Ready)
        {
            self.refused_edges += 1;
            return false;
        }
        if ea.group.is_some() && ea.group == eb.group {
            return false; // already co-grouped (transitivity)
        }
        // Determine the merged membership. Transitivity (Fig. 4 line 2):
        // joining b means joining b's whole group. Constraint: the merged
        // group may hold at most one query per job (two queries of one job in
        // a group could never be co-scheduled).
        let old_a: Option<(GroupId, Vec<QueryId>)> = ea.group.map(|g| (g, self.groups[&g].clone()));
        let old_b: Option<(GroupId, Vec<QueryId>)> = eb.group.map(|g| (g, self.groups[&g].clone()));
        let side_a = old_a.as_ref().map_or_else(|| vec![a], |(_, m)| m.clone());
        let side_b = old_b.as_ref().map_or_else(|| vec![b], |(_, m)| m.clone());
        let merged: Vec<QueryId> = side_a.iter().chain(side_b.iter()).copied().collect();
        let mut jobs_seen = BTreeSet::new();
        for q in &merged {
            if !jobs_seen.insert(self.queries[q].job) {
                self.refused_edges += 1;
                return false;
            }
        }
        // Tentatively apply, then verify the group-precedence DAG is acyclic.
        let gid = self.next_group;
        self.next_group += 1;
        for q in &merged {
            // lint: invariant — merged only holds ids from self.queries
            self.queries.get_mut(q).expect("tracked").group = Some(gid);
        }
        if let Some((g, _)) = &old_a {
            self.groups.remove(g);
        }
        if let Some((g, _)) = &old_b {
            self.groups.remove(g);
        }
        self.groups.insert(gid, merged);
        if self.group_dag_is_acyclic() {
            self.admitted_edges += 1;
            true
        } else {
            // Revert to the exact pre-merge state.
            self.groups.remove(&gid);
            for (old, lone) in [(old_a, a), (old_b, b)] {
                match old {
                    None => {
                        // lint: invariant — `lone` was looked up at entry
                        self.queries.get_mut(&lone).expect("tracked").group = None;
                    }
                    Some((g, members)) => {
                        for m in &members {
                            // lint: invariant — members came from self.queries
                            self.queries.get_mut(m).expect("tracked").group = Some(g);
                        }
                        self.groups.insert(g, members);
                    }
                }
            }
            self.refused_edges += 1;
            false
        }
    }

    /// Cycle check over the gating-group precedence DAG.
    fn group_dag_is_acyclic(&self) -> bool {
        // Edges: for each job, consecutive gated queries g_prev -> g_next.
        let mut edges: BTreeMap<GroupId, BTreeSet<GroupId>> = BTreeMap::new();
        for job in self.jobs.values() {
            let mut prev: Option<GroupId> = None;
            for q in &job.queries[job.first_pending..] {
                if let Some(e) = self.queries.get(&q.id) {
                    if let Some(g) = e.group {
                        if let Some(p) = prev {
                            if p != g {
                                edges.entry(p).or_default().insert(g);
                            }
                        }
                        prev = Some(g);
                    }
                }
            }
        }
        // Kahn's algorithm over the groups that participate in edges.
        let mut indeg: BTreeMap<GroupId, usize> = BTreeMap::new();
        for (&from, tos) in &edges {
            indeg.entry(from).or_insert(0);
            for &to in tos {
                *indeg.entry(to).or_insert(0) += 1;
            }
        }
        let mut stack: Vec<GroupId> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&g, _)| g)
            .collect();
        let mut seen = 0usize;
        let total = indeg.len();
        while let Some(g) = stack.pop() {
            seen += 1;
            if let Some(tos) = edges.get(&g) {
                for &to in tos {
                    // lint: invariant — every edge target got an indeg entry above
                    let d = indeg.get_mut(&to).expect("counted");
                    *d -= 1;
                    if *d == 0 {
                        stack.push(to);
                    }
                }
            }
        }
        seen == total
    }

    /// Marks a query available (predecessor done, think time elapsed):
    /// WAIT → READY, then fires any group that became fully ready. Returns
    /// the queries newly promoted to QUEUE.
    pub fn query_available(&mut self, q: QueryId, now_ms: f64) -> Vec<QueryId> {
        // lint: invariant — callers only pass ids registered via add_job
        let e = self
            .queries
            .get_mut(&q)
            .expect("available query is tracked");
        debug_assert_eq!(e.state, QueryState::Wait, "double availability for {q}");
        e.state = QueryState::Ready;
        e.ready_since_ms = now_ms;
        self.try_fire(q)
    }

    /// Marks a query complete: QUEUE → DONE, prunes it from its group and the
    /// job front, and fires any group unblocked by the pruning. Returns the
    /// queries newly promoted to QUEUE.
    pub fn query_done(&mut self, q: QueryId) -> Vec<QueryId> {
        let Some(e) = self.queries.get_mut(&q) else {
            return Vec::new();
        };
        e.state = QueryState::Done;
        let job = e.job;
        let group = e.group.take();
        // Advance the job's pending front (prunes completed queries from
        // future alignments and DAG checks).
        if let Some(j) = self.jobs.get_mut(&job) {
            while j.first_pending < j.queries.len()
                && self
                    .queries
                    .get(&j.queries[j.first_pending].id)
                    .is_none_or(|e| e.state == QueryState::Done)
            {
                j.first_pending += 1;
            }
        }
        let mut promoted = Vec::new();
        if let Some(g) = group {
            if let Some(members) = self.groups.get_mut(&g) {
                members.retain(|&m| m != q);
                let remaining = members.clone();
                if remaining.len() <= 1 {
                    self.groups.remove(&g);
                    for m in remaining {
                        // lint: invariant — group members are tracked queries
                        self.queries.get_mut(&m).expect("tracked").group = None;
                        if self.queries[&m].state == QueryState::Ready {
                            promoted.extend(self.promote(m));
                        }
                    }
                } else if let Some(&m) = remaining.first() {
                    promoted.extend(self.try_fire(m));
                }
            }
        }
        promoted
    }

    /// Promotes a READY query (and, if gated, its whole ready group) to QUEUE
    /// when all gating constraints hold. Returns newly QUEUEd queries.
    fn try_fire(&mut self, q: QueryId) -> Vec<QueryId> {
        let Some(e) = self.queries.get(&q) else {
            return Vec::new();
        };
        if e.state != QueryState::Ready {
            return Vec::new();
        }
        match e.group {
            None => self.promote(q),
            Some(g) => {
                // lint: invariant — a query's group id always names a live group
                let members = self.groups.get(&g).expect("member's group exists");
                let all_ready = members.iter().all(|m| {
                    matches!(
                        self.queries[m].state,
                        QueryState::Ready | QueryState::Queue | QueryState::Done
                    )
                });
                if !all_ready {
                    return Vec::new();
                }
                let to_fire: Vec<QueryId> = members
                    .iter()
                    .filter(|m| self.queries[*m].state == QueryState::Ready)
                    .copied()
                    .collect();
                let mut out = Vec::new();
                for m in to_fire {
                    out.extend(self.promote(m));
                }
                out
            }
        }
    }

    fn promote(&mut self, q: QueryId) -> Vec<QueryId> {
        // lint: invariant — promote is only called with tracked READY queries
        let e = self.queries.get_mut(&q).expect("tracked");
        debug_assert_eq!(e.state, QueryState::Ready);
        e.state = QueryState::Queue;
        vec![q]
    }

    /// Force-releases READY queries gated for longer than the timeout.
    /// Returns the queries promoted to QUEUE (the released query itself plus
    /// any group mates its departure unblocked).
    ///
    /// Releases happen in ascending `QueryId` order (see the module docs on
    /// determinism) — `self.queries` is a `BTreeMap`.
    pub fn release_stale(&mut self, now_ms: f64) -> Vec<QueryId> {
        let stale: Vec<QueryId> = self
            .queries
            .iter()
            .filter(|(_, e)| {
                e.state == QueryState::Ready
                    && e.group.is_some()
                    && now_ms - e.ready_since_ms > self.cfg.gate_timeout_ms
            })
            .map(|(&q, _)| q)
            .collect();
        let mut promoted = Vec::new();
        for q in stale {
            if self.queries[&q].state != QueryState::Ready {
                continue; // already promoted by an earlier release this round
            }
            self.forced_releases += 1;
            // lint: invariant — `stale` ids were collected from self.queries
            let g = self.queries.get_mut(&q).expect("tracked").group.take();
            if let Some(g) = g {
                if let Some(members) = self.groups.get_mut(&g) {
                    members.retain(|&m| m != q);
                    let rest = members.clone();
                    if rest.len() <= 1 {
                        self.groups.remove(&g);
                        for m in &rest {
                            // lint: invariant — group members are tracked queries
                            self.queries.get_mut(m).expect("tracked").group = None;
                        }
                    }
                    if let Some(&m) = rest.first() {
                        promoted.extend(self.try_fire(m));
                    }
                }
            }
            promoted.extend(self.promote(q));
        }
        promoted
    }

    /// Gating number diagnostic: how many gating groups must fire before this
    /// query can be scheduled (ancestors of its group in the precedence DAG,
    /// plus groups earlier in its own job). Used by tests and reports.
    pub fn gating_number(&self, q: QueryId) -> usize {
        let Some(e) = self.queries.get(&q) else {
            return 0;
        };
        let job = &self.jobs[&e.job];
        let mut blocking: BTreeSet<GroupId> = BTreeSet::new();
        for pq in &job.queries[job.first_pending..] {
            let pe = &self.queries[&pq.id];
            if pe.index >= e.index {
                break;
            }
            if let Some(g) = pe.group {
                blocking.insert(g);
            }
        }
        // Expand to DAG ancestors of the query's own group.
        if let Some(g) = e.group {
            let mut frontier = vec![g];
            let mut seen = BTreeSet::new();
            while let Some(cur) = frontier.pop() {
                for job in self.jobs.values() {
                    let mut prev: Option<GroupId> = None;
                    for pq in &job.queries[job.first_pending..] {
                        if let Some(pe) = self.queries.get(&pq.id) {
                            if let Some(pg) = pe.group {
                                if Some(pg) != prev {
                                    if let Some(p) = prev {
                                        if pg == cur && p != cur && seen.insert(p) {
                                            blocking.insert(p);
                                            frontier.push(p);
                                        }
                                    }
                                }
                                prev = Some(pg);
                            }
                        }
                    }
                }
            }
        }
        blocking.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaws_morton::MortonKey;
    use jaws_workload::{Footprint, QueryOp};
    use std::collections::HashMap;

    /// Builds a query with id `id` touching region `r` at timestep `ts`.
    fn q(id: u64, ts: u32, r: u64) -> Query {
        Query {
            id,
            user: 0,
            op: QueryOp::ParticleTrack,
            timestep: ts,
            footprint: Footprint::from_pairs([(MortonKey(r), 10u32)]),
        }
    }

    /// Ordered job from (timestep, region) specs with query ids
    /// `base*100 + i`.
    fn job(base: u64, spec: &[(u32, u64)]) -> Job {
        Job {
            id: base,
            user: base as u32,
            kind: JobKind::Ordered,
            campaign: base,
            queries: spec
                .iter()
                .enumerate()
                .map(|(i, &(ts, r))| q(base * 100 + i as u64, ts, r))
                .collect(),
            arrival_ms: 0.0,
            think_ms: 0.0,
        }
    }

    fn graph() -> GatingGraph {
        GatingGraph::new(GatingConfig::default())
    }

    #[test]
    fn ungated_query_queues_immediately_on_availability() {
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1), (1, 2)]));
        assert_eq!(g.state(100), QueryState::Wait);
        let fired = g.query_available(100, 0.0);
        assert_eq!(fired, vec![100]);
        assert_eq!(g.state(100), QueryState::Queue);
        assert_eq!(g.state(101), QueryState::Wait);
    }

    #[test]
    fn aligned_jobs_get_gating_edges() {
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1), (1, 3), (2, 4)]));
        let admitted = g.add_job(&job(2, &[(0, 1), (1, 3), (2, 4)]));
        assert_eq!(admitted, 3);
        assert_eq!(g.admitted_edges(), 3);
        // Queries sharing R1 are co-grouped.
        let members = g.group_members(100).expect("gated");
        assert!(members.contains(&100) && members.contains(&200));
    }

    #[test]
    fn gated_queries_fire_together() {
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1), (1, 3)]));
        g.add_job(&job(2, &[(0, 1), (1, 3)]));
        // First query of job 1 ready: partner not ready yet, so it holds.
        let fired = g.query_available(100, 0.0);
        assert!(fired.is_empty(), "waits for its gating partner");
        assert_eq!(g.state(100), QueryState::Ready);
        // Partner arrives: both fire together (co-scheduling on R1).
        let mut fired = g.query_available(200, 1.0);
        fired.sort_unstable();
        assert_eq!(fired, vec![100, 200]);
        assert_eq!(g.state(100), QueryState::Queue);
        assert_eq!(g.state(200), QueryState::Queue);
    }

    #[test]
    fn fig2_three_job_coscheduling() {
        // The paper's Fig. 2: J1 = R1 R3 R4, J2 = R2 R3 R4, J3 = R1 R3(R4…).
        // JAWS delays J2/J3 so R3 and R4 are each read once.
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1), (1, 3), (2, 4)]));
        g.add_job(&job(2, &[(0, 2), (1, 3), (2, 4)]));
        g.add_job(&job(3, &[(0, 1), (1, 3), (2, 4)]));
        // R1 gating: jobs 1 and 3 (first queries). Job 2's R2 is ungated.
        let f1 = g.query_available(100, 0.0);
        assert!(f1.is_empty());
        let f2 = g.query_available(200, 0.0);
        assert_eq!(f2, vec![200], "R2 has no partner: runs immediately");
        let mut f3 = g.query_available(300, 0.0);
        f3.sort_unstable();
        assert_eq!(f3, vec![100, 300], "R1 pair fires together");
        // Complete the first wave; the R3 group is j1q2 + j2q2 + j3q2.
        g.query_done(200);
        g.query_done(100);
        g.query_done(300);
        let m = g
            .group_members(101)
            .expect("R3 gated across all three jobs");
        assert_eq!(m.len(), 3, "transitivity merged all three R3 queries");
        // R3 queries become available one by one; only the last arrival fires
        // the whole group.
        assert!(g.query_available(101, 1.0).is_empty());
        assert!(g.query_available(201, 1.0).is_empty());
        let mut f = g.query_available(301, 1.0);
        f.sort_unstable();
        assert_eq!(f, vec![101, 201, 301]);
    }

    #[test]
    fn crossing_alignments_cannot_deadlock() {
        // J1 visits A then B; J2 visits B then A. Gating both pairs would
        // deadlock (each waits for the other's later query). The NW alignment
        // itself is monotone, so at most one pair aligns — and the DAG check
        // guards the transitive case.
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1), (1, 2)]));
        g.add_job(&job(2, &[(1, 2), (0, 1)]));
        assert!(g.admitted_edges() <= 1);
        // Whatever was admitted, the schedule must complete:
        let mut done = 0;
        let mut available: Vec<QueryId> = vec![100, 200];
        for &q in &available {
            g.query_available(q, 0.0);
        }
        // Drive to completion, force-releasing if a gate would stall us.
        let mut now = 0.0;
        let mut next: Vec<QueryId> = vec![101, 201];
        for _ in 0..10 {
            let queued: Vec<QueryId> = [100, 101, 200, 201]
                .iter()
                .copied()
                .filter(|&q| g.state(q) == QueryState::Queue)
                .collect();
            if queued.is_empty() {
                now += 100_000.0;
                g.release_stale(now);
                continue;
            }
            for q in queued {
                g.query_done(q);
                done += 1;
                if q == 100 && !available.contains(&101) {
                    available.push(101);
                    g.query_available(101, now);
                    next.retain(|&x| x != 101);
                }
                if q == 200 && !available.contains(&201) {
                    available.push(201);
                    g.query_available(201, now);
                    next.retain(|&x| x != 201);
                }
            }
            if done == 4 {
                break;
            }
        }
        assert_eq!(done, 4, "schedule completed without deadlock");
    }

    #[test]
    fn one_gating_partner_per_job_pair() {
        // A group never holds two queries of one job.
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1), (1, 1)])); // same region twice
        g.add_job(&job(2, &[(0, 1), (1, 1)]));
        for qid in [100u64, 101, 200, 201] {
            if let Some(members) = g.group_members(qid) {
                let mut jobs: Vec<u64> = members.iter().map(|m| m / 100).collect();
                jobs.sort_unstable();
                jobs.dedup();
                assert_eq!(jobs.len(), members.len(), "duplicate job in group");
            }
        }
    }

    #[test]
    fn completed_partner_does_not_block() {
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1), (1, 3)]));
        g.add_job(&job(2, &[(0, 1), (1, 3)]));
        g.query_available(100, 0.0);
        g.query_available(200, 0.0);
        g.query_done(100);
        g.query_done(200);
        // Both R3 queries gated; complete job 1's side first.
        g.query_available(101, 1.0);
        let f = g.query_available(201, 2.0);
        assert_eq!(f.len(), 2);
        g.query_done(101);
        // Job 2's query now alone in a dissolved group; still completes.
        g.query_done(201);
        assert_eq!(g.state(201), QueryState::Done);
    }

    #[test]
    fn stale_gates_are_released() {
        let mut g = GatingGraph::new(GatingConfig {
            gate_timeout_ms: 1_000.0,
            max_align_jobs: 64,
        });
        g.add_job(&job(1, &[(0, 1), (1, 3)]));
        g.add_job(&job(2, &[(0, 1), (1, 3)]));
        g.query_available(100, 0.0);
        assert_eq!(g.state(100), QueryState::Ready);
        // Partner never arrives; the valve opens after the timeout.
        assert!(g.release_stale(500.0).is_empty(), "not stale yet");
        let released = g.release_stale(2_000.0);
        assert_eq!(released, vec![100]);
        assert_eq!(g.state(100), QueryState::Queue);
        assert_eq!(g.forced_releases(), 1);
        // The abandoned partner is no longer gated either.
        let f = g.query_available(200, 3_000.0);
        assert_eq!(f, vec![200], "dissolved group does not hold the partner");
    }

    #[test]
    fn group_pruning_on_done_unblocks_survivors() {
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1)]));
        // Single-query jobs never gate (len < 2): no group.
        assert!(g.group_members(100).is_none());
    }

    #[test]
    fn batched_jobs_never_gate() {
        let mut g = graph();
        let mut b = job(1, &[(0, 1), (0, 1), (0, 1)]);
        b.kind = JobKind::Batched;
        assert_eq!(g.add_job(&b), 0);
        let mut b2 = job(2, &[(0, 1), (0, 1)]);
        b2.kind = JobKind::Batched;
        assert_eq!(g.add_job(&b2), 0);
        assert_eq!(g.admitted_edges(), 0);
    }

    #[test]
    fn gating_numbers_count_upstream_groups() {
        // Mirror of Fig. 3: J1 = R1 R3 R4 aligned with J2 = R1 R2 R3 R4.
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1), (1, 3), (2, 4)]));
        g.add_job(&job(2, &[(0, 1), (3, 2), (1, 3), (2, 4)]));
        // j1's R4 query (102) is gated and has two prior groups (R1, R3) on
        // its path.
        assert_eq!(g.gating_number(100), 0, "first gated query");
        assert!(g.gating_number(101) >= 1);
        assert!(g.gating_number(102) >= 2);
    }

    #[test]
    fn late_arriving_job_aligns_against_remaining_suffix_only() {
        let mut g = graph();
        g.add_job(&job(1, &[(0, 1), (1, 3), (2, 4)]));
        // Job 1 completes its first query before job 2 arrives.
        g.query_available(100, 0.0);
        g.query_done(100);
        g.add_job(&job(2, &[(0, 1), (1, 3), (2, 4)]));
        // R1 cannot gate anymore (done); R3/R4 can.
        assert!(g.group_members(200).is_none(), "R1 edge skipped");
        assert!(g.group_members(201).is_some(), "R3 edge admitted");
        assert!(g.group_members(202).is_some(), "R4 edge admitted");
    }

    #[test]
    fn many_random_jobs_never_deadlock() {
        // Property-style stress: random jobs over few regions; drive every
        // query through availability in job order; with periodic stale
        // release the graph must drain completely.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for round in 0..20 {
            let mut g = GatingGraph::new(GatingConfig {
                gate_timeout_ms: 10.0,
                max_align_jobs: 64,
            });
            let mut jobs = Vec::new();
            for jid in 1..=6u64 {
                let len = rng.gen_range(1..6);
                let spec: Vec<(u32, u64)> =
                    (0..len).map(|i| (i as u32, rng.gen_range(0..4))).collect();
                let j = job(jid, &spec);
                g.add_job(&j);
                jobs.push(j);
            }
            let mut cursor: HashMap<u64, usize> = jobs.iter().map(|j| (j.id, 0usize)).collect();
            for j in &jobs {
                g.query_available(j.queries[0].id, 0.0);
            }
            let mut now = 0.0;
            let mut remaining: usize = jobs.iter().map(|j| j.queries.len()).sum();
            let mut guard = 0;
            while remaining > 0 {
                guard += 1;
                assert!(guard < 10_000, "round {round}: stuck with {remaining} left");
                let queued: Vec<(u64, QueryId)> = jobs
                    .iter()
                    .flat_map(|j| j.queries.iter().map(move |q| (j.id, q.id)))
                    .filter(|&(_, q)| g.state(q) == QueryState::Queue)
                    .collect();
                if queued.is_empty() {
                    now += 100.0;
                    g.release_stale(now);
                    continue;
                }
                for (jid, qid) in queued {
                    g.query_done(qid);
                    remaining -= 1;
                    let c = cursor.get_mut(&jid).unwrap();
                    *c += 1;
                    let j = jobs.iter().find(|j| j.id == jid).unwrap();
                    if *c < j.queries.len() {
                        g.query_available(j.queries[*c].id, now);
                    }
                }
            }
        }
    }
}

impl GatingGraph {
    /// Renders the current precedence/gating graph in Graphviz DOT format:
    /// solid arrows are precedence edges within a job, dashed undirected
    /// edges connect gating-group members, and node fill encodes the
    /// WAIT/READY/QUEUE/DONE state. Intended for debugging schedules — pipe
    /// into `dot -Tsvg`.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "graph jaws_gating {\n  rankdir=LR;\n  node [shape=circle fontsize=10];\n",
        );
        // Precedence chains per job (BTreeMap iteration: ascending JobId).
        for (jid, job) in &self.jobs {
            let _ = writeln!(out, "  subgraph cluster_job_{jid} {{ label=\"job {jid}\";");
            for q in &job.queries {
                if let Some(e) = self.queries.get(&q.id) {
                    let fill = match e.state {
                        QueryState::Wait => "white",
                        QueryState::Ready => "lightyellow",
                        QueryState::Queue => "lightblue",
                        QueryState::Done => "lightgray",
                    };
                    let _ = writeln!(
                        out,
                        "    q{} [style=filled fillcolor={fill} label=\"{}\\n{:?}\"];",
                        q.id, q.id, e.state
                    );
                }
            }
            for w in job.queries.windows(2) {
                if let [a, b] = w {
                    let _ = writeln!(out, "    q{} -- q{} [dir=forward];", a.id, b.id);
                }
            }
            let _ = writeln!(out, "  }}");
        }
        // Gating groups as dashed cliques (BTreeMap iteration: ascending id).
        for members in self.groups.values() {
            for w in members.windows(2) {
                if let [a, b] = w {
                    let _ = writeln!(
                        out,
                        "  q{a} -- q{b} [style=dashed color=red constraint=false];"
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use jaws_morton::MortonKey;
    use jaws_workload::{Footprint, QueryOp};

    #[test]
    fn dot_export_lists_every_query_and_gate() {
        let q = |id: u64, ts: u32, r: u64| Query {
            id,
            user: 0,
            op: QueryOp::ParticleTrack,
            timestep: ts,
            footprint: Footprint::from_pairs([(MortonKey(r), 10u32)]),
        };
        let job = |jid: u64, base: u64| Job {
            id: jid,
            user: jid as u32,
            kind: JobKind::Ordered,
            campaign: jid,
            queries: vec![q(base, 0, 1), q(base + 1, 1, 3)],
            arrival_ms: 0.0,
            think_ms: 0.0,
        };
        let mut g = GatingGraph::new(GatingConfig::default());
        g.add_job(&job(1, 100));
        g.add_job(&job(2, 200));
        g.query_available(100, 0.0);
        let dot = g.to_dot();
        assert!(dot.starts_with("graph jaws_gating"));
        for qid in [100, 101, 200, 201] {
            assert!(dot.contains(&format!("q{qid} [")), "missing node q{qid}");
        }
        assert!(dot.contains("style=dashed"), "missing gating edges");
        assert!(dot.contains("Ready"), "state rendering missing");
        assert!(dot.ends_with("}\n"));
    }
}
