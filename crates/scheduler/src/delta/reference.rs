//! Full-scan **reference oracle** for the delta-propagation core.
//!
//! Every function here recomputes a derived view from the base queue state
//! alone — O(pending atoms) per call, no arrangements, no caches. They exist
//! for exactly two callers:
//!
//! * the equivalence property tests, which assert after every step of a
//!   random op sequence that `DeltaCore`'s incremental
//!   views match these recomputes **bit for bit**;
//! * the `dispatch_scaling` bench, which measures the O(n) cost the delta
//!   path replaced.
//!
//! No production scheduler code may call into this module — dispatch cost
//! must stay proportional to what changed (the delta path), not to queue
//! size. The fold orders here (sorted `(timestep, morton)` atom order,
//! max-normalizers folded over `finite_or_zero`) are the *definition* the
//! incremental path reproduces; change them only together.

use crate::policy::Residency;
use crate::queues::{finite_or_zero, WorkloadManager};
use jaws_morton::AtomId;
use std::collections::{BTreeMap, HashMap};

use super::{blend, UtilitySnapshot};

/// Eq. 2 over every pending atom by full scan: `(atom, U_e)` with both terms
/// max-normalized before blending, in sorted `(timestep, morton)` order.
/// `alpha = 0` is pure contention order, `alpha = 1` pure arrival (age)
/// order. The oracle for [`WorkloadManager::aged_utilities`].
pub fn aged_utilities(
    wm: &WorkloadManager,
    now_ms: f64,
    alpha: f64,
    residency: &dyn Residency,
) -> Vec<(AtomId, f64)> {
    debug_assert!((0.0..=1.0).contains(&alpha));
    let raw: Vec<(AtomId, f64, f64)> = wm
        .pending_atom_ids()
        .into_iter()
        .map(|a| {
            (
                a,
                wm.workload_throughput(&a, residency.is_resident(&a)),
                wm.age(&a, now_ms),
            )
        })
        .collect();
    debug_assert!(
        raw.iter().all(|&(_, u, e)| u.is_finite() && e.is_finite()),
        "non-finite utility/age reached the Eq. 2 normalization fold"
    );
    let max_u = raw
        .iter()
        .map(|&(_, u, _)| finite_or_zero(u))
        .fold(0.0f64, f64::max);
    let max_e = raw
        .iter()
        .map(|&(_, _, e)| finite_or_zero(e))
        .fold(0.0f64, f64::max);
    raw.into_iter()
        .map(|(a, u, e)| (a, blend(u, e, max_u, max_e, alpha)))
        .collect()
}

/// Mean workload throughput per timestep by full scan (workload-free atoms
/// contribute zero, the divisor is the full per-timestep atom count). The
/// oracle for [`WorkloadManager::timestep_means`].
pub fn timestep_means(wm: &WorkloadManager, residency: &dyn Residency) -> BTreeMap<u32, f64> {
    let mut sum: BTreeMap<u32, f64> = BTreeMap::new();
    for a in wm.pending_atom_ids() {
        let u = wm.workload_throughput(&a, residency.is_resident(&a));
        *sum.entry(a.timestep).or_insert(0.0) += u;
    }
    let n = wm.params().atoms_per_timestep.max(1) as f64;
    sum.into_iter().map(|(t, s)| (t, s / n)).collect()
}

/// The URC oracle snapshot by full rebuild: every pending atom's Eq. 1 value
/// plus its timestep's mean. The oracle for
/// [`WorkloadManager::utility_snapshot`].
pub fn utility_snapshot(wm: &WorkloadManager, residency: &dyn Residency) -> UtilitySnapshot {
    let means: HashMap<u32, f64> = timestep_means(wm, residency).into_iter().collect();
    let atoms: HashMap<AtomId, f64> = wm
        .pending_atom_ids()
        .into_iter()
        .map(|a| {
            let u = wm.workload_throughput(&a, residency.is_resident(&a));
            (a, u)
        })
        .collect();
    UtilitySnapshot::from_parts(atoms, means)
}
