//! The delta-propagation core: every piece of *derived* scheduler state,
//! maintained incrementally behind one typed update stream.
//!
//! # Why a single layer
//!
//! Schedulers consult the Eq. 1 / Eq. 2 metrics on every dispatch, but each
//! dispatch changes only a handful of atoms (the batch taken, the residency
//! flips its reads caused, the sub-queries that arrived). Before this module
//! existed, the incremental caches that exploited that observation — the
//! per-atom Eq. 1 values, the per-timestep aggregates, the clamped-age
//! indexes, the URC snapshot, the residency change log — were hand-maintained
//! fields scattered through `queues.rs`, each with its own invalidation
//! story. This module folds them into one **delta-propagation core** in the
//! style of differential dataflow: base-state changes enter as typed
//! [`Delta`]s through a single `DeltaCore::apply` entry point, flow into
//! *arrangements* (maintained indexes over the update stream), and leave
//! through read-only views. Dispatch cost is proportional to what changed,
//! not to queue size.
//!
//! # Delta taxonomy
//!
//! | Delta                  | Source                         | Effect |
//! |------------------------|--------------------------------|--------|
//! | [`Delta::Arrived`]     | `WorkloadManager::enqueue`     | atom joins the per-timestep sets, marked dirty |
//! | [`Delta::Taken`]       | `WorkloadManager::take_atom`   | atom leaves the sets, marked dirty |
//! | [`Delta::Completed`]   | `Scheduler::on_query_complete` | bookkeeping counter (queue state already settled at take time) |
//! | [`Delta::ResidencyChanged`] | [`Residency`] change tracking (internal) | atom marked dirty iff pending and φ actually flipped |
//! | [`Delta::Aged`]        | every timed read               | advances the clock watermark (ages derive from `now` lazily) |
//!
//! # Arrangements
//!
//! `DeltaCore` owns: the per-atom Eq. 1 cache and the residency view it was
//! computed under; the per-timestep pending-atom sets (Morton order — the
//! canonical fold order); the per-timestep aggregates (ΣU, max U, Σoldest,
//! min/max oldest); the lazily built clamped-age prefix indexes; and the
//! `Arc`-backed [`UtilitySnapshot`] the URC cache policy consumes. All of it
//! is private: the only mutation path is `DeltaCore::apply` plus the
//! integration step that folds dirty atoms back in (jaws-lint rule A001
//! enforces this layering textually, the module privacy enforces it
//! structurally).
//!
//! # Bitwise equivalence
//!
//! Floating-point sums are *refolded* per dirty timestep in sorted-atom
//! order — never drifted with `+=`/`-=` across dispatches — so every
//! incremental result is bit-for-bit identical to the full-scan
//! [`mod@reference`] oracle, which is retained **only** for tests, proptests and
//! the `dispatch_scaling` bench. No production caller may use it. The
//! interleaving proptests in `queues.rs` and the `delta_oracle` integration
//! test assert the equivalence after every step of random
//! enqueue/take/complete/residency-flip/clock-advance sequences.
//!
//! # Generation counter and no-op reads
//!
//! Every state-changing delta bumps a generation counter. The coarse
//! timestep choice and the Eq. 2 max-normalizers are memoized on
//! `(generation, now, α)`, so a dispatch that changed nothing — gate rulings,
//! `AlphaController` probes, repeated snapshot reads — performs **zero**
//! arrangement folds and zero coarse scans ([`DeltaStats`] counts both; a
//! regression test pins the zero).

pub mod reference;

use crate::policy::Residency;
use crate::queues::{finite_or_zero, MetricParams};
use jaws_cache::{UtilityOracle, UtilityRank};
use jaws_morton::AtomId;
use jaws_workload::QueryId;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Eq. 1 for one queue. Shared by the reference and incremental paths so the
/// two can never diverge.
pub(crate) fn eq1(params: &MetricParams, positions: u64, resident: bool) -> f64 {
    debug_assert!(
        params.atom_read_ms.is_finite() && params.position_compute_ms.is_finite(),
        "non-finite cost model: T_b={} T_m={}",
        params.atom_read_ms,
        params.position_compute_ms
    );
    let w = positions as f64;
    let phi = if resident { 0.0 } else { 1.0 };
    let denom = params.atom_read_ms * phi + params.position_compute_ms * w;
    if denom > 0.0 {
        return finite_or_zero(w / denom);
    }
    // Degenerate cost model: a resident atom with zero per-position compute
    // cost (or an all-zero model). An "infinite" throughput sentinel would
    // poison max-normalization — every other atom's normalized utility
    // collapses toward 0 and Eq. 2 degenerates to pure age order. Instead
    // rank the atom as if it still cost half an atom read: finite, monotone
    // in ΣW, and on the same scale as disk atoms (exactly twice the utility
    // of an equally loaded non-resident atom in the T_m → 0 limit).
    let half_read = 0.5 * params.atom_read_ms;
    if half_read > 0.0 {
        finite_or_zero(w / half_read)
    } else {
        w
    }
}

/// Eq. 2 blend of a max-normalized throughput and age. Shared by the
/// reference and incremental paths so the two can never diverge.
pub(crate) fn blend(u: f64, e: f64, max_u: f64, max_e: f64, alpha: f64) -> f64 {
    let un = if max_u > 0.0 { u / max_u } else { 0.0 };
    let en = if max_e > 0.0 { e / max_e } else { 0.0 };
    un * (1.0 - alpha) + en * alpha
}

/// One typed update entering the delta-propagation core. See the module docs
/// for the taxonomy table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delta {
    /// A sub-query was enqueued on `atom` (its queue totals changed).
    Arrived {
        /// The atom whose workload queue grew.
        atom: AtomId,
    },
    /// `atom`'s whole queue was taken for execution.
    Taken {
        /// The atom whose workload queue was drained.
        atom: AtomId,
    },
    /// A query's last sub-query finished executing. Queue state settled at
    /// take time; this is lifecycle bookkeeping for [`DeltaStats`].
    Completed {
        /// The completed query.
        query: QueryId,
    },
    /// An atom's buffer-pool residency (φ of Eq. 1) flipped. Generated
    /// internally from the [`Residency`] change-tracking protocol during
    /// integration — external callers never construct these.
    ResidencyChanged {
        /// The atom whose residency flipped.
        atom: AtomId,
        /// Its new residency.
        resident: bool,
    },
    /// The simulated clock advanced. Ages derive from `now` lazily at read
    /// time, so this only moves the watermark — no arrangement is touched.
    Aged {
        /// The new clock value, ms.
        now_ms: f64,
    },
}

/// Counters over the delta stream and the maintenance work it caused.
/// Monotone; consumers diff two snapshots to measure one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DeltaStats {
    /// [`Delta::Arrived`] applied.
    pub arrived: u64,
    /// [`Delta::Taken`] applied.
    pub taken: u64,
    /// [`Delta::Completed`] applied.
    pub completed: u64,
    /// [`Delta::ResidencyChanged`] applied (including no-op flips for
    /// non-pending atoms).
    pub residency_changed: u64,
    /// [`Delta::Aged`] applied.
    pub aged: u64,
    /// Per-atom Eq. 1 recomputations performed by integration.
    pub eq1_recomputes: u64,
    /// Per-timestep aggregate refolds performed by integration.
    pub ts_refolds: u64,
    /// Residency probes issued for untracked/volatile sources (the
    /// conservative fallback of the change-tracking protocol).
    pub residency_probes: u64,
    /// Coarse-level O(#timesteps) scans that actually ran (memo misses).
    pub coarse_scans: u64,
}

/// What the integration step needs from the base state (the workload queues
/// owned by `WorkloadManager`): the cost constants and per-atom queue totals.
/// Read-only by construction — the delta layer can never mutate base state,
/// and the base can never reach into the arrangements.
pub(crate) trait QueueBase {
    /// Eq. 1 cost constants.
    fn metric_params(&self) -> &MetricParams;
    /// `(ΣW, oldest enqueue ms)` of one atom's queue, `None` if queue-less.
    fn queue_info(&self, atom: &AtomId) -> Option<QueueInfo>;
}

/// Per-atom queue totals served by [`QueueBase::queue_info`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueInfo {
    /// Cached ΣW (total positions) — the numerator of Eq. 1.
    pub positions: u64,
    /// Enqueue time of the oldest sub-query, ms.
    pub oldest_ms: f64,
}

/// Per-timestep aggregates, refolded (in sorted-atom order) whenever any atom
/// of the timestep changes. Everything the coarse scheduling level and the
/// global normalizers need is answerable from these in O(#timesteps).
#[derive(Debug, Clone, Copy)]
struct TsAgg {
    /// Σ of cached Eq. 1 values over pending atoms of the timestep.
    sum_u: f64,
    /// max of cached Eq. 1 values.
    max_u: f64,
    /// Pending atom count.
    count: u64,
    /// Σ of per-atom oldest enqueue times, ms.
    sum_oldest: f64,
    /// min/max of per-atom oldest enqueue times, ms.
    min_oldest: f64,
    max_oldest: f64,
    /// Refold generation stamp, for invalidating derived lazy indexes.
    epoch: u64,
}

/// Lazily built per-timestep index for the clamped-age case of
/// [`DeltaCore::best_timestep`]: oldest enqueue times sorted ascending with
/// their running prefix sums. Lets Σ (now − oldest)⁺ be answered in
/// O(log n) — atoms enqueued at or before `now` contribute through the
/// prefix closed form, later ones contribute exactly zero.
#[derive(Debug, Clone)]
struct AgeIndex {
    /// The [`TsAgg::epoch`] this index was built against.
    epoch: u64,
    /// Per-atom oldest enqueue times, ascending (`total_cmp` order).
    oldest: Vec<f64>,
    /// `prefix[i]` = Σ `oldest[..=i]`, folded in ascending order.
    prefix: Vec<f64>,
}

/// Memo of the coarse timestep choice, keyed on the state generation and the
/// read parameters. A hit means nothing changed since the identical question
/// was last answered, so the cached answer is returned without any scan.
#[derive(Debug, Clone, Copy)]
struct CoarseMemo {
    generation: u64,
    now_bits: u64,
    alpha_bits: u64,
    best: Option<u32>,
}

/// Memo of the Eq. 2 max-normalizers, keyed like [`CoarseMemo`] minus α
/// (the normalizers do not depend on it).
#[derive(Debug, Clone, Copy)]
struct NormMemo {
    generation: u64,
    now_bits: u64,
    max_u: f64,
    max_e: f64,
}

/// The delta-propagation core: every maintained arrangement, mutable only
/// through [`DeltaCore::apply`] and the integration step. See module docs.
// lint: arrangement
#[derive(Debug)]
pub(crate) struct DeltaCore {
    /// Cached Eq. 1 value per pending atom, as of the last integration.
    eq1_cache: HashMap<AtomId, f64>,
    /// The residency each `eq1_cache` entry was computed with.
    resident_view: HashMap<AtomId, bool>,
    /// Pending atoms per timestep in Morton order — the canonical fold order.
    ts_atoms: BTreeMap<u32, BTreeSet<AtomId>>,
    /// Per-timestep aggregates (lazily refolded).
    ts_aggs: BTreeMap<u32, TsAgg>,
    /// Clamped-age indexes, built on demand (lookup-only, never iterated).
    age_indexes: HashMap<u32, AgeIndex>,
    /// Atoms whose inputs changed since the last integration.
    dirty_atoms: BTreeSet<AtomId>,
    /// Reusable scratch listing the timesteps touched by one integration.
    /// `AtomId`'s order is `(timestep, morton)`, so a pass over `dirty_atoms`
    /// emits timesteps non-decreasing and a last-value check dedups them;
    /// reusing the vector keeps `integrate` alloc-free at steady state.
    dirty_ts_scratch: Vec<u32>,
    /// Residency epoch the view is synced to (`None` = never/volatile).
    synced_epoch: Option<u64>,
    /// Refold generation counter feeding [`TsAgg::epoch`].
    refold_epoch: u64,
    /// Arc-backed URC snapshot view, patched in place on integration.
    urc_view: UtilitySnapshot,
    /// State generation: bumps on every delta that can change a read result.
    generation: u64,
    /// Clock watermark from [`Delta::Aged`], ms.
    clock_ms: f64,
    /// Monotone counters over the stream and its maintenance work.
    delta_stats: DeltaStats,
    /// Memoized coarse timestep choice.
    coarse_memo: Option<CoarseMemo>,
    /// Memoized Eq. 2 normalizers.
    norm_memo: Option<NormMemo>,
}

impl DeltaCore {
    /// An empty core: no pending atoms, generation zero.
    pub(crate) fn new() -> Self {
        DeltaCore {
            eq1_cache: HashMap::new(),
            resident_view: HashMap::new(),
            ts_atoms: BTreeMap::new(),
            ts_aggs: BTreeMap::new(),
            age_indexes: HashMap::new(),
            dirty_atoms: BTreeSet::new(),
            dirty_ts_scratch: Vec::new(),
            synced_epoch: None,
            refold_epoch: 0,
            urc_view: UtilitySnapshot::empty(),
            generation: 0,
            clock_ms: 0.0,
            delta_stats: DeltaStats::default(),
            coarse_memo: None,
            norm_memo: None,
        }
    }

    /// The single mutation entry point: folds one delta into the
    /// arrangements. O(log n) bookkeeping — the float work is deferred to
    /// the next integration so a burst of deltas costs one refold, not many.
    pub(crate) fn apply(&mut self, delta: Delta) {
        match delta {
            Delta::Arrived { atom } => {
                self.delta_stats.arrived += 1;
                self.ts_atoms.entry(atom.timestep).or_default().insert(atom);
                self.dirty_atoms.insert(atom);
                self.generation += 1;
            }
            Delta::Taken { atom } => {
                self.delta_stats.taken += 1;
                if let Some(set) = self.ts_atoms.get_mut(&atom.timestep) {
                    set.remove(&atom);
                    if set.is_empty() {
                        self.ts_atoms.remove(&atom.timestep);
                    }
                }
                self.dirty_atoms.insert(atom);
                self.generation += 1;
            }
            Delta::Completed { query: _ } => {
                self.delta_stats.completed += 1;
            }
            Delta::ResidencyChanged { atom, resident } => {
                self.delta_stats.residency_changed += 1;
                let pending = self
                    .ts_atoms
                    .get(&atom.timestep)
                    .is_some_and(|set| set.contains(&atom));
                if pending && self.resident_view.get(&atom) != Some(&resident) {
                    self.dirty_atoms.insert(atom);
                    self.generation += 1;
                }
            }
            Delta::Aged { now_ms } => {
                self.delta_stats.aged += 1;
                // Watermark only: ages derive from `now` lazily at read time,
                // so the clock does not invalidate the generation (memos key
                // on `now` themselves).
                self.clock_ms = now_ms;
            }
        }
    }

    /// Counter snapshot.
    pub(crate) fn stats(&self) -> DeltaStats {
        self.delta_stats
    }

    /// Current state generation (bumps on every state-changing delta).
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Latest [`Delta::Aged`] watermark, ms.
    pub(crate) fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Number of timesteps with pending atoms.
    pub(crate) fn timestep_count(&self) -> usize {
        self.ts_atoms.len()
    }

    /// Pending atoms of one timestep, Morton order.
    pub(crate) fn atoms_in_timestep(&self, timestep: u32) -> Vec<AtomId> {
        self.ts_atoms
            .get(&timestep)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Residency sync: turns the [`Residency`] change-tracking protocol (or
    /// the conservative full probe, for untracked sources) into
    /// [`Delta::ResidencyChanged`] updates through [`Self::apply`].
    fn sync_residency(&mut self, residency: &dyn Residency) {
        let epoch = residency.residency_epoch();
        let in_sync = matches!((epoch, self.synced_epoch), (Some(e), Some(s)) if e == s);
        if in_sync {
            return;
        }
        let changes = match self.synced_epoch {
            Some(since) if epoch.is_some() => residency.residency_changes_since(since),
            _ => None,
        };
        match changes {
            Some(list) => {
                for (atom, resident) in list {
                    self.apply(Delta::ResidencyChanged { atom, resident });
                }
            }
            None => {
                // Untracked source or truncated log: re-probe every pending
                // atom (cheap boolean probe; only actual flips dirty).
                let pending: Vec<AtomId> = self
                    .ts_atoms
                    .values()
                    .flat_map(|set| set.iter().copied())
                    .collect();
                for atom in pending {
                    self.delta_stats.residency_probes += 1;
                    let resident = residency.is_resident(&atom);
                    if self.resident_view.get(&atom) != Some(&resident) {
                        self.apply(Delta::ResidencyChanged { atom, resident });
                    }
                }
            }
        }
        self.synced_epoch = epoch;
    }

    /// Integration: brings every arrangement up to date with the deltas
    /// applied since the last call, recomputing only dirty atoms and
    /// refolding only their timesteps. O(Δ) plus O(m_ts) per dirty timestep.
    pub(crate) fn integrate(&mut self, base: &dyn QueueBase, residency: &dyn Residency) {
        self.sync_residency(residency);
        if self.dirty_atoms.is_empty() {
            return;
        }
        // 1. Recompute dirty atoms (and drop taken ones).
        let params = *base.metric_params();
        let mut dirty_ts = std::mem::take(&mut self.dirty_ts_scratch);
        dirty_ts.clear();
        let atoms_mut = Arc::make_mut(&mut self.urc_view.atoms);
        for &atom in &self.dirty_atoms {
            if dirty_ts.last() != Some(&atom.timestep) {
                dirty_ts.push(atom.timestep);
            }
            if let Some(info) = base.queue_info(&atom) {
                let res = residency.is_resident(&atom);
                let u = eq1(&params, info.positions, res);
                self.delta_stats.eq1_recomputes += 1;
                self.resident_view.insert(atom, res);
                self.eq1_cache.insert(atom, u);
                atoms_mut.insert(atom, u);
            } else {
                self.resident_view.remove(&atom);
                self.eq1_cache.remove(&atom);
                atoms_mut.remove(&atom);
            }
        }
        self.dirty_atoms.clear();
        // 2. Refold dirty timesteps in sorted-atom order — a full refold, not
        // a `+=`/`-=` adjustment, so the sums are bitwise identical to the
        // reference full-scan fold.
        let means_mut = Arc::make_mut(&mut self.urc_view.means);
        let n = params.atoms_per_timestep.max(1) as f64;
        self.refold_epoch += 1;
        for &ts in &dirty_ts {
            match self.ts_atoms.get(&ts) {
                Some(set) => {
                    self.delta_stats.ts_refolds += 1;
                    let mut agg = TsAgg {
                        sum_u: 0.0,
                        max_u: 0.0,
                        count: 0,
                        sum_oldest: 0.0,
                        min_oldest: f64::INFINITY,
                        max_oldest: f64::NEG_INFINITY,
                        epoch: self.refold_epoch,
                    };
                    for a in set {
                        let u = self.eq1_cache[a];
                        // lint: invariant — every atom in ts_atoms has a queue
                        let oldest = base
                            .queue_info(a)
                            .expect("pending atom has a queue")
                            .oldest_ms;
                        agg.sum_u += u;
                        agg.max_u = agg.max_u.max(u);
                        agg.count += 1;
                        agg.sum_oldest += oldest;
                        agg.min_oldest = agg.min_oldest.min(oldest);
                        agg.max_oldest = agg.max_oldest.max(oldest);
                    }
                    self.ts_aggs.insert(ts, agg);
                    means_mut.insert(ts, agg.sum_u / n);
                }
                None => {
                    self.ts_aggs.remove(&ts);
                    self.age_indexes.remove(&ts);
                    means_mut.remove(&ts);
                }
            }
        }
        self.dirty_ts_scratch = dirty_ts;
    }

    /// Global max-normalizers of Eq. 2 — `(max U_t, max E)` over all pending
    /// atoms — answered from the per-timestep aggregates in O(#timesteps),
    /// memoized on `(generation, now)` so clean repeat reads are O(1).
    fn normalizers(&mut self, now_ms: f64) -> (f64, f64) {
        if let Some(m) = self.norm_memo {
            if m.generation == self.generation && m.now_bits == now_ms.to_bits() {
                return (m.max_u, m.max_e);
            }
        }
        let mut max_u = 0.0f64;
        let mut min_oldest = f64::INFINITY;
        for agg in self.ts_aggs.values() {
            max_u = max_u.max(agg.max_u);
            min_oldest = min_oldest.min(agg.min_oldest);
        }
        let max_e = if min_oldest.is_finite() {
            (now_ms - min_oldest).max(0.0)
        } else {
            0.0
        };
        self.norm_memo = Some(NormMemo {
            generation: self.generation,
            now_bits: now_ms.to_bits(),
            max_u,
            max_e,
        });
        (max_u, max_e)
    }

    /// Lazily (re)builds the clamped-age index for one timestep. Only
    /// degenerate timesteps — some atom enqueued "after" the query's
    /// `now_ms` — ever pay for the O(n log n) build; the index is reused
    /// across calls until the timestep's aggregate refolds.
    pub(crate) fn ensure_age_index(&mut self, base: &dyn QueueBase, ts: u32) {
        let Some(agg) = self.ts_aggs.get(&ts) else {
            self.age_indexes.remove(&ts);
            return;
        };
        if self
            .age_indexes
            .get(&ts)
            .is_some_and(|ix| ix.epoch == agg.epoch)
        {
            return;
        }
        // A timestep with an aggregate always has pending atoms.
        let mut oldest: Vec<f64> = self.ts_atoms[&ts]
            .iter()
            .map(|a| {
                // lint: invariant — every atom in ts_atoms has a queue
                base.queue_info(a)
                    .expect("pending atom has a queue")
                    .oldest_ms
            })
            .collect();
        oldest.sort_by(|a, b| a.total_cmp(b));
        let mut prefix = Vec::with_capacity(oldest.len());
        let mut s = 0.0f64;
        for &o in &oldest {
            s += o;
            prefix.push(s);
        }
        self.age_indexes.insert(
            ts,
            AgeIndex {
                epoch: agg.epoch,
                oldest,
                prefix,
            },
        );
    }

    /// Σ (now − oldest)⁺ over one timestep's pending atoms, answered from the
    /// [`AgeIndex`] in O(log n): atoms enqueued at or before `now_ms`
    /// contribute through the prefix closed form, later ones exactly zero.
    /// Requires [`Self::ensure_age_index`] to have run for `ts`.
    pub(crate) fn clamped_age_sum(&self, ts: u32, now_ms: f64) -> f64 {
        let ix = &self.age_indexes[&ts];
        let cut = ix.oldest.partition_point(|&o| o <= now_ms);
        if cut == 0 {
            0.0
        } else {
            cut as f64 * now_ms - ix.prefix[cut - 1]
        }
    }

    /// Coarse level of two-level scheduling: the timestep with the highest
    /// summed aged utility (equivalently, the highest mean over its fixed
    /// atom count). Ties prefer the smaller timestep. O(#timesteps) after an
    /// O(Δ) integration — and O(1) on a clean generation (memoized).
    pub(crate) fn best_timestep(
        &mut self,
        base: &dyn QueueBase,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Option<u32> {
        debug_assert!((0.0..=1.0).contains(&alpha));
        self.integrate(base, residency);
        if let Some(m) = self.coarse_memo {
            if m.generation == self.generation
                && m.now_bits == now_ms.to_bits()
                && m.alpha_bits == alpha.to_bits()
            {
                return m.best;
            }
        }
        self.delta_stats.coarse_scans += 1;
        // Degenerate timesteps (some atom enqueued "after" now_ms, so ages
        // clamp) answer from a lazily built sorted-prefix index instead of
        // an O(n) exact fold on every call.
        let degenerate: Vec<u32> = self
            .ts_aggs
            .iter()
            .filter(|&(_, agg)| now_ms < agg.max_oldest)
            .map(|(&ts, _)| ts)
            .collect();
        for ts in degenerate {
            self.ensure_age_index(base, ts);
        }
        let (max_u, max_e) = self.normalizers(now_ms);
        let mut best: Option<(u32, f64)> = None;
        for (&ts, agg) in &self.ts_aggs {
            let sum_e = if now_ms >= agg.max_oldest {
                agg.count as f64 * now_ms - agg.sum_oldest
            } else {
                self.clamped_age_sum(ts, now_ms)
            };
            let su = if max_u > 0.0 { agg.sum_u / max_u } else { 0.0 };
            let se = if max_e > 0.0 { sum_e / max_e } else { 0.0 };
            let score = su * (1.0 - alpha) + se * alpha;
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((ts, score));
            }
        }
        let best = best.map(|(ts, _)| ts);
        self.coarse_memo = Some(CoarseMemo {
            generation: self.generation,
            now_bits: now_ms.to_bits(),
            alpha_bits: alpha.to_bits(),
            best,
        });
        best
    }

    /// Fine level of two-level scheduling: Eq. 2 for every pending atom of
    /// one timestep, in Morton order, written into `out` (cleared first) so
    /// the dispatch hot path reuses one buffer across calls. Per-atom values
    /// are bitwise identical to the corresponding
    /// [`reference::aged_utilities`] entries.
    pub(crate) fn timestep_aged_utilities_into(
        &mut self,
        base: &dyn QueueBase,
        timestep: u32,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
        out: &mut Vec<(AtomId, f64)>,
    ) {
        debug_assert!((0.0..=1.0).contains(&alpha));
        out.clear();
        self.integrate(base, residency);
        let (max_u, max_e) = self.normalizers(now_ms);
        let Some(set) = self.ts_atoms.get(&timestep) else {
            return;
        };
        out.reserve(set.len());
        for a in set {
            // lint: invariant — every atom in ts_atoms has a queue
            let oldest = base
                .queue_info(a)
                .expect("pending atom has a queue")
                .oldest_ms;
            let e = (now_ms - oldest).max(0.0);
            out.push((*a, blend(self.eq1_cache[a], e, max_u, max_e, alpha)));
        }
    }

    /// Eq. 2 over every pending atom, from the arrangements — same contract
    /// as [`reference::aged_utilities`] (modulo output order, which here is
    /// always sorted). The output is O(n) by definition; schedulers that only
    /// need an argmax use [`Self::best_atom`] instead.
    pub(crate) fn aged_utilities(
        &mut self,
        base: &dyn QueueBase,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Vec<(AtomId, f64)> {
        debug_assert!((0.0..=1.0).contains(&alpha));
        self.integrate(base, residency);
        let (max_u, max_e) = self.normalizers(now_ms);
        let mut out = Vec::new();
        for set in self.ts_atoms.values() {
            for a in set {
                // lint: invariant — every atom in ts_atoms has a queue
                let oldest = base
                    .queue_info(a)
                    .expect("pending atom has a queue")
                    .oldest_ms;
                let e = (now_ms - oldest).max(0.0);
                out.push((*a, blend(self.eq1_cache[a], e, max_u, max_e, alpha)));
            }
        }
        out
    }

    /// The single pending atom with the highest aged utility (ties prefer
    /// the smaller atom id) — LifeRaft's contention-order pick. Timesteps are
    /// visited in descending upper-bound order and pruned once no remaining
    /// timestep can beat the incumbent, so the common case inspects only the
    /// hottest timestep's atoms.
    pub(crate) fn best_atom(
        &mut self,
        base: &dyn QueueBase,
        now_ms: f64,
        alpha: f64,
        residency: &dyn Residency,
    ) -> Option<(AtomId, f64)> {
        debug_assert!((0.0..=1.0).contains(&alpha));
        self.integrate(base, residency);
        let (max_u, max_e) = self.normalizers(now_ms);
        // blend() is monotone in both terms, so a timestep's best atom is
        // bounded by blending its per-timestep maxima.
        let mut order: Vec<(f64, u32)> = self
            .ts_aggs
            .iter()
            .map(|(&ts, agg)| {
                let e_ub = (now_ms - agg.min_oldest).max(0.0);
                (blend(agg.max_u, e_ub, max_u, max_e, alpha), ts)
            })
            .collect();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut best: Option<(AtomId, f64)> = None;
        for &(ub, ts) in &order {
            if let Some((_, bs)) = best {
                // Strict: an exact tie with the bound could still hide an
                // atom with a smaller id.
                if bs > ub {
                    break;
                }
            }
            for a in &self.ts_atoms[&ts] {
                // lint: invariant — every atom in ts_atoms has a queue
                let oldest = base
                    .queue_info(a)
                    .expect("pending atom has a queue")
                    .oldest_ms;
                let e = (now_ms - oldest).max(0.0);
                let score = blend(self.eq1_cache[a], e, max_u, max_e, alpha);
                // Total order: (score via total_cmp, then smaller AtomId).
                let better = match best {
                    None => true,
                    Some((ba, bs)) => match score.total_cmp(&bs) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => *a < ba,
                        std::cmp::Ordering::Less => false,
                    },
                };
                if better {
                    best = Some((*a, score));
                }
            }
        }
        best
    }

    /// The URC oracle snapshot view: an O(Δ) integration followed by an O(1)
    /// `Arc` clone. Bitwise identical to [`reference::utility_snapshot`].
    pub(crate) fn snapshot(
        &mut self,
        base: &dyn QueueBase,
        residency: &dyn Residency,
    ) -> UtilitySnapshot {
        self.integrate(base, residency);
        self.urc_view.clone()
    }

    /// Per-timestep means view. Bitwise identical to
    /// [`reference::timestep_means`].
    pub(crate) fn timestep_means(
        &mut self,
        base: &dyn QueueBase,
        residency: &dyn Residency,
    ) -> BTreeMap<u32, f64> {
        self.integrate(base, residency);
        // The snapshot map is keyed storage (never iterated for decisions);
        // collecting into a BTreeMap re-establishes sorted order for callers.
        self.urc_view
            .means
            .iter() // lint: sorted — collected into a BTreeMap below
            .map(|(&t, &m)| (t, m))
            .collect::<BTreeMap<u32, f64>>()
    }
}

/// A point-in-time ranking of pending atoms, consumed by the URC cache policy
/// through the [`UtilityOracle`] interface. Backed by shared maps, so cloning
/// one is O(1) and the delta core can patch its own copy in place between
/// dispatches.
#[derive(Debug, Clone)]
pub struct UtilitySnapshot {
    atoms: Arc<HashMap<AtomId, f64>>,
    means: Arc<HashMap<u32, f64>>,
}

impl UtilitySnapshot {
    /// A snapshot with no pending workload: every atom ranks
    /// [`UtilityRank::ZERO`], so URC degrades to plain LRU. Used by
    /// schedulers that keep no workload queues (NoShare).
    pub fn empty() -> Self {
        UtilitySnapshot {
            atoms: Arc::new(HashMap::new()),
            means: Arc::new(HashMap::new()),
        }
    }

    /// Builds a snapshot from already-computed maps — the [`reference`]
    /// oracle's constructor. Production code receives snapshots from
    /// [`DeltaCore::snapshot`] instead.
    pub(crate) fn from_parts(atoms: HashMap<AtomId, f64>, means: HashMap<u32, f64>) -> Self {
        UtilitySnapshot {
            atoms: Arc::new(atoms),
            means: Arc::new(means),
        }
    }
}

impl UtilityOracle<AtomId> for UtilitySnapshot {
    fn rank(&self, key: &AtomId) -> UtilityRank {
        match self.atoms.get(key) {
            Some(&u) => UtilityRank {
                timestep_mean: self.means.get(&key.timestep).copied().unwrap_or(0.0),
                atom_utility: u,
            },
            None => UtilityRank::ZERO,
        }
    }
}
