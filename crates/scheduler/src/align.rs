//! Pairwise job alignment via the Needleman–Wunsch dynamic program (§IV-B).
//!
//! "The algorithm aligns queries that exhibit data sharing between the two
//! jobs using the following scoring system: for queries qᵢⱼ and qₖₗ, let sⱼₗ
//! be 1 if they exhibit data sharing and 0 otherwise, while the penalty for
//! skipping a query from either job is 0. The goal is to find an alignment
//! between queries that maximizes this score. Each alignment translates into
//! a gating edge."
//!
//! The recurrence is exactly the paper's: mᵢₖ = max{mᵢ₋₁,ₖ₋₁ + sᵢₖ, mᵢ,ₖ₋₁,
//! mᵢ₋₁,ₖ}, computed bottom-up, with a traceback that extracts the matched
//! pairs. Because alignments are monotone by construction, the resulting
//! gating edges between two jobs can never cross — the precedence-violation
//! condition of Fig. 4, lines 10–13, is structurally satisfied for each pair.

use jaws_workload::Query;

/// The matched index pairs `(i, j)` — query `i` of job A aligned with query
/// `j` of job B — in ascending order, plus the total alignment score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Matched (and data-sharing) index pairs, strictly increasing in both
    /// components.
    pub pairs: Vec<(usize, usize)>,
    /// Number of data-sharing pairs in the optimal alignment.
    pub score: u32,
}

/// Aligns two query sequences, matching only pairs that actually share data.
///
/// Runs in O(n·m) time and space — with ~tens of queries per job this is the
/// `(n 2) m²` dynamic-program phase of the paper.
pub fn align_jobs(a: &[Query], b: &[Query]) -> Alignment {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Alignment {
            pairs: Vec::new(),
            score: 0,
        };
    }
    // score[i][j] = best alignment of a[..i] with b[..j].
    let mut score = vec![vec![0u32; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            let s = u32::from(a[i - 1].shares_data(&b[j - 1]));
            score[i][j] = (score[i - 1][j - 1] + s)
                .max(score[i][j - 1])
                .max(score[i - 1][j]);
        }
    }
    // Traceback, preferring diagonal moves that matched.
    let mut pairs = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        let s = u32::from(a[i - 1].shares_data(&b[j - 1]));
        if s == 1 && score[i][j] == score[i - 1][j - 1] + 1 {
            pairs.push((i - 1, j - 1));
            i -= 1;
            j -= 1;
        } else if score[i][j] == score[i - 1][j] {
            i -= 1;
        } else if score[i][j] == score[i][j - 1] {
            j -= 1;
        } else {
            // Zero-score diagonal (no sharing): skip both.
            i -= 1;
            j -= 1;
        }
    }
    pairs.reverse();
    Alignment {
        score: score[n][m],
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaws_morton::MortonKey;
    use jaws_workload::{Footprint, QueryOp};

    /// A query touching the single "region" `r` at timestep `ts` — mirrors the
    /// R1..R5 node labels of the paper's Figs. 2–3.
    fn q(id: u64, ts: u32, r: u64) -> Query {
        Query {
            id,
            user: 0,
            op: QueryOp::ParticleTrack,
            timestep: ts,
            footprint: Footprint::from_pairs([(MortonKey(r), 10u32)]),
        }
    }

    /// Builds a job from (timestep, region) labels.
    fn job(start_id: u64, spec: &[(u32, u64)]) -> Vec<Query> {
        spec.iter()
            .enumerate()
            .map(|(i, &(ts, r))| q(start_id + i as u64, ts, r))
            .collect()
    }

    #[test]
    fn identical_jobs_align_fully() {
        let a = job(1, &[(0, 1), (1, 2), (2, 3)]);
        let b = job(10, &[(0, 1), (1, 2), (2, 3)]);
        let al = align_jobs(&a, &b);
        assert_eq!(al.score, 3);
        assert_eq!(al.pairs, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn disjoint_jobs_do_not_align() {
        let a = job(1, &[(0, 1), (1, 2)]);
        let b = job(10, &[(0, 7), (1, 8)]);
        let al = align_jobs(&a, &b);
        assert_eq!(al.score, 0);
        assert!(al.pairs.is_empty());
    }

    #[test]
    fn paper_fig3_style_alignment_with_skips() {
        // Job1 visits R1 R3 R4; Job2 visits R1 R2 R3 R4: the alignment skips
        // Job2's R2 query and matches the other three.
        let j1 = job(1, &[(0, 1), (1, 3), (2, 4)]);
        let j2 = job(10, &[(0, 1), (1, 2), (1, 3), (2, 4)]);
        let al = align_jobs(&j1, &j2);
        assert_eq!(al.score, 3);
        assert_eq!(al.pairs, vec![(0, 0), (1, 2), (2, 3)]);
    }

    #[test]
    fn alignment_is_monotone_never_crossing() {
        // Shared regions appear out of order; the DP may match at most one of
        // the crossings.
        let j1 = job(1, &[(0, 1), (1, 2)]);
        let j2 = job(10, &[(1, 2), (0, 1)]); // reversed order
        let al = align_jobs(&j1, &j2);
        assert_eq!(al.score, 1, "crossing matches are mutually exclusive");
        for w in al.pairs.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn sharing_requires_same_timestep() {
        // Same region labels but different timesteps: A(q) sets differ.
        let j1 = job(1, &[(0, 5)]);
        let j2 = job(10, &[(3, 5)]);
        assert_eq!(align_jobs(&j1, &j2).score, 0);
    }

    #[test]
    fn at_most_one_edge_per_query() {
        // Job2 has two queries sharing with Job1's single query; only one can
        // be matched (Fig. 4's one-gating-edge-per-job rule falls out of the
        // alignment structure).
        let j1 = job(1, &[(0, 1)]);
        let j2 = job(10, &[(0, 1), (0, 1)]);
        let al = align_jobs(&j1, &j2);
        assert_eq!(al.score, 1);
        assert_eq!(al.pairs.len(), 1);
    }

    #[test]
    fn empty_jobs() {
        let j1 = job(1, &[(0, 1)]);
        assert_eq!(align_jobs(&j1, &[]).score, 0);
        assert_eq!(align_jobs(&[], &j1).score, 0);
    }

    #[test]
    fn partial_overlap_counts_as_sharing() {
        // Footprints overlapping in one atom of several still share.
        let mut a = q(1, 0, 1);
        a.footprint = Footprint::from_pairs([(MortonKey(1), 5u32), (MortonKey(2), 5)]);
        let mut b = q(2, 0, 2);
        b.footprint = Footprint::from_pairs([(MortonKey(2), 5u32), (MortonKey(3), 5)]);
        let al = align_jobs(&[a], &[b]);
        assert_eq!(al.score, 1);
    }
}
