//! CasJobs-style multi-queue baseline (related work, §II).
//!
//! "The CasJobs system for the Sloan Digital Sky Survey avoids the starvation
//! of short queries from data-intensive scan queries by using a multi-queue
//! job submission system in which queries from each class are assigned to
//! different servers. … However, the distinction between long and short
//! queries is arbitrary so that the longest short queries interfere with the
//! short queue and the shortest long queries experience starvation."
//!
//! This scheduler reproduces that design on one pipeline: queries are
//! classified by their *estimated* service time against a fixed threshold;
//! the short queue has strict priority; within each queue, arrival order;
//! and — like CasJobs and NoShare, unlike LifeRaft/JAWS — no data sharing:
//! each pass serves exactly one query. It exists as a baseline to show that
//! JAWS "does not rely on ad hoc mechanisms to distinguish long and short
//! running queries": JAWS serves both classes well without the threshold.

use crate::batch::{preprocess, AtomBatch, Batch};
use crate::policy::{Residency, Scheduler, SchedulerStats};
use crate::queues::{MetricParams, UtilitySnapshot};
use jaws_workload::{Job, Query, QueryId};
use std::collections::VecDeque;

/// The two-class, arrival-order, no-sharing scheduler.
#[derive(Debug)]
pub struct CasJobs {
    params: MetricParams,
    /// Estimated-service threshold separating short from long queries, ms.
    threshold_ms: f64,
    short: VecDeque<Query>,
    long: VecDeque<Query>,
    run_len: usize,
    completed_in_run: usize,
    run_boundary: bool,
    stats: SchedulerStats,
    short_served: u64,
    long_served: u64,
}

impl CasJobs {
    /// Creates a CasJobs-style scheduler with the given class threshold.
    pub fn new(params: MetricParams, threshold_ms: f64, run_len: usize) -> Self {
        assert!(threshold_ms > 0.0 && run_len > 0);
        CasJobs {
            params,
            threshold_ms,
            short: VecDeque::new(),
            long: VecDeque::new(),
            run_len,
            completed_in_run: 0,
            run_boundary: false,
            stats: SchedulerStats::default(),
            short_served: 0,
            long_served: 0,
        }
    }

    /// Estimated service time of a query under the cost constants, ms.
    pub fn estimate_ms(&self, q: &Query) -> f64 {
        q.footprint.atom_count() as f64 * self.params.atom_read_ms
            + q.positions() as f64 * self.params.position_compute_ms
    }

    /// Queries served from the short / long queue so far.
    pub fn served(&self) -> (u64, u64) {
        (self.short_served, self.long_served)
    }
}

impl Scheduler for CasJobs {
    fn name(&self) -> &'static str {
        "CasJobs"
    }

    fn job_declared(&mut self, _job: &Job, _now_ms: f64) {}

    fn query_available(&mut self, query: &Query, _now_ms: f64) {
        if self.estimate_ms(query) <= self.threshold_ms {
            self.short.push_back(query.clone());
        } else {
            self.long.push_back(query.clone());
        }
    }

    fn next_batch(&mut self, now_ms: f64, _residency: &dyn Residency) -> Option<Batch> {
        let (query, from_short) = if let Some(q) = self.short.pop_front() {
            (q, true)
        } else {
            (self.long.pop_front()?, false)
        };
        if from_short {
            self.short_served += 1;
        } else {
            self.long_served += 1;
        }
        let qid = query.id;
        let atoms: Vec<AtomBatch> = preprocess(&query, now_ms)
            .into_iter()
            .map(|s| AtomBatch {
                atom: s.atom,
                subqueries: vec![s],
            })
            .collect();
        self.stats.batches += 1;
        self.stats.atom_groups += atoms.len() as u64;
        self.stats.subqueries += atoms.len() as u64;
        Some(Batch {
            atoms,
            completing_queries: vec![qid],
        })
    }

    fn on_query_complete(&mut self, _query: QueryId, _response_ms: f64, _now_ms: f64) {
        self.completed_in_run += 1;
        if self.completed_in_run >= self.run_len {
            self.completed_in_run = 0;
            self.run_boundary = true;
        }
    }

    fn has_pending(&self) -> bool {
        !self.short.is_empty() || !self.long.is_empty()
    }

    fn take_run_boundary(&mut self) -> bool {
        std::mem::take(&mut self.run_boundary)
    }

    fn alpha(&self) -> f64 {
        1.0 // arrival order within each class
    }

    fn utility_snapshot(&mut self, _residency: &dyn Residency) -> UtilitySnapshot {
        UtilitySnapshot::empty()
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::FixedResidency;
    use jaws_morton::MortonKey;
    use jaws_workload::{Footprint, QueryOp};

    fn q(id: u64, atoms: u64, positions: u32) -> Query {
        Query {
            id,
            user: 0,
            op: QueryOp::Velocity,
            timestep: 0,
            footprint: Footprint::from_pairs(
                (0..atoms).map(|m| (MortonKey(m), positions / atoms as u32)),
            ),
        }
    }

    fn sched() -> CasJobs {
        // Threshold 200 ms: 1-atom queries are short, 5-atom queries long.
        CasJobs::new(MetricParams::paper_testbed(), 200.0, 100)
    }

    #[test]
    fn short_queries_preempt_long_ones() {
        let mut s = sched();
        let none = FixedResidency::none();
        s.query_available(&q(1, 5, 500), 0.0); // long, arrived first
        s.query_available(&q(2, 1, 50), 1.0); // short, arrived second
        let b = s.next_batch(2.0, &none).unwrap();
        assert_eq!(b.completing_queries, vec![2], "short class served first");
        let b = s.next_batch(3.0, &none).unwrap();
        assert_eq!(b.completing_queries, vec![1]);
        assert_eq!(s.served(), (1, 1));
    }

    #[test]
    fn within_a_class_arrival_order_holds() {
        let mut s = sched();
        let none = FixedResidency::none();
        s.query_available(&q(1, 1, 50), 0.0);
        s.query_available(&q(2, 1, 50), 1.0);
        assert_eq!(
            s.next_batch(2.0, &none).unwrap().completing_queries,
            vec![1]
        );
        assert_eq!(
            s.next_batch(3.0, &none).unwrap().completing_queries,
            vec![2]
        );
    }

    #[test]
    fn no_sharing_between_queries() {
        let mut s = sched();
        let none = FixedResidency::none();
        s.query_available(&q(1, 1, 50), 0.0);
        s.query_available(&q(2, 1, 50), 0.0); // same atom
        let b = s.next_batch(0.0, &none).unwrap();
        assert_eq!(b.positions(), 50, "only the first query's positions");
        assert!(s.has_pending());
    }

    #[test]
    fn the_arbitrary_threshold_misclassifies_borderline_queries() {
        // The paper's criticism in miniature: two nearly identical queries
        // land in different classes.
        let s = sched();
        let borderline_short = q(1, 2, 400); // 2*80 + 400*0.05 = 180 ms
        let borderline_long = q(2, 2, 900); // 2*80 + 900*0.05 = 205 ms
        assert!(s.estimate_ms(&borderline_short) <= 200.0);
        assert!(s.estimate_ms(&borderline_long) > 200.0);
    }

    #[test]
    fn drains_both_queues() {
        let mut s = sched();
        let none = FixedResidency::none();
        for i in 0..4 {
            s.query_available(&q(i, if i % 2 == 0 { 1 } else { 5 }, 100), i as f64);
        }
        let mut served = 0;
        while s.next_batch(10.0, &none).is_some() {
            served += 1;
        }
        assert_eq!(served, 4);
        assert!(!s.has_pending());
    }
}
