//! The JAWS scheduling framework — the paper's primary contribution.
//!
//! Three schedulers share one substrate (per-atom *workload queues* ranked by
//! the workload-throughput metric of Eq. 1 and its aged variant, Eq. 2):
//!
//! * [`NoShare`] — evaluates each query independently, in arrival order; the
//!   baseline of §VI.
//! * [`LifeRaft`] — data-driven batch processing (§III): one atom at a time,
//!   chosen by the aged workload-throughput metric with a *fixed* age bias α.
//! * [`Jaws`] — everything in LifeRaft plus (§IV–V): two-level scheduling
//!   (timestep selection, batches of `k` atoms in Morton order), adaptive
//!   starvation resistance (α tracks workload saturation), and job-aware
//!   *gated execution* (Needleman–Wunsch alignment of ordered jobs, gating
//!   edges, co-scheduled release).
//!
//! The crate is execution-agnostic: a scheduler consumes query arrivals and
//! produces [`Batch`]es; the `jaws-sim` crate owns the clock, the database and
//! the job think-time loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod align;
pub mod batch;
pub mod casjobs;
pub mod delta;
pub mod gating;
pub mod jaws;
pub mod liferaft;
pub mod noshare;
pub mod policy;
pub mod prefetch;
pub mod qos;
pub mod queues;

pub use adaptive::{AlphaController, RunFeedback};
pub use align::align_jobs;
pub use batch::{AtomBatch, Batch, SubQuery};
pub use casjobs::CasJobs;
pub use delta::{Delta, DeltaStats};
pub use gating::{GatingConfig, GatingGraph, QueryState};
pub use jaws::{Jaws, JawsConfig};
pub use liferaft::LifeRaft;
pub use noshare::NoShare;
pub use policy::{Residency, Scheduler, SchedulerStats};
pub use prefetch::Prefetcher;
pub use qos::QosScheduler;
pub use queues::{finite_or_zero, MetricParams, UtilitySnapshot, WorkloadManager};
