//! JAWS: the Job-Aware Workload Scheduler (§IV–V).
//!
//! On top of LifeRaft's contention-ordered workload queues, JAWS adds:
//!
//! * **Two-level scheduling** (§V): first pick the timestep with the highest
//!   mean aged workload-throughput metric, then schedule up to `k` of that
//!   timestep's atoms whose metric exceeds the timestep mean, executing them
//!   in Morton order — one pass that exploits locality of reference and
//!   sequential disk layout.
//! * **Adaptive starvation resistance** (§V-A): the age bias α is tuned
//!   incrementally per run of `r` queries by an [`AlphaController`].
//! * **Job-aware gated execution** (§IV): queries of aligned ordered jobs are
//!   held until their gating partners are ready, then released together so
//!   shared atoms are read once. Disable `job_aware` to get the paper's
//!   JAWS₁ ablation; enable it for the full JAWS₂.

use crate::adaptive::AlphaController;
use crate::batch::{preprocess, Batch};
use crate::gating::{GatingConfig, GatingGraph};
use crate::policy::{Residency, Scheduler, SchedulerStats};
use crate::queues::{MetricParams, UtilitySnapshot, WorkloadManager};
use jaws_cache::UtilityOracle;
use jaws_morton::AtomId;
use jaws_obs::{Event, GateAction, ObsSink};
use jaws_workload::{Job, Query, QueryId};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Orders pending atoms best-first: descending aged utility, ascending
/// [`AtomId`] tie-break. `total_cmp` plus the id makes this a *strict* total
/// order (no two entries compare equal), which is what lets the bounded
/// top-k selection reproduce the full sort's k-prefix exactly even through
/// an unstable partition.
fn rank_order(a: &(AtomId, f64), b: &(AtomId, f64)) -> Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

/// Bounded top-k selection: partition the k best-ranked entries to the front
/// with `select_nth_unstable_by` (O(m)), then sort only those k — O(m +
/// k·log k) against the full sort's O(m·log m), the dispatch-hot-path win at
/// large pending timesteps. Because [`rank_order`] is a strict total order,
/// the result is bitwise identical to [`top_k_full_sort`].
fn top_k(mut in_ts: Vec<(AtomId, f64)>, k: usize) -> Vec<(AtomId, f64)> {
    if k == 0 {
        in_ts.clear();
        return in_ts;
    }
    if k < in_ts.len() {
        in_ts.select_nth_unstable_by(k - 1, rank_order);
        in_ts.truncate(k);
    }
    in_ts.sort_by(rank_order);
    in_ts
}

/// Reference selection — full sort, then the k-prefix. Retained as the
/// property-test oracle for [`top_k`].
#[cfg(test)]
fn top_k_full_sort(mut in_ts: Vec<(AtomId, f64)>, k: usize) -> Vec<(AtomId, f64)> {
    in_ts.sort_by(rank_order);
    in_ts.truncate(k);
    in_ts
}

/// JAWS configuration.
#[derive(Debug, Clone)]
pub struct JawsConfig {
    /// Eq. 1 cost constants.
    pub params: MetricParams,
    /// Batch size `k`: maximum atoms co-scheduled per timestep pass (the
    /// paper sets 15; Fig. 12 sweeps it).
    pub batch_k: usize,
    /// Initial age bias α (the paper initializes 0.5).
    pub alpha0: f64,
    /// If false, α stays fixed at `alpha0` (ablation of §V-A).
    pub adaptive_alpha: bool,
    /// Run length `r` in queries, for α adaptation and cache run boundaries.
    pub run_len: usize,
    /// If true, ordered jobs are aligned and gated (JAWS₂); if false the
    /// scheduler is the paper's JAWS₁.
    pub job_aware: bool,
    /// Gating knobs (timeout valve, alignment fan-in).
    pub gating: GatingConfig,
    /// If true (and a recorder is attached), every produced batch is followed
    /// by an [`Event::DeltaStats`] snapshot of the delta layer's counters and
    /// arrangement sizes. Off by default: enabling it changes the trace
    /// byte-stream, so the determinism suite's golden traces keep it off.
    pub emit_delta_stats: bool,
}

impl JawsConfig {
    /// The paper's full configuration: k = 15, α₀ = 0.5, adaptive, job-aware.
    pub fn jaws2(params: MetricParams) -> Self {
        JawsConfig {
            params,
            batch_k: 15,
            alpha0: 0.5,
            adaptive_alpha: true,
            run_len: 50,
            job_aware: true,
            gating: GatingConfig::default(),
            emit_delta_stats: false,
        }
    }

    /// JAWS₁: two-level scheduling and adaptive α without job-awareness.
    pub fn jaws1(params: MetricParams) -> Self {
        JawsConfig {
            job_aware: false,
            ..Self::jaws2(params)
        }
    }
}

/// The JAWS scheduler.
pub struct Jaws {
    cfg: JawsConfig,
    wm: WorkloadManager,
    gating: GatingGraph,
    alpha_ctl: AlphaController,
    /// Queries available but held by gating, by id, awaiting release.
    held: HashMap<QueryId, Query>,
    /// Run-boundary counter for the fixed-α ablation, which must not feed
    /// fabricated response times into the (unused) [`AlphaController`].
    fixed_completed_in_run: usize,
    run_boundary: bool,
    stats: SchedulerStats,
    sink: ObsSink,
    /// Dispatch-path scratch: the ranked `(atom, utility)` buffer of the
    /// current timestep, reused across `next_batch` calls (capacity
    /// retained, contents rebuilt each call).
    ranked_scratch: Vec<(AtomId, f64)>,
    /// Dispatch-path scratch: the selected atom ids of the current batch.
    selected_scratch: Vec<AtomId>,
}

impl Jaws {
    /// Creates a JAWS scheduler.
    pub fn new(cfg: JawsConfig) -> Self {
        assert!(cfg.batch_k >= 1, "batch size k must be at least 1");
        assert!((0.0..=1.0).contains(&cfg.alpha0));
        Jaws {
            wm: WorkloadManager::new(cfg.params),
            gating: GatingGraph::new(cfg.gating),
            alpha_ctl: AlphaController::new(cfg.alpha0, cfg.run_len),
            held: HashMap::new(),
            fixed_completed_in_run: 0,
            run_boundary: false,
            stats: SchedulerStats::default(),
            sink: ObsSink::null(),
            ranked_scratch: Vec::new(),
            selected_scratch: Vec::new(),
            cfg,
        }
    }

    /// The gating graph (diagnostics: admitted edges, forced releases).
    pub fn gating(&self) -> &GatingGraph {
        &self.gating
    }

    /// The α adaptation history.
    pub fn alpha_history(&self) -> &[(f64, crate::adaptive::RunFeedback)] {
        self.alpha_ctl.history()
    }

    /// The delta layer's monotone maintenance counters (diagnostics; also
    /// what the no-op-dispatch regression test pins).
    pub fn delta_stats(&self) -> crate::delta::DeltaStats {
        self.wm.delta_stats()
    }

    fn enqueue_query(&mut self, query: &Query, now_ms: f64) {
        self.wm.enqueue(preprocess(query, now_ms));
    }

    fn release(&mut self, fired: Vec<QueryId>, now_ms: f64) {
        for qid in fired {
            if let Some(q) = self.held.remove(&qid) {
                self.enqueue_query(&q, now_ms);
            }
        }
    }

    /// Emits the [`Event::BatchSelected`] record for an accepted batch. Only
    /// reached with a recorder attached, so its per-call allocations stay off
    /// the (unrecorded) dispatch hot path.
    #[allow(clippy::too_many_arguments)]
    fn emit_batch_selected(
        &mut self,
        residency: &dyn Residency,
        best_ts: u32,
        alpha: f64,
        ts_mean: f64,
        in_ts: &[(AtomId, f64)],
        selected: &[AtomId],
        now_ms: f64,
    ) {
        // Capture the utility terms before take_atom drains the queues:
        // Eq. 1 from the residency-aware snapshot (its integration is
        // bitwise-idempotent, so reading it here changes nothing), Eq. 2
        // from the aged ranking the selection actually sorted on.
        let snapshot = self.wm.utility_snapshot(residency);
        // One lookup table over the k finalists, not a linear scan per
        // selected atom (every selected atom is a finalist by
        // construction, including the below-mean fallback).
        let aged_of: HashMap<AtomId, f64> = in_ts.iter().copied().collect();
        let choices = selected
            .iter()
            .map(|a| jaws_obs::AtomChoice {
                morton: a.morton.raw(),
                eq1: snapshot.rank(a).atom_utility,
                aged: aged_of.get(a).copied().unwrap_or(0.0),
            })
            .collect();
        self.sink.emit(
            now_ms,
            Event::BatchSelected {
                timestep: best_ts,
                alpha,
                threshold: ts_mean,
                atoms: choices,
            },
        );
    }

    /// Drains the selected atoms out of the workload queues into a [`Batch`],
    /// updating the dispatch counters. The batch's own vectors are the only
    /// allocations here — they escape to the engine with the batch.
    fn build_batch(&mut self, selected: &[AtomId], now_ms: f64) -> Batch {
        let mut atoms = Vec::with_capacity(selected.len());
        // The two batch Vecs escape into the returned `Batch` (the engine
        // owns them); `take_atom_into` keeps the k takes themselves
        // alloc-free.
        let mut completing = Vec::new();
        for atom in selected {
            let group = self.wm.take_atom_into(atom, &mut completing);
            self.stats.subqueries += group.subqueries.len() as u64;
            atoms.push(group);
        }
        self.stats.batches += 1;
        self.stats.atom_groups += atoms.len() as u64;
        if self.cfg.emit_delta_stats && self.sink.enabled() {
            let d = self.wm.delta_stats();
            self.sink.emit(
                now_ms,
                Event::DeltaStats {
                    arrived: d.arrived,
                    taken: d.taken,
                    completed: d.completed,
                    residency_changed: d.residency_changed,
                    eq1_recomputes: d.eq1_recomputes,
                    ts_refolds: d.ts_refolds,
                    coarse_scans: d.coarse_scans,
                    pending_atoms: self.wm.pending_atoms() as u64,
                    pending_timesteps: self.wm.pending_timesteps() as u64,
                },
            );
        }
        Batch {
            atoms,
            completing_queries: completing,
        }
    }
}

impl Scheduler for Jaws {
    fn name(&self) -> &'static str {
        if self.cfg.job_aware {
            "JAWS_2"
        } else {
            "JAWS_1"
        }
    }

    fn job_declared(&mut self, job: &Job, _now_ms: f64) {
        if self.cfg.job_aware {
            self.gating.add_job(job);
        }
    }

    fn query_available(&mut self, query: &Query, now_ms: f64) {
        if self.cfg.adaptive_alpha {
            // The first arrival anchors the first α run's throughput window.
            self.alpha_ctl.note_arrival(now_ms);
        }
        if self.cfg.job_aware {
            self.held.insert(query.id, query.clone());
            let fired = self.gating.query_available(query.id, now_ms);
            if self.sink.enabled() {
                if !fired.contains(&query.id) {
                    self.sink.emit(
                        now_ms,
                        Event::GateDecision {
                            query: query.id,
                            action: GateAction::Held,
                        },
                    );
                }
                for &qid in &fired {
                    self.sink.emit(
                        now_ms,
                        Event::GateDecision {
                            query: qid,
                            action: GateAction::Released,
                        },
                    );
                }
            }
            self.release(fired, now_ms);
        } else {
            self.enqueue_query(query, now_ms);
        }
    }

    // lint: hotpath
    fn next_batch(&mut self, now_ms: f64, residency: &dyn Residency) -> Option<Batch> {
        if self.cfg.job_aware {
            // Starvation valve: break gates that out-waited their budget.
            let released = self.gating.release_stale(now_ms);
            if !released.is_empty() {
                self.stats.forced_releases += released.len() as u64;
                if self.sink.enabled() {
                    for &qid in &released {
                        self.sink.emit(
                            now_ms,
                            Event::GateDecision {
                                query: qid,
                                action: GateAction::ForceReleased,
                            },
                        );
                    }
                }
                self.release(released, now_ms);
            }
        }
        if self.wm.is_empty() {
            return None;
        }
        let alpha = self.alpha();
        // Coarse level: the timestep with the highest mean aged utility,
        // where the mean runs over *all* atoms of the timestep (§V) — i.e.
        // the densest pending timestep wins. Answered from the workload
        // manager's per-timestep aggregates (O(#timesteps)), not a scan of
        // every pending atom.
        let best_ts = self.wm.best_timestep(now_ms, alpha, residency)?;
        // Fine level: up to k atoms of that timestep with utility above the
        // (all-atoms) mean, best first; always at least the maximum. The
        // threshold only bites for very large k, which is why "the impact
        // beyond 50 is marginal" (Fig. 12). Both working buffers are taken
        // from (and returned to) the scheduler's scratch, so a warmed-up
        // dispatch allocates nothing here.
        let mut in_ts = std::mem::take(&mut self.ranked_scratch);
        self.wm
            .timestep_aged_utilities_into(best_ts, now_ms, alpha, residency, &mut in_ts);
        let sum: f64 = in_ts.iter().map(|&(_, u)| u).sum();
        let ts_mean = sum / self.cfg.params.atoms_per_timestep.max(1) as f64;
        // Bounded top-k instead of a full sort of the pending timestep: the
        // k survivors (and their order) are bitwise identical to the sorted
        // prefix because the ranking is a strict total order.
        let in_ts = top_k(in_ts, self.cfg.batch_k);
        let mut selected = std::mem::take(&mut self.selected_scratch);
        selected.extend(
            in_ts
                .iter()
                .filter(|&&(_, u)| u >= ts_mean)
                .map(|&(a, _)| a),
        );
        if selected.is_empty() {
            // lint: invariant — best_timestep returned Some, so the chosen
            // timestep holds at least one pending atom (and top_k put the
            // highest-utility one first).
            let &(first, _) = in_ts.first().expect("best timestep has a pending atom");
            selected.push(first);
        }
        // Execute in Morton order: "the k atoms are sorted in Morton order
        // and the corresponding sub-queries from each atom are evaluated in
        // that order".
        selected.sort_unstable();
        if self.sink.enabled() {
            self.emit_batch_selected(
                residency, best_ts, alpha, ts_mean, &in_ts, &selected, now_ms,
            );
        }
        let batch = self.build_batch(&selected, now_ms);
        self.ranked_scratch = in_ts;
        selected.clear();
        self.selected_scratch = selected;
        Some(batch)
    }

    fn on_query_complete(&mut self, query: QueryId, response_ms: f64, now_ms: f64) {
        self.wm.note_completed(query);
        if self.cfg.adaptive_alpha {
            if self.alpha_ctl.on_query_complete(response_ms, now_ms) {
                self.run_boundary = true;
                if self.sink.enabled() {
                    if let Some(&(alpha, fb)) = self.alpha_ctl.history().last() {
                        self.sink.emit(
                            now_ms,
                            Event::AlphaAdjusted {
                                alpha,
                                mean_response_ms: fb.mean_response_ms,
                                throughput_qps: fb.throughput_qps,
                            },
                        );
                    }
                }
            }
        } else {
            // Fixed-α ablation still wants run boundaries for the cache, but
            // must not feed fabricated zero response times into the
            // controller — that would pollute its run telemetry (and the
            // alpha_history() report) even though α itself never moves.
            self.fixed_completed_in_run += 1;
            if self.fixed_completed_in_run >= self.cfg.run_len {
                self.fixed_completed_in_run = 0;
                self.run_boundary = true;
            }
        }
        if self.cfg.job_aware {
            let fired = self.gating.query_done(query);
            self.release(fired, now_ms);
        }
    }

    fn query_withdrawn(&mut self, query: QueryId, now_ms: f64) {
        // Dynamic placement diverted the id's atoms to a replica on another
        // node: its job-mates must not keep waiting for it at a gate.
        // `query_done` removes the id from the gating graph and fires any
        // alignment it was the last holdout of; `held` needs no touch — a
        // withdrawn id was declared but never became available here.
        if self.cfg.job_aware {
            let fired = self.gating.query_done(query);
            self.release(fired, now_ms);
        }
    }

    fn has_pending(&self) -> bool {
        !self.wm.is_empty() || !self.held.is_empty()
    }

    fn take_run_boundary(&mut self) -> bool {
        std::mem::take(&mut self.run_boundary)
    }

    fn alpha(&self) -> f64 {
        if self.cfg.adaptive_alpha {
            self.alpha_ctl.alpha()
        } else {
            self.cfg.alpha0
        }
    }

    fn utility_snapshot(&mut self, residency: &dyn Residency) -> UtilitySnapshot {
        self.wm.utility_snapshot(residency)
    }

    fn set_recorder(&mut self, sink: ObsSink) {
        self.sink = sink;
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::FixedResidency;
    use jaws_morton::{AtomId, MortonKey};
    use jaws_workload::{Footprint, JobKind, QueryOp};

    fn params() -> MetricParams {
        MetricParams {
            atom_read_ms: 100.0,
            position_compute_ms: 1.0,
            atoms_per_timestep: 64,
        }
    }

    fn q(id: u64, ts: u32, atoms: &[(u64, u32)]) -> Query {
        Query {
            id,
            user: 0,
            op: QueryOp::Velocity,
            timestep: ts,
            footprint: Footprint::from_pairs(atoms.iter().map(|&(m, c)| (MortonKey(m), c))),
        }
    }

    fn jaws1() -> Jaws {
        Jaws::new(JawsConfig {
            batch_k: 3,
            ..JawsConfig::jaws1(params())
        })
    }

    #[test]
    fn two_level_selects_the_densest_timestep() {
        let mut s = jaws1();
        let none = FixedResidency::none();
        // Timestep 0: two hot atoms. Timestep 5: one lukewarm atom.
        s.query_available(&q(1, 0, &[(0, 300), (1, 300)]), 0.0);
        s.query_available(&q(2, 5, &[(0, 50)]), 0.0);
        let b = s.next_batch(1.0, &none).unwrap();
        assert!(b.atoms.iter().all(|a| a.atom.timestep == 0));
        assert_eq!(b.atom_count(), 2, "both hot atoms in one pass");
    }

    #[test]
    fn batch_respects_k_and_morton_order() {
        let mut s = Jaws::new(JawsConfig {
            batch_k: 2,
            ..JawsConfig::jaws1(params())
        });
        let none = FixedResidency::none();
        s.query_available(&q(1, 0, &[(9, 100), (2, 100), (5, 100), (7, 100)]), 0.0);
        let b = s.next_batch(1.0, &none).unwrap();
        assert_eq!(b.atom_count(), 2, "capped at k");
        let order: Vec<u64> = b.atoms.iter().map(|a| a.atom.morton.raw()).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "Morton execution order");
    }

    #[test]
    fn above_mean_filter_excludes_cold_atoms() {
        // A tiny 4-atom timestep makes the all-atoms mean discriminating.
        let mut s = Jaws::new(JawsConfig {
            batch_k: 10,
            ..JawsConfig::jaws1(MetricParams {
                atoms_per_timestep: 4,
                ..params()
            })
        });
        let none = FixedResidency::none();
        // One very hot atom and three tiny ones in the same timestep.
        s.query_available(&q(1, 0, &[(0, 1000)]), 0.0);
        s.query_available(&q(2, 0, &[(1, 1), (2, 1), (3, 1)]), 0.0);
        let b = s.next_batch(1.0, &none).unwrap();
        assert!(
            b.atom_count() < 4,
            "cold atoms below the timestep mean are left for later"
        );
        assert_eq!(b.atoms[0].atom, AtomId::new(0, MortonKey(0)));
    }

    #[test]
    fn completions_are_reported_once_per_query() {
        let mut s = jaws1();
        let none = FixedResidency::none();
        s.query_available(&q(1, 0, &[(0, 10), (1, 10)]), 0.0);
        let b = s.next_batch(1.0, &none).unwrap();
        assert_eq!(b.completing_queries, vec![1]);
        assert!(!s.has_pending());
    }

    #[test]
    fn jaws2_holds_gated_queries_until_partners_arrive() {
        let mut s = Jaws::new(JawsConfig {
            batch_k: 4,
            ..JawsConfig::jaws2(params())
        });
        let none = FixedResidency::none();
        let mk_job = |jid: u64, base: u64| Job {
            id: jid,
            user: jid as u32,
            kind: JobKind::Ordered,
            campaign: jid,
            queries: vec![q(base, 0, &[(1, 50)]), q(base + 1, 1, &[(2, 50)])],
            arrival_ms: 0.0,
            think_ms: 0.0,
        };
        let j1 = mk_job(1, 100);
        let j2 = mk_job(2, 200);
        s.job_declared(&j1, 0.0);
        s.job_declared(&j2, 0.0);
        // Only job 1's first query is available: it is gated with job 2's.
        s.query_available(&j1.queries[0], 0.0);
        assert!(s.next_batch(1.0, &none).is_none(), "held by the gate");
        assert!(s.has_pending(), "held queries still count as pending");
        // Partner arrives: both release together and share the atom read.
        s.query_available(&j2.queries[0], 2.0);
        let b = s.next_batch(3.0, &none).unwrap();
        assert_eq!(b.atom_count(), 1);
        assert_eq!(b.positions(), 100, "both queries in one pass over atom 1");
        assert_eq!(b.completing_queries.len(), 2);
    }

    #[test]
    fn jaws2_gate_timeout_releases_held_queries() {
        let mut s = Jaws::new(JawsConfig {
            batch_k: 4,
            gating: GatingConfig {
                gate_timeout_ms: 1_000.0,
                max_align_jobs: 64,
            },
            ..JawsConfig::jaws2(params())
        });
        let none = FixedResidency::none();
        let mk_job = |jid: u64, base: u64| Job {
            id: jid,
            user: jid as u32,
            kind: JobKind::Ordered,
            campaign: jid,
            queries: vec![q(base, 0, &[(1, 50)]), q(base + 1, 1, &[(2, 50)])],
            arrival_ms: 0.0,
            think_ms: 0.0,
        };
        s.job_declared(&mk_job(1, 100), 0.0);
        s.job_declared(&mk_job(2, 200), 0.0);
        s.query_available(&mk_job(1, 100).queries[0], 0.0);
        assert!(s.next_batch(1.0, &none).is_none());
        // Partner never shows up; the valve opens.
        let b = s.next_batch(5_000.0, &none).expect("force-released");
        assert_eq!(b.positions(), 50);
        assert!(s.stats().forced_releases >= 1);
    }

    #[test]
    fn alpha_is_fixed_when_adaptation_is_off() {
        let mut s = Jaws::new(JawsConfig {
            adaptive_alpha: false,
            alpha0: 0.3,
            ..JawsConfig::jaws1(params())
        });
        for i in 0..500 {
            s.on_query_complete(i, 100.0 + i as f64, i as f64 * 10.0);
        }
        assert_eq!(s.alpha(), 0.3);
    }

    #[test]
    fn fixed_alpha_keeps_run_boundaries_without_polluting_the_controller() {
        // Regression: the fixed-α ablation used to drive run boundaries by
        // feeding response_ms = 0.0 into the AlphaController, fabricating
        // run feedback for a controller that is supposed to be inert.
        let mut s = Jaws::new(JawsConfig {
            adaptive_alpha: false,
            alpha0: 0.3,
            run_len: 3,
            ..JawsConfig::jaws1(params())
        });
        let mut boundaries = 0;
        for i in 0..12 {
            s.on_query_complete(i, 250.0, i as f64 * 10.0);
            if s.take_run_boundary() {
                boundaries += 1;
                assert_eq!((i + 1) % 3, 0, "boundary fires every run_len");
            }
        }
        assert_eq!(boundaries, 4, "run counting still works for the cache");
        assert_eq!(s.alpha(), 0.3, "alpha untouched");
        assert!(
            s.alpha_history().is_empty(),
            "no fabricated RunFeedback reaches the controller"
        );
    }

    #[test]
    fn run_boundaries_propagate() {
        let mut s = Jaws::new(JawsConfig {
            run_len: 2,
            ..JawsConfig::jaws1(params())
        });
        s.on_query_complete(1, 10.0, 100.0);
        assert!(!s.take_run_boundary());
        s.on_query_complete(2, 10.0, 200.0);
        assert!(s.take_run_boundary());
        assert!(!s.take_run_boundary());
    }

    #[test]
    fn empty_scheduler_yields_nothing() {
        let mut s = jaws1();
        assert!(s.next_batch(0.0, &FixedResidency::none()).is_none());
        assert!(!s.has_pending());
    }

    #[test]
    fn noop_dispatch_performs_zero_arrangement_folds() {
        // Satellite regression (ISSUE 8): a dispatch attempt that produces
        // nothing — here the gate holds every available query — must not
        // trigger incidental recomputation in the delta layer. Before the
        // generation-counter short-circuit, gate rulings and α probes inside
        // next_batch re-derived timestep means on every call.
        let mut s = Jaws::new(JawsConfig {
            batch_k: 4,
            ..JawsConfig::jaws2(params())
        });
        let none = FixedResidency::none();
        let mk_job = |jid: u64, base: u64| Job {
            id: jid,
            user: jid as u32,
            kind: JobKind::Ordered,
            campaign: jid,
            queries: vec![q(base, 0, &[(1, 50)]), q(base + 1, 1, &[(2, 50)])],
            arrival_ms: 0.0,
            think_ms: 0.0,
        };
        s.job_declared(&mk_job(1, 100), 0.0);
        s.job_declared(&mk_job(2, 200), 0.0);
        // Job 1's first query arrives alone and is gated on job 2's.
        s.query_available(&mk_job(1, 100).queries[0], 0.0);
        let before = s.delta_stats();
        for i in 0..5 {
            assert!(s.next_batch(1.0 + i as f64, &none).is_none(), "held");
        }
        let after = s.delta_stats();
        assert_eq!(after.eq1_recomputes, before.eq1_recomputes, "Eq. 1 folds");
        assert_eq!(after.ts_refolds, before.ts_refolds, "aggregate refolds");
        assert_eq!(after.coarse_scans, before.coarse_scans, "coarse scans");
        assert_eq!(after.residency_probes, before.residency_probes, "probes");
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Jaws::new(JawsConfig::jaws2(params())).name(), "JAWS_2");
        assert_eq!(Jaws::new(JawsConfig::jaws1(params())).name(), "JAWS_1");
    }

    #[test]
    fn top_k_handles_exact_utility_ties_deterministically() {
        let mk = |m: u64, u: f64| (AtomId::new(0, MortonKey(m)), u);
        let v = vec![
            mk(5, 1.0),
            mk(1, 2.0),
            mk(9, 1.0),
            mk(3, 1.0),
            mk(7, 2.0),
            mk(2, 0.5),
        ];
        for k in [1usize, 2, 3, 4, 6, 10] {
            assert_eq!(top_k(v.clone(), k), top_k_full_sort(v.clone(), k), "k={k}");
        }
        assert!(top_k(v, 0).is_empty());
    }

    mod top_k_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The bounded selection must pick the *bitwise identical* atom
            /// set — same ids, same utility bits, same order — as the
            /// retained full-sort reference, across random workloads, age
            /// bias, and the paper's k range. Small morton/count ranges force
            /// heavy overlap (merged queues) and exact utility ties, so the
            /// AtomId tie-break is genuinely exercised.
            #[test]
            fn bounded_top_k_matches_full_sort_reference(
                atoms in proptest::collection::vec((0u64..16, 1u32..6), 1..48),
                alpha in 0.0f64..=1.0,
                k_idx in 0usize..3,
                now in 1.0f64..10_000.0,
            ) {
                let k = [1usize, 15, 50][k_idx];
                let mut wm = WorkloadManager::new(params());
                for (i, &(m, c)) in atoms.iter().enumerate() {
                    wm.enqueue(preprocess(&q(i as u64 + 1, 0, &[(m, c)]), (i % 7) as f64));
                }
                let none = FixedResidency::none();
                let ranked = wm.timestep_aged_utilities(0, now, alpha, &none);
                let reference = top_k_full_sort(ranked.clone(), k);
                let fast = top_k(ranked, k);
                prop_assert_eq!(reference.len(), fast.len());
                for (r, f) in reference.iter().zip(&fast) {
                    prop_assert_eq!(r.0, f.0);
                    prop_assert_eq!(r.1.to_bits(), f.1.to_bits());
                }
            }
        }
    }
}
