//! NoShare: the no-data-sharing baseline of §VI.
//!
//! "NoShare evaluates each query independently (no I/O is shared) and in
//! arrival order." Every batch carries exactly one query's sub-queries, so
//! concurrent queries touching the same atom each trigger their own pass over
//! the data (the buffer cache may still absorb some of the redundancy, as it
//! would under any scheduler).

use crate::batch::{preprocess, AtomBatch, Batch};
use crate::policy::{Residency, Scheduler, SchedulerStats};
use crate::queues::UtilitySnapshot;
use jaws_workload::{Job, Query, QueryId};
use std::collections::VecDeque;

/// The arrival-order, one-query-per-batch scheduler.
#[derive(Debug)]
pub struct NoShare {
    fifo: VecDeque<Query>,
    run_len: usize,
    completed_in_run: usize,
    run_boundary: bool,
    stats: SchedulerStats,
}

impl NoShare {
    /// Creates a NoShare scheduler; `run_len` only drives the cache's run
    /// boundary (SLRU promotion cadence) so all schedulers share it.
    pub fn new(run_len: usize) -> Self {
        assert!(run_len > 0);
        NoShare {
            fifo: VecDeque::new(),
            run_len,
            completed_in_run: 0,
            run_boundary: false,
            stats: SchedulerStats::default(),
        }
    }
}

impl Scheduler for NoShare {
    fn name(&self) -> &'static str {
        "NoShare"
    }

    fn job_declared(&mut self, _job: &Job, _now_ms: f64) {}

    fn query_available(&mut self, query: &Query, _now_ms: f64) {
        self.fifo.push_back(query.clone());
    }

    fn next_batch(&mut self, now_ms: f64, _residency: &dyn Residency) -> Option<Batch> {
        let query = self.fifo.pop_front()?;
        let qid = query.id;
        // Sub-queries of this query only, in Morton order (preprocess output
        // is already sorted) — "points from each query are sorted and
        // evaluated in Morton order so that each atom is read only once".
        let atoms: Vec<AtomBatch> = preprocess(&query, now_ms)
            .into_iter()
            .map(|s| AtomBatch {
                atom: s.atom,
                subqueries: vec![s],
            })
            .collect();
        self.stats.batches += 1;
        self.stats.atom_groups += atoms.len() as u64;
        self.stats.subqueries += atoms.len() as u64;
        Some(Batch {
            atoms,
            completing_queries: vec![qid],
        })
    }

    fn on_query_complete(&mut self, _query: QueryId, _response_ms: f64, _now_ms: f64) {
        self.completed_in_run += 1;
        if self.completed_in_run >= self.run_len {
            self.completed_in_run = 0;
            self.run_boundary = true;
        }
    }

    fn has_pending(&self) -> bool {
        !self.fifo.is_empty()
    }

    fn take_run_boundary(&mut self) -> bool {
        std::mem::take(&mut self.run_boundary)
    }

    fn alpha(&self) -> f64 {
        1.0 // arrival order by construction
    }

    fn utility_snapshot(&mut self, _residency: &dyn Residency) -> UtilitySnapshot {
        UtilitySnapshot::empty()
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::FixedResidency;
    use jaws_morton::MortonKey;
    use jaws_workload::{Footprint, QueryOp};

    fn q(id: u64, atoms: &[(u64, u32)]) -> Query {
        Query {
            id,
            user: 0,
            op: QueryOp::Velocity,
            timestep: 0,
            footprint: Footprint::from_pairs(atoms.iter().map(|&(m, c)| (MortonKey(m), c))),
        }
    }

    #[test]
    fn serves_queries_in_arrival_order() {
        let mut s = NoShare::new(100);
        let none = FixedResidency::none();
        s.query_available(&q(1, &[(0, 5)]), 0.0);
        s.query_available(&q(2, &[(0, 5)]), 1.0);
        let b1 = s.next_batch(10.0, &none).unwrap();
        let b2 = s.next_batch(20.0, &none).unwrap();
        assert_eq!(b1.completing_queries, vec![1]);
        assert_eq!(b2.completing_queries, vec![2]);
        assert!(s.next_batch(30.0, &none).is_none());
    }

    #[test]
    fn no_co_scheduling_even_on_shared_atoms() {
        let mut s = NoShare::new(100);
        let none = FixedResidency::none();
        s.query_available(&q(1, &[(7, 5)]), 0.0);
        s.query_available(&q(2, &[(7, 9)]), 0.0);
        let b1 = s.next_batch(0.0, &none).unwrap();
        // Query 2's positions are NOT folded into query 1's pass over atom 7.
        assert_eq!(b1.positions(), 5);
        assert_eq!(b1.atoms.len(), 1);
        assert!(s.has_pending());
    }

    #[test]
    fn batch_covers_all_atoms_of_the_query_in_morton_order() {
        let mut s = NoShare::new(100);
        let none = FixedResidency::none();
        s.query_available(&q(1, &[(9, 1), (2, 1), (5, 1)]), 0.0);
        let b = s.next_batch(0.0, &none).unwrap();
        let order: Vec<u64> = b.atoms.iter().map(|a| a.atom.morton.raw()).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn run_boundary_every_r_completions() {
        let mut s = NoShare::new(2);
        s.on_query_complete(1, 0.0, 0.0);
        assert!(!s.take_run_boundary());
        s.on_query_complete(2, 0.0, 0.0);
        assert!(s.take_run_boundary());
        assert!(!s.take_run_boundary(), "boundary consumed");
    }
}
