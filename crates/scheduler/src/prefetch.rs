//! Trajectory-based prefetching — the paper's §VII extension.
//!
//! "We can extrapolate the trajectory of jobs in time and space (i.e. the
//! velocity of the bounding box or time step delta between consecutive
//! queries) to predict which data atoms are accessed by subsequent queries.
//! This can also help mask the cost of random reads by pre-fetching large
//! amounts of data."
//!
//! The [`Prefetcher`] watches each ordered job's query stream, estimates the
//! footprint centroid drift and timestep delta from the last two queries, and
//! predicts the next query's atom set by translating the last footprint along
//! the drift. The execution engine issues these predictions when the pipeline
//! would otherwise idle, so prefetching only ever uses spare capacity.

use jaws_morton::{AtomId, MortonKey};
use jaws_workload::{JobId, Query};
use std::collections::{HashMap, VecDeque};

/// Per-job trajectory state.
#[derive(Debug, Clone)]
struct Trajectory {
    /// Centroid of the previous query's footprint, in atom coordinates.
    prev_centroid: [f64; 3],
    prev_timestep: u32,
    /// Latest observed footprint (atom keys only).
    last_atoms: Vec<MortonKey>,
    last_centroid: [f64; 3],
    last_timestep: u32,
    observations: u32,
}

/// Footprint centroid in (fractional) atom coordinates.
fn centroid(q: &Query) -> [f64; 3] {
    let (mut cx, mut cy, mut cz) = (0.0f64, 0.0f64, 0.0f64);
    let mut w = 0.0;
    for &(m, count) in &q.footprint.atoms {
        let (x, y, z) = m.coords();
        let cw = count as f64;
        cx += x as f64 * cw;
        cy += y as f64 * cw;
        cz += z as f64 * cw;
        w += cw;
    }
    let mut c = [cx, cy, cz];
    if w > 0.0 {
        for v in &mut c {
            *v /= w;
        }
    }
    c
}

/// The trajectory predictor plus its prefetch queue.
#[derive(Debug)]
pub struct Prefetcher {
    atoms_per_side: u32,
    max_timestep: u32,
    jobs: HashMap<JobId, Trajectory>,
    /// Predicted atoms awaiting idle capacity, most recent predictions last.
    queue: VecDeque<AtomId>,
    queued: std::collections::HashSet<AtomId>,
    /// Predictions issued (for hit-rate diagnostics).
    issued: u64,
}

impl Prefetcher {
    /// Creates a predictor for the given atom-grid geometry.
    pub fn new(atoms_per_side: u32, timesteps: u32) -> Self {
        assert!(atoms_per_side > 0 && timesteps > 0);
        Prefetcher {
            atoms_per_side,
            max_timestep: timesteps - 1,
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            queued: std::collections::HashSet::new(),
            issued: 0,
        }
    }

    /// Observes a submitted query of job `job`, updating its trajectory and
    /// (from the second observation on) predicting the follow-up footprint.
    pub fn observe(&mut self, job: JobId, q: &Query) {
        let c = centroid(q);
        let atoms: Vec<MortonKey> = q.footprint.atoms.iter().map(|&(m, _)| m).collect();
        match self.jobs.get_mut(&job) {
            None => {
                self.jobs.insert(
                    job,
                    Trajectory {
                        prev_centroid: c,
                        prev_timestep: q.timestep,
                        last_atoms: atoms,
                        last_centroid: c,
                        last_timestep: q.timestep,
                        observations: 1,
                    },
                );
            }
            Some(entry) => {
                entry.prev_centroid = entry.last_centroid;
                entry.prev_timestep = entry.last_timestep;
                entry.last_centroid = c;
                entry.last_timestep = q.timestep;
                entry.last_atoms = atoms;
                entry.observations += 1;
                self.predict(job);
            }
        }
    }

    /// Predicts job `job`'s next footprint and enqueues it.
    fn predict(&mut self, job: JobId) {
        let Some(t) = self.jobs.get(&job) else {
            return;
        };
        // Timestep delta: ordered particle tracking advances steadily.
        let dt = t.last_timestep as i64 - t.prev_timestep as i64;
        let next_ts = t.last_timestep as i64 + dt;
        if dt == 0 || next_ts < 0 || next_ts > self.max_timestep as i64 {
            return; // stationary (batched) or falling off the archive
        }
        // Bounding-box velocity: centroid drift per query.
        let [lx, ly, lz] = t.last_centroid;
        let [px, py, pz] = t.prev_centroid;
        let (dx, dy, dz) = (lx - px, ly - py, lz - pz);
        let side = self.atoms_per_side as i64;
        let predictions: Vec<AtomId> = t
            .last_atoms
            .iter()
            .map(|m| {
                let (x, y, z) = m.coords();
                let nx = (x as f64 + dx).round() as i64;
                let ny = (y as f64 + dy).round() as i64;
                let nz = (z as f64 + dz).round() as i64;
                AtomId::from_coords(
                    next_ts as u32,
                    nx.rem_euclid(side) as u32,
                    ny.rem_euclid(side) as u32,
                    nz.rem_euclid(side) as u32,
                )
            })
            .collect();
        for p in predictions {
            if self.queued.insert(p) {
                self.queue.push_back(p);
            }
        }
        // Bound memory: drop the stalest predictions beyond a window.
        while self.queue.len() > 4096 {
            if let Some(old) = self.queue.pop_front() {
                self.queued.remove(&old);
            }
        }
    }

    /// Pops the next atom worth prefetching that is not already resident.
    pub fn next_prefetch(&mut self, is_resident: impl Fn(&AtomId) -> bool) -> Option<AtomId> {
        while let Some(a) = self.queue.pop_front() {
            self.queued.remove(&a);
            if !is_resident(&a) {
                self.issued += 1;
                return Some(a);
            }
        }
        None
    }

    /// Drops a completed job's trajectory state.
    pub fn job_done(&mut self, job: JobId) {
        self.jobs.remove(&job);
    }

    /// Predictions handed to the engine so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Pending predictions.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaws_workload::{Footprint, QueryOp};

    fn q(id: u64, ts: u32, atoms: &[(u32, u32, u32)]) -> Query {
        Query {
            id,
            user: 0,
            op: QueryOp::ParticleTrack,
            timestep: ts,
            footprint: Footprint::from_pairs(
                atoms
                    .iter()
                    .map(|&(x, y, z)| (MortonKey::from_coords(x, y, z), 10u32)),
            ),
        }
    }

    #[test]
    fn first_observation_predicts_nothing() {
        let mut p = Prefetcher::new(16, 31);
        p.observe(1, &q(1, 0, &[(4, 4, 4)]));
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn steady_drift_is_extrapolated() {
        let mut p = Prefetcher::new(16, 31);
        p.observe(1, &q(1, 3, &[(4, 4, 4)]));
        p.observe(1, &q(2, 4, &[(5, 4, 4)])); // +1 in x per step
        assert_eq!(p.pending(), 1);
        let a = p.next_prefetch(|_| false).expect("prediction");
        assert_eq!(a, AtomId::from_coords(5, 6, 4, 4));
    }

    #[test]
    fn stationary_jobs_are_not_prefetched() {
        let mut p = Prefetcher::new(16, 31);
        p.observe(1, &q(1, 5, &[(4, 4, 4)]));
        p.observe(1, &q(2, 5, &[(4, 4, 4)])); // batched: same timestep
        assert_eq!(p.pending(), 0, "dt = 0 means no trajectory");
    }

    #[test]
    fn predictions_stop_at_the_archive_boundary() {
        let mut p = Prefetcher::new(16, 4);
        p.observe(1, &q(1, 2, &[(4, 4, 4)]));
        p.observe(1, &q(2, 3, &[(4, 4, 4)])); // next would be ts 4 (absent)
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn resident_atoms_are_skipped() {
        let mut p = Prefetcher::new(16, 31);
        p.observe(1, &q(1, 0, &[(4, 4, 4), (5, 4, 4)]));
        p.observe(1, &q(2, 1, &[(4, 4, 4), (5, 4, 4)]));
        assert_eq!(p.pending(), 2);
        // Everything resident: nothing to issue.
        assert!(p.next_prefetch(|_| true).is_none());
        assert_eq!(p.pending(), 0);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn backward_tracking_is_supported() {
        // "tracking particles forward and backwards through time" (§III-A).
        let mut p = Prefetcher::new(16, 31);
        p.observe(1, &q(1, 10, &[(4, 4, 4)]));
        p.observe(1, &q(2, 9, &[(4, 4, 4)]));
        let a = p.next_prefetch(|_| false).expect("prediction");
        assert_eq!(a.timestep, 8);
    }

    #[test]
    fn spatial_wrap_around() {
        let mut p = Prefetcher::new(16, 31);
        p.observe(1, &q(1, 0, &[(14, 0, 0)]));
        p.observe(1, &q(2, 1, &[(15, 0, 0)]));
        let a = p.next_prefetch(|_| false).expect("prediction");
        assert_eq!(a, AtomId::from_coords(2, 0, 0, 0), "wraps periodically");
    }

    #[test]
    fn job_done_clears_state() {
        let mut p = Prefetcher::new(16, 31);
        p.observe(1, &q(1, 0, &[(4, 4, 4)]));
        p.job_done(1);
        p.observe(1, &q(2, 1, &[(5, 4, 4)]));
        assert_eq!(p.pending(), 0, "trajectory restarted from scratch");
    }

    #[test]
    fn duplicate_predictions_are_deduplicated() {
        let mut p = Prefetcher::new(16, 31);
        // Two jobs tracking the same structure predict the same atoms.
        for job in [1u64, 2] {
            p.observe(job, &q(job * 10, 0, &[(4, 4, 4)]));
            p.observe(job, &q(job * 10 + 1, 1, &[(5, 4, 4)]));
        }
        assert_eq!(p.pending(), 1, "same prediction queued once");
    }
}
