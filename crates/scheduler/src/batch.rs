//! Sub-queries and batches — the scheduler's unit of work.
//!
//! The pre-processing stage of §III-B splits every query into sub-queries:
//! "each sub-query is a set of positions that fall within the same atom, the
//! sub-queries can be executed in any order, and the result of the original
//! query is obtained by combining the sub-query results."

use jaws_morton::AtomId;
use jaws_workload::{Query, QueryId};
use serde::Serialize;

/// The positions of one query that fall within one atom.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SubQuery {
    /// Owning query.
    pub query: QueryId,
    /// The atom whose data this sub-query needs.
    pub atom: AtomId,
    /// Number of positions to evaluate inside the atom.
    pub positions: u32,
    /// When the sub-query entered the workload queue (ms); the age input of
    /// Eq. 2.
    pub enqueued_ms: f64,
}

/// All pending sub-queries of one atom selected for execution in one pass.
#[derive(Debug, Clone, Serialize)]
pub struct AtomBatch {
    /// The atom to read (once) for the whole group.
    pub atom: AtomId,
    /// Sub-queries amortizing that read.
    pub subqueries: Vec<SubQuery>,
}

impl AtomBatch {
    /// Total positions evaluated against this atom.
    pub fn positions(&self) -> u64 {
        self.subqueries.iter().map(|s| s.positions as u64).sum()
    }
}

/// One scheduling decision: up to `k` atom groups executed in a single pass,
/// sorted in Morton order so the disk sees (mostly) sequential reads.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Batch {
    /// Atom groups in Morton-within-timestep order.
    pub atoms: Vec<AtomBatch>,
    /// Queries whose final pending sub-query is contained in this batch; they
    /// complete when the batch finishes.
    pub completing_queries: Vec<QueryId>,
}

impl Batch {
    /// True if the batch carries no work.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Total positions across all atom groups.
    pub fn positions(&self) -> u64 {
        self.atoms.iter().map(AtomBatch::positions).sum()
    }

    /// Number of atoms read.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }
}

/// Splits a query into sub-queries stamped with `now_ms` — the pre-processor
/// of §III-B. Footprints are already per-atom position counts, so this is a
/// direct mapping; the result is Morton-ordered like the paper's sorted
/// position lists.
pub fn preprocess(query: &Query, now_ms: f64) -> Vec<SubQuery> {
    query
        .footprint
        .atoms
        .iter()
        .map(|&(morton, positions)| SubQuery {
            query: query.id,
            atom: AtomId::new(query.timestep, morton),
            positions,
            enqueued_ms: now_ms,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaws_morton::MortonKey;
    use jaws_workload::{Footprint, QueryOp};

    fn query() -> Query {
        Query {
            id: 9,
            user: 1,
            op: QueryOp::Velocity,
            timestep: 3,
            footprint: Footprint::from_pairs([
                (MortonKey(5), 10u32),
                (MortonKey(2), 4),
                (MortonKey(7), 1),
            ]),
        }
    }

    #[test]
    fn preprocess_maps_every_footprint_atom() {
        let subs = preprocess(&query(), 123.0);
        assert_eq!(subs.len(), 3);
        assert!(subs.iter().all(|s| s.query == 9));
        assert!(subs.iter().all(|s| s.atom.timestep == 3));
        assert!(subs.iter().all(|s| s.enqueued_ms == 123.0));
        // Footprint is Morton-sorted, so sub-queries are too.
        assert!(subs.windows(2).all(|w| w[0].atom < w[1].atom));
        let total: u32 = subs.iter().map(|s| s.positions).sum();
        assert_eq!(total as u64, query().positions());
    }

    #[test]
    fn batch_accounting() {
        let subs = preprocess(&query(), 0.0);
        let batch = Batch {
            atoms: vec![
                AtomBatch {
                    atom: subs[0].atom,
                    subqueries: vec![subs[0]],
                },
                AtomBatch {
                    atom: subs[1].atom,
                    subqueries: vec![subs[1], subs[2]],
                },
            ],
            completing_queries: vec![9],
        };
        assert!(!batch.is_empty());
        assert_eq!(batch.atom_count(), 2);
        assert_eq!(batch.positions(), 15);
        assert!(Batch::default().is_empty());
    }
}
