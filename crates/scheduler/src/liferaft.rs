//! LifeRaft: data-driven batch processing with a fixed age bias (§III).
//!
//! LifeRaft "evaluates data atoms in contention order": every scheduling
//! decision picks the single atom with the highest aged workload-throughput
//! metric (Eq. 2) and serves *all* pending sub-queries against it in one pass.
//! The age bias α is set at initialization and never changes — the paper's
//! LifeRaft₁ is `alpha = 1` (arrival order with co-scheduling) and LifeRaft₂
//! is `alpha = 0` (pure contention). There is no two-level framework: "a
//! single atom is scheduled at a time" (§VI).

use crate::batch::{preprocess, Batch};
use crate::policy::{Residency, Scheduler, SchedulerStats};
use crate::queues::{MetricParams, UtilitySnapshot, WorkloadManager};
use jaws_workload::{Job, Query, QueryId};

/// The single-atom contention-order scheduler.
#[derive(Debug)]
pub struct LifeRaft {
    wm: WorkloadManager,
    alpha: f64,
    run_len: usize,
    completed_in_run: usize,
    run_boundary: bool,
    stats: SchedulerStats,
}

impl LifeRaft {
    /// Creates a LifeRaft scheduler with fixed age bias `alpha` ∈ \[0, 1\].
    pub fn new(params: MetricParams, alpha: f64, run_len: usize) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!(run_len > 0);
        LifeRaft {
            wm: WorkloadManager::new(params),
            alpha,
            run_len,
            completed_in_run: 0,
            run_boundary: false,
            stats: SchedulerStats::default(),
        }
    }

    /// The paper's LifeRaft₁: arrival-order bias (α = 1).
    pub fn arrival_order(params: MetricParams, run_len: usize) -> Self {
        Self::new(params, 1.0, run_len)
    }

    /// The paper's LifeRaft₂: contention bias (α = 0).
    pub fn contention(params: MetricParams, run_len: usize) -> Self {
        Self::new(params, 0.0, run_len)
    }
}

impl Scheduler for LifeRaft {
    fn name(&self) -> &'static str {
        if self.alpha >= 1.0 {
            "LifeRaft_1"
        } else if self.alpha <= 0.0 {
            "LifeRaft_2"
        } else {
            "LifeRaft"
        }
    }

    fn job_declared(&mut self, _job: &Job, _now_ms: f64) {}

    fn query_available(&mut self, query: &Query, now_ms: f64) {
        self.wm.enqueue(preprocess(query, now_ms));
    }

    fn next_batch(&mut self, now_ms: f64, residency: &dyn Residency) -> Option<Batch> {
        // Argmax over aged utilities (ties to the smaller atom id), served
        // from the workload manager's incremental state instead of a full
        // per-dispatch scan.
        let (atom, _) = self.wm.best_atom(now_ms, self.alpha, residency)?;
        let (group, completing) = self.wm.take_atom(&atom);
        self.stats.batches += 1;
        self.stats.atom_groups += 1;
        self.stats.subqueries += group.subqueries.len() as u64;
        Some(Batch {
            atoms: vec![group],
            completing_queries: completing,
        })
    }

    fn on_query_complete(&mut self, query: QueryId, _response_ms: f64, _now_ms: f64) {
        self.wm.note_completed(query);
        self.completed_in_run += 1;
        if self.completed_in_run >= self.run_len {
            self.completed_in_run = 0;
            self.run_boundary = true;
        }
    }

    fn has_pending(&self) -> bool {
        !self.wm.is_empty()
    }

    fn take_run_boundary(&mut self) -> bool {
        std::mem::take(&mut self.run_boundary)
    }

    fn alpha(&self) -> f64 {
        self.alpha
    }

    fn utility_snapshot(&mut self, residency: &dyn Residency) -> UtilitySnapshot {
        self.wm.utility_snapshot(residency)
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::FixedResidency;
    use jaws_morton::{AtomId, MortonKey};
    use jaws_workload::{Footprint, QueryOp};

    fn q(id: u64, atoms: &[(u64, u32)]) -> Query {
        Query {
            id,
            user: 0,
            op: QueryOp::Velocity,
            timestep: 0,
            footprint: Footprint::from_pairs(atoms.iter().map(|&(m, c)| (MortonKey(m), c))),
        }
    }

    fn params() -> MetricParams {
        MetricParams {
            atom_read_ms: 100.0,
            position_compute_ms: 1.0,
            atoms_per_timestep: 64,
        }
    }

    #[test]
    fn contention_mode_serves_the_hottest_atom_first() {
        let mut s = LifeRaft::contention(params(), 100);
        let none = FixedResidency::none();
        s.query_available(&q(1, &[(0, 10)]), 0.0);
        s.query_available(&q(2, &[(1, 200)]), 1.0);
        s.query_available(&q(3, &[(1, 200)]), 2.0);
        let b = s.next_batch(10.0, &none).unwrap();
        assert_eq!(b.atoms[0].atom, AtomId::new(0, MortonKey(1)));
        assert_eq!(b.positions(), 400, "both queries co-scheduled in one pass");
        assert_eq!(b.completing_queries.len(), 2);
    }

    #[test]
    fn arrival_mode_serves_the_oldest_atom_first() {
        let mut s = LifeRaft::arrival_order(params(), 100);
        let none = FixedResidency::none();
        s.query_available(&q(1, &[(0, 1)]), 0.0); // old, tiny
        s.query_available(&q(2, &[(1, 500)]), 50.0); // new, huge
        let b = s.next_batch(100.0, &none).unwrap();
        assert_eq!(b.atoms[0].atom, AtomId::new(0, MortonKey(0)));
    }

    #[test]
    fn arrival_mode_still_co_schedules_shared_atoms() {
        // "It differs from NoShare in that queries referencing the same data
        // as the current query in arrival order are co-scheduled."
        let mut s = LifeRaft::arrival_order(params(), 100);
        let none = FixedResidency::none();
        s.query_available(&q(1, &[(4, 10)]), 0.0);
        s.query_available(&q(2, &[(4, 20)]), 90.0);
        let b = s.next_batch(100.0, &none).unwrap();
        assert_eq!(b.positions(), 30);
        assert_eq!(b.completing_queries.len(), 2);
        assert!(!s.has_pending());
    }

    #[test]
    fn one_atom_per_batch() {
        let mut s = LifeRaft::contention(params(), 100);
        let none = FixedResidency::none();
        s.query_available(&q(1, &[(0, 10), (1, 10), (2, 10)]), 0.0);
        let b = s.next_batch(1.0, &none).unwrap();
        assert_eq!(b.atom_count(), 1, "LifeRaft lacks two-level batching");
        assert!(
            b.completing_queries.is_empty(),
            "query still has atoms left"
        );
        assert!(s.has_pending());
    }

    #[test]
    fn residency_biases_selection_toward_cached_atoms() {
        let mut s = LifeRaft::contention(params(), 100);
        s.query_available(&q(1, &[(0, 50)]), 0.0);
        s.query_available(&q(2, &[(1, 50)]), 0.0);
        // Atom 1 cached: φ = 0 makes it strictly cheaper, so it goes first.
        let res = FixedResidency::of([AtomId::new(0, MortonKey(1))]);
        let b = s.next_batch(1.0, &res).unwrap();
        assert_eq!(b.atoms[0].atom, AtomId::new(0, MortonKey(1)));
    }

    #[test]
    fn empty_scheduler_yields_no_batch() {
        let mut s = LifeRaft::contention(params(), 100);
        assert!(s.next_batch(0.0, &FixedResidency::none()).is_none());
        assert!(!s.has_pending());
    }

    #[test]
    fn names_reflect_the_paper_variants() {
        assert_eq!(LifeRaft::arrival_order(params(), 10).name(), "LifeRaft_1");
        assert_eq!(LifeRaft::contention(params(), 10).name(), "LifeRaft_2");
        assert_eq!(LifeRaft::new(params(), 0.5, 10).name(), "LifeRaft");
    }
}
